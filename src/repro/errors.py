"""Exception hierarchy for the GED reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Malformed graph construction or access (unknown node, bad edge...)."""


class PatternError(ReproError):
    """Malformed graph pattern (unknown variable, bad label...)."""


class LiteralError(ReproError):
    """Malformed dependency literal (e.g. an ``id`` attribute in a
    constant literal, or a literal mentioning a variable that is not in
    the pattern)."""


class DependencyError(ReproError):
    """Malformed dependency (GED / GDC / GED-or) definition."""


class ChaseError(ReproError):
    """Internal chase failure.

    Note that an *inconsistent* chase is not an error: it is reported
    through :class:`repro.chase.engine.ChaseResult`.  This exception is
    reserved for misuse of the chase API (e.g. chasing with dependencies
    whose patterns reference unknown labels in a way the engine cannot
    interpret) and for violated internal invariants.
    """


class ProofError(ReproError):
    """An axiom-system proof step failed to check."""


class ConstraintError(ReproError):
    """Malformed order constraint passed to the point-algebra solver."""


class ReductionError(ReproError):
    """Malformed input to a hardness reduction (e.g. a graph with
    self-loops passed to the 3-colorability reductions)."""


class RepairError(ReproError):
    """A repair operation could not be applied (unknown node/edge, or a
    merge with conflicting labels/attributes)."""


class DiscoveryError(ReproError):
    """Malformed input to dependency discovery (bad support threshold,
    pattern too large...)."""
