"""Small shared utilities: fresh-name generation and deterministic orders."""

from repro.utils.naming import NameSupply, fresh_label, fresh_value

__all__ = ["NameSupply", "fresh_label", "fresh_value"]
