"""A weak registry keyed by object *identity*.

:class:`weakref.WeakKeyDictionary` hashes keys with ``hash()`` but
resolves bucket collisions — including the unavoidable one between the
stored weakref and the fresh weakref created per lookup — with ``==``
on the *referents*.  For :class:`~repro.graph.graph.Graph`, whose
``__eq__`` is structural (nodes, attributes, edges), that turns every
registry probe into an O(|G|) graph comparison: invisible on toy
graphs, dominant on the streaming hot path where ``get_index`` runs
per batch against production-sized graphs.

:class:`WeakIdRegistry` keeps the same weak semantics — an entry
neither keeps its graph alive nor survives it — but keys by ``id()``,
so probes are O(1) dictionary hits on integers.  A weakref death
callback removes the entry before the id can be reused (CPython frees
the object only after its callbacks ran).
"""

from __future__ import annotations

import weakref
from typing import Any, Iterator


class WeakIdRegistry:
    """``object -> value`` with weak, identity-keyed entries."""

    def __init__(self) -> None:
        self._entries: dict[int, tuple[weakref.ref, Any]] = {}

    def get(self, key: object, default: Any = None) -> Any:
        entry = self._entries.get(id(key))
        return entry[1] if entry is not None else default

    def set(self, key: object, value: Any) -> None:
        slot = id(key)

        def _cleanup(_ref: weakref.ref, slot: int = slot) -> None:
            self._entries.pop(slot, None)

        self._entries[slot] = (weakref.ref(key, _cleanup), value)

    def pop(self, key: object, default: Any = None) -> Any:
        entry = self._entries.pop(id(key), None)
        return entry[1] if entry is not None else default

    def __contains__(self, key: object) -> bool:
        return id(key) in self._entries

    def values(self) -> Iterator[Any]:
        return iter([value for _, value in self._entries.values()])

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


__all__ = ["WeakIdRegistry"]
