"""Fresh-name supplies.

Several constructions in the paper require names that are guaranteed not
to collide with anything already present:

* model construction (Theorem 2) replaces the wildcard label ``_`` with a
  label *not occurring in Σ*, and fills attribute classes that carry no
  constant with pairwise-distinct fresh constants;
* pattern copies (for GKeys) rename variables via a bijection into a
  disjoint variable set.

:class:`NameSupply` provides deterministic, collision-free names: it is
seeded with the set of names to avoid and hands out ``prefix0``,
``prefix1``, ... skipping anything reserved.  Determinism matters for the
Church-Rosser tests (the same inputs must yield the same model).
"""

from __future__ import annotations

from collections.abc import Iterable


class NameSupply:
    """Deterministic supply of fresh names avoiding a reserved set."""

    def __init__(self, reserved: Iterable[str] = (), prefix: str = "fresh_"):
        self._reserved = set(reserved)
        self._prefix = prefix
        self._counter = 0

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken so it will never be handed out."""
        self._reserved.add(name)

    def fresh(self, hint: str | None = None) -> str:
        """Return a new name, optionally based on ``hint``.

        The returned name is recorded as reserved, so repeated calls
        never collide with each other or with the initial reserved set.
        """
        base = hint if hint is not None else self._prefix
        candidate = base
        if candidate in self._reserved or hint is None:
            while True:
                candidate = f"{base}{self._counter}"
                self._counter += 1
                if candidate not in self._reserved:
                    break
        self._reserved.add(candidate)
        return candidate


def fresh_label(avoid: Iterable[str]) -> str:
    """A label guaranteed to differ from every label in ``avoid``."""
    return NameSupply(avoid, prefix="label_").fresh()


def fresh_value(avoid: Iterable[object], index: int) -> str:
    """A constant guaranteed to differ from every constant in ``avoid``.

    ``index`` keeps distinct calls distinct: model construction assigns
    ``fresh_value(consts, i)`` to the i-th attribute class without a
    constant, and distinct classes must receive distinct values.
    """
    taken = {str(v) for v in avoid}
    candidate = f"@v{index}"
    bump = 0
    while candidate in taken:
        bump += 1
        candidate = f"@v{index}_{bump}"
    return candidate
