"""Knowledge-base expansion (Example 1 (3), [19]).

Before adding a newly extracted entity to a knowledge base G, decide
whether it duplicates an existing entity: insert the candidate into a
scratch copy of G, chase with the entity keys, and see whether the
candidate's node merged with an existing one.  This is the paper's
"to avoid duplicates, we need keys to identify an album entity in G".
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.chase.engine import chase
from repro.deps.ged import GED
from repro.graph.graph import Graph, Value
from repro.quality.entity_resolution import album_keys


@dataclass(frozen=True)
class CandidateEntity:
    """A freshly extracted entity: label, attributes, outgoing edges to
    existing nodes (e.g. the album's primary_artist)."""

    label: str
    attrs: Mapping[str, Value]
    edges: Sequence[tuple[str, str]] = ()  # (edge_label, target node id)


@dataclass
class ExpansionDecision:
    is_duplicate: bool
    matched_node: str | None
    reason: str


def check_duplicate(
    graph: Graph,
    candidate: CandidateEntity,
    keys: Sequence[GED] | None = None,
    candidate_id: str = "__candidate__",
) -> ExpansionDecision:
    """Decide whether ``candidate`` duplicates an entity of ``graph``."""
    keys = list(keys) if keys is not None else album_keys()
    scratch = graph.copy()
    scratch.add_node(candidate_id, candidate.label, dict(candidate.attrs))
    for edge_label, target in candidate.edges:
        scratch.add_edge(candidate_id, edge_label, target)
    result = chase(scratch, keys)
    if not result.consistent:
        return ExpansionDecision(
            True,
            None,
            f"keys become inconsistent when the candidate is added: {result.reason}",
        )
    group = result.eq.node_class(candidate_id)
    others = sorted(group - {candidate_id})
    if others:
        return ExpansionDecision(
            True, others[0], "keys identify the candidate with an existing entity"
        )
    return ExpansionDecision(False, None, "no key identifies the candidate with an existing entity")


def expand(
    graph: Graph,
    candidate: CandidateEntity,
    keys: Sequence[GED] | None = None,
    candidate_id: str | None = None,
) -> tuple[Graph, ExpansionDecision]:
    """Add the candidate unless it is a duplicate; returns the
    (possibly extended) graph and the decision."""
    node_id = candidate_id or f"new{graph.num_nodes}"
    decision = check_duplicate(graph, candidate, keys, candidate_id=node_id)
    if decision.is_duplicate:
        return graph, decision
    extended = graph.copy()
    extended.add_node(node_id, candidate.label, dict(candidate.attrs))
    for edge_label, target in candidate.edges:
        extended.add_edge(node_id, edge_label, target)
    return extended, decision
