"""Fake-account detection (Example 1 (2)).

The rule ϕ5 propagates "fake" labels: if a confirmed-fake account x′
and an account x like the same k blogs, and the blogs each posted
share a peculiar keyword, then x is fake too.  Because newly flagged
accounts can seed further detections, the detector iterates to a
fixpoint — a miniature of how GFD-based cleaning systems run rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import paper
from repro.graph.graph import Graph
from repro.reasoning.validation import find_violations


@dataclass
class SpamDetectionResult:
    """Accounts flagged per iteration until the fixpoint."""

    rounds: list[set[str]] = field(default_factory=list)

    @property
    def flagged(self) -> set[str]:
        result: set[str] = set()
        for round_hits in self.rounds:
            result |= round_hits
        return result

    @property
    def iterations(self) -> int:
        return len(self.rounds)


def detect_fake_accounts(
    graph: Graph,
    k: int = 2,
    keyword: str = "peculiar",
    max_rounds: int = 10,
) -> SpamDetectionResult:
    """Run ϕ5 to a fixpoint, marking flagged accounts as fake.

    The graph is mutated: each flagged account's ``is_fake`` attribute
    is set to 1, which is exactly what lets the next round chain off
    it (work on a copy if the original must stay intact).
    """
    rule = paper.phi5(k=k, keyword=keyword)
    result = SpamDetectionResult()
    for _ in range(max_rounds):
        violations = find_violations(graph, [rule])
        newly_flagged: set[str] = set()
        for violation in violations:
            account = violation.assignment["x"]
            if graph.node(account).get("is_fake") != 1:
                newly_flagged.add(account)
        if not newly_flagged:
            break
        for account in newly_flagged:
            graph.set_attribute(account, "is_fake", 1)
        result.rounds.append(newly_flagged)
    return result


def score_detection(flagged: set[str], truth) -> dict[str, float]:
    """Precision / recall against a ground truth
    (:class:`repro.workloads.social.SpamGroundTruth`)."""
    expected = set(truth.undetected_fakes)
    true_positives = len(flagged & expected)
    precision = true_positives / len(flagged) if flagged else 1.0
    recall = true_positives / len(expected) if expected else 1.0
    return {"precision": precision, "recall": recall, "flagged": float(len(flagged))}
