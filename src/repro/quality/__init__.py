"""Data-quality applications of GEDs (the Example 1 use cases)."""

from repro.quality.entity_resolution import (
    ResolutionResult,
    album_keys,
    duplicate_pairs,
    resolve_entities,
)
from repro.quality.expansion import (
    CandidateEntity,
    ExpansionDecision,
    check_duplicate,
    expand,
)
from repro.quality.inconsistencies import (
    ConsistencyReport,
    check_consistency,
    dirty_entities,
    example1_rules,
)
from repro.quality.spam import SpamDetectionResult, detect_fake_accounts, score_detection

__all__ = [
    "CandidateEntity",
    "ConsistencyReport",
    "ExpansionDecision",
    "ResolutionResult",
    "SpamDetectionResult",
    "album_keys",
    "check_consistency",
    "check_duplicate",
    "detect_fake_accounts",
    "dirty_entities",
    "duplicate_pairs",
    "example1_rules",
    "expand",
    "resolve_entities",
    "score_detection",
]
