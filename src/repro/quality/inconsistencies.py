"""Knowledge-base consistency checking (Example 1 (1)).

Packages the paper's cleaning rules ϕ1–ϕ4 and turns raw violation
witnesses into per-rule reports, the form a data steward consumes:
which rule fired, on which entities, what it expected.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro import paper
from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.reasoning.validation import Violation, find_violations


@dataclass
class ConsistencyReport:
    """All violations of a cleaning rule set, grouped by rule."""

    by_rule: dict[str, list[Violation]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(len(v) for v in self.by_rule.values())

    @property
    def is_clean(self) -> bool:
        return self.total == 0

    def entities(self, rule: str) -> set[str]:
        """All node ids implicated by one rule's violations."""
        result: set[str] = set()
        for violation in self.by_rule.get(rule, []):
            result |= set(violation.assignment.values())
        return result

    def summary(self) -> str:
        lines = [f"{self.total} violation(s) found"]
        for rule in sorted(self.by_rule):
            lines.append(f"  {rule}: {len(self.by_rule[rule])}")
        return "\n".join(lines)


def example1_rules() -> list[GED]:
    """The paper's consistency rules ϕ1–ϕ4."""
    return [paper.phi1(), paper.phi2(), paper.phi3(), paper.phi4()]


def check_consistency(
    graph: Graph, rules: Sequence[GED] | None = None, limit: int | None = None
) -> ConsistencyReport:
    """Validate a KB against cleaning rules; group violations by rule."""
    rules = list(rules) if rules is not None else example1_rules()
    report = ConsistencyReport()
    for index, rule in enumerate(rules):
        name = rule.name or f"rule{index}"
        violations = find_violations(graph, [rule], limit=limit)
        if violations:
            report.by_rule[name] = violations
    return report


def dirty_entities(graph: Graph, rules: Iterable[GED] | None = None) -> set[str]:
    """All node ids involved in any violation — the paper's "catch
    'dirty' entities" use of validation."""
    report = check_consistency(graph, list(rules) if rules is not None else None)
    result: set[str] = set()
    for rule in report.by_rule:
        result |= report.entities(rule)
    return result
