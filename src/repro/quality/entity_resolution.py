"""GKey-based entity resolution (Example 1 (3)).

The keys ψ1–ψ3 are *recursively defined*: identifying an album may
require first identifying its artist and vice versa.  Exactly this
recursion is what the chase handles: chasing the data graph by the
GKeys repeatedly merges node classes until a fixpoint, and the final
equivalence classes are the resolved entities.

The module also reproduces the Section 3 semantics point: under
injective (subgraph-isomorphism) matching, ψ3-style keys can catch
*no* violations, so homomorphism semantics is load-bearing.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro import paper
from repro.chase.engine import chase
from repro.deps.ged import GED
from repro.graph.graph import Graph


@dataclass
class ResolutionResult:
    """Outcome of chasing a data graph with entity keys."""

    consistent: bool
    #: Every non-singleton equivalence class: a resolved entity group.
    merged_groups: list[set[str]] = field(default_factory=list)
    #: The deduplicated graph (coercion) when consistent.
    resolved_graph: Graph | None = None
    reason: str | None = None

    @property
    def merges(self) -> int:
        return sum(len(group) - 1 for group in self.merged_groups)


def album_keys() -> list[GED]:
    """The paper's recursive keys ψ1, ψ2, ψ3."""
    return [paper.psi1(), paper.psi2(), paper.psi3()]


def resolve_entities(graph: Graph, keys: Sequence[GED] | None = None) -> ResolutionResult:
    """Chase ``graph`` by entity keys and report the merged entities.

    An inconsistent chase means the keys conflict with the data (e.g.
    two nodes forced equal carry contradictory attributes) — surfaced
    rather than silently dropped, since for a cleaning pipeline that
    is a signal, not a failure.
    """
    keys = list(keys) if keys is not None else album_keys()
    result = chase(graph.copy(), keys)
    if not result.consistent:
        return ResolutionResult(False, reason=result.reason)
    groups = [cls for cls in result.eq.node_classes() if len(cls) > 1]
    return ResolutionResult(True, groups, result.graph)


def duplicate_pairs(result: ResolutionResult) -> set[tuple[str, str]]:
    """All unordered duplicate pairs implied by the merged groups."""
    pairs: set[tuple[str, str]] = set()
    for group in result.merged_groups:
        ordered = sorted(group)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                pairs.add((a, b))
    return pairs
