"""repro — Graph Entity Dependencies (GEDs).

A complete Python implementation of Fan & Lu, *Dependencies for
Graphs*, PODS 2017: the GED dependency language over property graphs,
the revised chase with the Church–Rosser property, decision procedures
for satisfiability / implication / validation, the finite axiom system
A_GED with machine-checkable proofs, and the GDC / GED∨ extensions —
plus the hardness reductions behind Table 1 and the data-quality
applications of Example 1.

Quickstart::

    from repro import Graph, Pattern, GED, VariableLiteral
    from repro.reasoning import find_violations

    g = Graph()
    g.add_node("fin", "country")
    g.add_node("hel", "city", {"name": "Helsinki"})
    g.add_node("spb", "city", {"name": "Saint Petersburg"})
    g.add_edge("fin", "capital", "hel")
    g.add_edge("fin", "capital", "spb")

    q = Pattern(
        {"x": "country", "y": "city", "z": "city"},
        [("x", "capital", "y"), ("x", "capital", "z")],
    )
    one_capital_name = GED(q, [], [VariableLiteral("y", "name", "z", "name")])
    print(find_violations(g, [one_capital_name]))

Subpackages: :mod:`repro.graph` (property graphs), :mod:`repro.patterns`
(graph patterns), :mod:`repro.matching` (homomorphism matching),
:mod:`repro.deps` (GEDs and relational encodings), :mod:`repro.chase`
(the revised chase), :mod:`repro.reasoning` (Theorems 2/4/6),
:mod:`repro.axioms` (Theorem 7), :mod:`repro.extensions` (Theorems 8/9),
:mod:`repro.reductions` (Table 1 lower bounds), :mod:`repro.quality`
and :mod:`repro.workloads` (applications), :mod:`repro.paper` (the
paper's running examples as code) — plus the follow-on systems the
paper motivates: :mod:`repro.repair` (violation-driven data cleaning),
:mod:`repro.optimization` (pattern-query and rule-set optimization),
:mod:`repro.parallel` (sharded parallel validation, the Section 9
future-work direction), :mod:`repro.engine` (the persistent worker-pool
runtime), :mod:`repro.streaming` (continuous violation maintenance over
graph update streams), :mod:`repro.discovery` (GFD mining) and
:mod:`repro.extensions.tgd` (graph TGDs).
"""

from repro.chase import ChaseResult, chase
from repro.deps import (
    FALSE,
    ConstantLiteral,
    GED,
    GKey,
    IdLiteral,
    VariableLiteral,
    make_gkey,
)
from repro.graph import Graph, GraphBuilder
from repro.patterns import WILDCARD, Pattern, PatternBuilder

__version__ = "1.0.0"

__all__ = [
    "ChaseResult",
    "ConstantLiteral",
    "FALSE",
    "GED",
    "GKey",
    "Graph",
    "GraphBuilder",
    "IdLiteral",
    "Pattern",
    "PatternBuilder",
    "VariableLiteral",
    "WILDCARD",
    "chase",
    "make_gkey",
    "__version__",
]
