"""Hardness reductions behind the Table 1 lower bounds.

3-colorability instances drive Theorems 3 / 5 / 6; GGCP instances
drive Theorems 8 / 9.  Brute-force oracles verify every reduction.
"""

from repro.reductions.coloring import (
    check_coloring_instance,
    find_three_coloring,
    is_three_colorable,
)
from repro.reductions.ggcp import (
    adjacency_of,
    ggcp_satisfiable,
    ggcp_two_coloring,
    has_clique,
)
from repro.reductions.to_gdc import gdc_ggcp_instance, witness_model
from repro.reductions.to_gedvee import gedvee_ggcp_instance
from repro.reductions.to_implication import (
    gfdx_implication_instance,
    gkey_implication_instance,
    plain_triangle_pattern,
)
from repro.reductions.to_satisfiability import (
    designated_edge,
    gfd_satisfiability_instance,
    gkey_satisfiability_instance,
    instance_pattern,
    triangle_pattern,
)
from repro.reductions.to_validation import (
    colored_k3,
    gfdx_validation_instance,
    gkey_validation_instance,
)

__all__ = [
    "adjacency_of",
    "check_coloring_instance",
    "colored_k3",
    "designated_edge",
    "find_three_coloring",
    "gdc_ggcp_instance",
    "gedvee_ggcp_instance",
    "gfd_satisfiability_instance",
    "gfdx_implication_instance",
    "gfdx_validation_instance",
    "ggcp_satisfiable",
    "ggcp_two_coloring",
    "gkey_implication_instance",
    "gkey_satisfiability_instance",
    "gkey_validation_instance",
    "has_clique",
    "instance_pattern",
    "is_three_colorable",
    "plain_triangle_pattern",
    "triangle_pattern",
    "witness_model",
]
