"""3-colorability → GED validation (lower bounds of Theorem 6).

The paper uses a single GFDx with X = ∅ and a single variable literal
in Y (resp. a single GKey with an id literal); ours follow the shapes.

**GFDx reduction.**  The data graph G is K3 whose corners carry
pairwise distinct ``val`` attributes; Σ = {φ_H} with φ_H =
Q_H(∅ → u.val = v.val) for a designated edge (u, v).  Matches of Q_H
in G are exactly proper 3-colorings of H; every match violates Y
because u and v are adjacent, hence differently colored, hence carry
different ``val``.  So G |= Σ iff H is **not** 3-colorable.

**GKey reduction.**  Same G (attributes unused); Σ = {ψ_H}, the
H-with-copy GKey identifying the designated node's images.  If H is
3-colorable, pick two colorings differing at u — a match violating the
key; otherwise Q_H has no match at all.  Again G |= Σ iff H is **not**
3-colorable.
"""

from __future__ import annotations

from repro.deps.ged import GED, GKey, make_gkey
from repro.deps.literals import VariableLiteral
from repro.graph.graph import Graph
from repro.reductions.coloring import check_coloring_instance
from repro.reductions.to_implication import NODE_LABEL
from repro.reductions.to_satisfiability import designated_edge, instance_pattern


def colored_k3(label: str = NODE_LABEL) -> Graph:
    """K3 with distinct ``val`` attributes (the validation data graph)."""
    g = Graph()
    for i in range(3):
        g.add_node(f"k{i}", label, val=i)
    for i in range(3):
        for j in range(3):
            if i != j:
                g.add_edge(f"k{i}", "adj", f"k{j}")
    return g


def gfdx_validation_instance(h: Graph) -> tuple[Graph, list[GED]]:
    """(G, Σ) with a single GFDx: G |= Σ iff H is NOT 3-colorable."""
    check_coloring_instance(h)
    u, v = designated_edge(h)
    sigma = [
        GED(
            instance_pattern(h, label=NODE_LABEL),
            [],
            [VariableLiteral(u, "val", v, "val")],
            name="phi-H-val",
        )
    ]
    return colored_k3(), sigma


def gkey_validation_instance(h: Graph) -> tuple[Graph, list[GKey]]:
    """(G, Σ) with a single GKey: G |= Σ iff H is NOT 3-colorable."""
    check_coloring_instance(h)
    u, _ = designated_edge(h)
    sigma = [make_gkey(instance_pattern(h, label=NODE_LABEL), u, name="psi-H-key")]
    return colored_k3(), sigma
