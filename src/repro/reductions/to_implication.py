"""3-colorability → GED implication (lower bounds of Theorem 5).

The paper's reductions use a single GFDx (resp. a single GKey) with
Σ |= φ iff the instance H is 3-colorable; ours follow those shapes.

**GFDx reduction.**  Σ = {φ_H} where φ_H = Q_H[z̄](∅ → z_u.c = z_v.c)
for a designated edge (u, v) of H, over H as a pattern with a single
concrete node label.  φ = Q_T(∅ → t_i.c = t_j.c) where Q_T is the
triangle K3 (same label).  Chasing G_{Q_T} by φ_H applies one step per
homomorphism H → K3 — per proper 3-coloring.  If H is 3-colorable then
for *every* corner pair (t_i, t_j) some coloring sends u ↦ t_i, v ↦ t_j
(u, v are adjacent so they get distinct colors, and colors can be
permuted), so every corner-pair equality is deduced and Σ |= φ; if H is
not 3-colorable no step applies and nothing is deduced.

**GKey reduction.**  Σ = {ψ_H}, the GKey pairing H with its copy and
identifying the images of a designated node u; φ = ψ_T, the analogous
GKey over the triangle.  Chasing φ's canonical graph (two disjoint
triangles) by ψ_H merges t_i in the first triangle with t_i′ in the
second iff some pair of colorings sends u there — again possible for
all corner pairs iff H is 3-colorable.
"""

from __future__ import annotations

from repro.deps.ged import GED, GKey, make_gkey
from repro.deps.literals import VariableLiteral
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.reductions.coloring import check_coloring_instance
from repro.reductions.to_satisfiability import designated_edge, instance_pattern

#: The single node label shared by patterns in the GFDx reduction.
NODE_LABEL = "v"


def plain_triangle_pattern(label: str = NODE_LABEL) -> Pattern:
    """K3 with uniformly labeled corners (both edge orientations)."""
    nodes = {f"t{i}": label for i in range(3)}
    edges = []
    for i in range(3):
        for j in range(3):
            if i != j:
                edges.append((f"t{i}", "adj", f"t{j}"))
    return Pattern(nodes, edges)


def gfdx_implication_instance(h: Graph) -> tuple[list[GED], GED]:
    """(Σ, φ) with a single GFDx each: Σ |= φ iff H is 3-colorable."""
    check_coloring_instance(h)
    u, v = designated_edge(h)
    sigma = [
        GED(
            instance_pattern(h, label=NODE_LABEL),
            [],
            [VariableLiteral(u, "c", v, "c")],
            name="phi-H",
        )
    ]
    phi = GED(
        plain_triangle_pattern(),
        [],
        [VariableLiteral("t0", "c", "t1", "c")],
        name="phi-target",
    )
    return sigma, phi


def gkey_implication_instance(h: Graph) -> tuple[list[GKey], GKey]:
    """(Σ, ψ) with a single GKey each: Σ |= ψ iff H is 3-colorable."""
    check_coloring_instance(h)
    u, _ = designated_edge(h)
    sigma = [make_gkey(instance_pattern(h, label=NODE_LABEL), u, name="psi-H")]
    phi = make_gkey(plain_triangle_pattern(), "t0", name="psi-target")
    return sigma, phi
