"""The generalized graph coloring problem (GGCP) [37, 40].

GGCP: given undirected graphs F and G, decide whether F has a
two-coloring under which G is *not* a monochromatic subgraph.  The
Theorem 8/9 lower bounds reduce from GGCP with G = K_k (a complete
graph), where the problem is Σp2-complete; we implement that special
case: *is there a 2-coloring of F with no monochromatic K_k?*

The brute-force oracle sweeps all 2^|F| colorings; clique detection is
by subset enumeration over each color class — exponential, as suits a
ground-truth oracle for ≤ 10-node instances.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import ReductionError
from repro.graph.generators import undirected_edge_set
from repro.graph.graph import Graph


def has_clique(nodes: list[str], adjacency: dict[str, set[str]], k: int) -> bool:
    """Whether the induced subgraph on ``nodes`` contains a K_k."""
    if k <= 1:
        return len(nodes) >= k
    for subset in combinations(sorted(nodes), k):
        if all(b in adjacency[a] for a, b in combinations(subset, 2)):
            return True
    return False


def adjacency_of(f: Graph, edge_label: str = "adj") -> dict[str, set[str]]:
    adjacency: dict[str, set[str]] = {n: set() for n in f.node_ids}
    for a, b in undirected_edge_set(f, edge_label):
        adjacency[a].add(b)
        adjacency[b].add(a)
    return adjacency


def ggcp_two_coloring(f: Graph, k: int) -> dict[str, int] | None:
    """A 2-coloring of F with no monochromatic K_k, or None.

    This is the brute-force GGCP oracle (the decision version of the
    Σp2-complete problem with G = K_k).
    """
    if k < 2:
        raise ReductionError("GGCP with K_k needs k >= 2")
    nodes = sorted(f.node_ids)
    adjacency = adjacency_of(f)
    for mask in range(2 ** len(nodes)):
        coloring = {node: (mask >> i) & 1 for i, node in enumerate(nodes)}
        ok = True
        for color in (0, 1):
            mono = [n for n in nodes if coloring[n] == color]
            if has_clique(mono, adjacency, k):
                ok = False
                break
        if ok:
            return coloring
    return None


def ggcp_satisfiable(f: Graph, k: int) -> bool:
    """The GGCP decision: some 2-coloring avoids a monochromatic K_k."""
    return ggcp_two_coloring(f, k) is not None
