"""GGCP → GDC satisfiability (lower bound of Theorem 8).

The paper encodes 2-coloring, the monochromatic clique and the graph F
with four GDCs using ≠ / ≤ (one a forbidding constraint).  Our
construction (verified against the brute-force GGCP oracle):

* φ_col  = Q_v[x](∅ → x.color = x.color) — every F-node carries a color
  (attribute existence; without it φ_dom could be dodged by simply
  omitting the attribute);
* φ_dom  = Q_v[x](x.color ≠ 0 ∧ x.color ≠ 1 → false) — colors are
  binary (the built-in ≠ at work);
* φ_F    = Q_F(∅ → ∅) — a trivially-satisfied constraint whose only
  role is *strong satisfiability*: any model must contain a
  homomorphic image of F;
* φ_mono = Q_{K_k}(⋀_{i<j} x_i.color = x_j.color → false) — no
  monochromatic K_k anywhere.

Σ is satisfiable iff F has a 2-coloring with no monochromatic K_k:

(⇐) F itself, colored, plus a disjoint non-monochromatic K_k gadget
(so Q_{K_k} has a match) is a model.  (⇒) A model M has no ``fnode``
self-loops (a self-loop matches all of Q_{K_k} monochromatically), so
pulling M's colors back along the φ_F match h : F → M yields a good
2-coloring: a monochromatic K_k in F would map injectively (adjacent
nodes cannot merge without a self-loop) onto a monochromatic K_k in M.
"""

from __future__ import annotations

from itertools import combinations

from repro.deps.literals import FALSE
from repro.extensions.gdc import (
    GDC,
    ComparisonLiteral,
    VariableComparisonLiteral,
)
from repro.errors import ReductionError
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.reductions.coloring import check_coloring_instance

#: Node label shared by all patterns of the reduction.
F_LABEL = "fnode"


def f_pattern(f: Graph) -> Pattern:
    nodes = {node_id: F_LABEL for node_id in sorted(f.node_ids)}
    edges = [(s, l, t) for (s, l, t) in sorted(f.edges)]
    return Pattern(nodes, edges)


def clique_pattern(k: int) -> Pattern:
    if k < 2:
        raise ReductionError("monochromatic-clique pattern needs k >= 2")
    nodes = {f"m{i}": F_LABEL for i in range(k)}
    edges = []
    for i in range(k):
        for j in range(k):
            if i != j:
                edges.append((f"m{i}", "adj", f"m{j}"))
    return Pattern(nodes, edges)


def gdc_ggcp_instance(f: Graph, k: int) -> list[GDC]:
    """The four GDCs: satisfiable iff GGCP(F, K_k) answers yes."""
    check_coloring_instance(f)
    single = Pattern({"x": F_LABEL})
    phi_col = GDC(
        single,
        [],
        [VariableComparisonLiteral("x", "color", "=", "x", "color")],
        name="phi-col",
    )
    phi_dom = GDC(
        single,
        [
            ComparisonLiteral("x", "color", "!=", 0),
            ComparisonLiteral("x", "color", "!=", 1),
        ],
        [FALSE],
        name="phi-dom",
    )
    phi_f = GDC(f_pattern(f), [], [], name="phi-F")
    mono = clique_pattern(k)
    phi_mono = GDC(
        mono,
        [
            VariableComparisonLiteral(f"m{i}", "color", "=", f"m{j}", "color")
            for i, j in combinations(range(k), 2)
        ],
        [FALSE],
        name="phi-mono",
    )
    return [phi_col, phi_dom, phi_f, phi_mono]


def witness_model(f: Graph, k: int, coloring: dict[str, int]) -> Graph:
    """The (⇐)-direction witness: F colored + a non-mono K_k gadget."""
    model = Graph()
    for node_id in sorted(f.node_ids):
        model.add_node(node_id, F_LABEL, color=coloring[node_id])
    for edge in f.edges:
        model.add_edge(*edge)
    for i in range(k):
        model.add_node(f"gadget{i}", F_LABEL, color=0 if i == 0 else 1)
    for i in range(k):
        for j in range(k):
            if i != j:
                model.add_edge(f"gadget{i}", "adj", f"gadget{j}")
    return model
