"""3-colorability → GED satisfiability (lower bounds of Theorem 3).

The paper proves coNP-hardness of satisfiability (a) for GFDs and (b)
for GKeys without constant literals, by reductions from the complement
of 3-colorability; the constructions are deferred to the full version,
so the reductions below are our own, in the stated shapes, and are
verified against the brute-force coloring oracle by exhaustive tests.

**GFD reduction** (two GFDs of the form Q[x̄](∅ → Y) with constant and
variable literals).  Given a connected, loop-free instance H:

* φ_tri has pattern T = a triangle with *distinctly labeled* corners
  R, G, B (``adj`` edges both ways) and Y assigning a distinct constant
  ``col`` to each corner;
* φ_H has pattern H with all-wildcard nodes and Y = (u.col = v.col)
  for one designated edge (u, v) of H.

In the canonical graph G_Σ, matches of the H-pattern into the triangle
component are exactly homomorphisms H → K3, i.e. proper 3-colorings;
any such match forces ``col`` constants of two *different* corners to
merge (u, v are adjacent, so their images differ) — an attribute
conflict.  Matches of the H-pattern elsewhere only merge constant-free
classes.  Hence Σ_H is satisfiable iff H is **not** 3-colorable.

**GKey reduction** (GKeys with no constant literals).  Conflicts must
come from id literals:

* ψ_tri: the distinctly-labeled triangle composed with its copy,
  identifying corresponding R-corners (harmless, but it places the
  triangle gadget in G_Σ and keeps every dependency a GKey);
* ψ_H: the all-wildcard H-pattern composed with its copy, X = ∅, and
  key literal u.id = u′.id for a designated node u.

A match of ψ_H's pattern sends the two H-copies into the triangle by
two independent colorings; choosing colorings that differ at u merges
two distinctly-labeled corners — a label conflict.  Such a pair exists
iff H is 3-colorable (permute colors), so Σ is satisfiable iff H is
**not** 3-colorable.
"""

from __future__ import annotations

from repro.deps.ged import GED, GKey
from repro.deps.literals import ConstantLiteral, VariableLiteral
from repro.graph.generators import undirected_edge_set
from repro.graph.graph import Graph
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern
from repro.reductions.coloring import check_coloring_instance

TRIANGLE_LABELS = ("R", "G", "B")


def triangle_pattern() -> Pattern:
    """K3 with distinctly labeled corners and both-way ``adj`` edges."""
    nodes = {f"c{i}": TRIANGLE_LABELS[i] for i in range(3)}
    edges = []
    for i in range(3):
        for j in range(3):
            if i != j:
                edges.append((f"c{i}", "adj", f"c{j}"))
    return Pattern(nodes, edges)


def instance_pattern(h: Graph, label: str = WILDCARD) -> Pattern:
    """The instance graph H as a pattern (wildcard nodes by default)."""
    nodes = {node_id: label for node_id in sorted(h.node_ids)}
    edges = [(s, l, t) for (s, l, t) in sorted(h.edges)]
    return Pattern(nodes, edges)


def designated_edge(h: Graph) -> tuple[str, str]:
    """A fixed edge of H (the lexicographically first)."""
    return min(undirected_edge_set(h))


def gfd_satisfiability_instance(h: Graph) -> list[GED]:
    """Σ_H (two GFDs): satisfiable iff H is NOT 3-colorable."""
    check_coloring_instance(h)
    phi_tri = GED(
        triangle_pattern(),
        [],
        [ConstantLiteral(f"c{i}", "col", i) for i in range(3)],
        name="phi-triangle",
    )
    u, v = designated_edge(h)
    phi_h = GED(
        instance_pattern(h),
        [],
        [VariableLiteral(u, "col", v, "col")],
        name="phi-H",
    )
    return [phi_tri, phi_h]


def gkey_satisfiability_instance(h: Graph) -> list[GKey]:
    """Σ_H (two GKeys, no constants): satisfiable iff H NOT 3-colorable."""
    check_coloring_instance(h)
    from repro.deps.ged import make_gkey

    psi_tri = make_gkey(triangle_pattern(), "c0", name="psi-triangle")
    u, _ = designated_edge(h)
    psi_h = make_gkey(instance_pattern(h), u, name="psi-H")
    return [psi_tri, psi_h]
