"""GGCP → GED∨ satisfiability (lower bound of Theorem 9).

The paper uses three GED∨s with constant and variable literals only;
ours mirror the GDC construction with the binary-domain constraint
folded into a single disjunction (Example 10's device):

* ψ_col  = Q_v[x](∅ → x.color = 0 ∨ x.color = 1) — existence and
  binary domain in one disjunctive rule;
* ψ_F    = Q_F(∅ → v.color = v.color) — forces a homomorphic image of
  F into any model (the Y is satisfied whenever the designated node
  has a color, which ψ_col guarantees);
* ψ_mono = Q_{K_k}(⋀_{i<j} m_i.color = m_j.color → ∅) — the empty
  disjunction forbids monochromatic K_k.

Satisfiable iff GGCP(F, K_k) answers yes, by the same two directions
as :mod:`repro.reductions.to_gdc`.
"""

from __future__ import annotations

from itertools import combinations

from repro.deps.literals import ConstantLiteral, VariableLiteral
from repro.extensions.gedvee import GEDVee
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.reductions.coloring import check_coloring_instance
from repro.reductions.to_gdc import F_LABEL, clique_pattern, f_pattern


def gedvee_ggcp_instance(f: Graph, k: int) -> list[GEDVee]:
    """The three GED∨s: satisfiable iff GGCP(F, K_k) answers yes."""
    check_coloring_instance(f)
    single = Pattern({"x": F_LABEL})
    psi_col = GEDVee(
        single,
        [],
        [ConstantLiteral("x", "color", 0), ConstantLiteral("x", "color", 1)],
        name="psi-col",
    )
    anchor = min(f.node_ids)
    psi_f = GEDVee(
        f_pattern(f),
        [],
        [VariableLiteral(anchor, "color", anchor, "color")],
        name="psi-F",
    )
    mono = clique_pattern(k)
    psi_mono = GEDVee(
        mono,
        [
            VariableLiteral(f"m{i}", "color", f"m{j}", "color")
            for i, j in combinations(range(k), 2)
        ],
        [],
        name="psi-mono",
    )
    return [psi_col, psi_f, psi_mono]
