"""3-colorability: instances and a brute-force oracle.

The lower bounds of Theorems 3, 5 and 6 are by reductions from
(the complement of) the 3-colorability problem, which is NP-complete
even for connected graphs [25].  Instances here are undirected graphs
encoded with both edge orientations (label ``adj``), as produced by
:func:`repro.graph.generators.random_connected_undirected_graph`.

The oracle enumerates colorings with simple pruning; it is exponential
(that is the point — benchmark baselines measure it too) but fine for
the ≤ 12-node instances the benchmarks use.
"""

from __future__ import annotations

from repro.errors import ReductionError
from repro.graph.generators import undirected_edge_set
from repro.graph.graph import Graph


def check_coloring_instance(h: Graph, edge_label: str = "adj") -> None:
    """Validate an undirected 3-colorability instance: loop-free,
    both-orientation encoded, at least one edge."""
    for source, label, target in h.edges:
        if label != edge_label:
            raise ReductionError(f"unexpected edge label {label!r} in instance")
        if source == target:
            raise ReductionError("3-colorability instances must be loop-free")
        if not h.has_edge(target, edge_label, source):
            raise ReductionError("instance must encode both edge orientations")
    if not undirected_edge_set(h, edge_label):
        raise ReductionError("instance needs at least one edge")


def is_three_colorable(h: Graph, edge_label: str = "adj") -> bool:
    """Brute-force 3-colorability with greedy pruning (oracle)."""
    nodes = sorted(h.node_ids)
    edges = undirected_edge_set(h, edge_label)
    adjacency: dict[str, set[str]] = {n: set() for n in nodes}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    coloring: dict[str, int] = {}

    def assign(index: int) -> bool:
        if index == len(nodes):
            return True
        node = nodes[index]
        for color in range(3):
            if all(coloring.get(nb) != color for nb in adjacency[node]):
                coloring[node] = color
                if assign(index + 1):
                    return True
                del coloring[node]
        return False

    return assign(0)


def find_three_coloring(h: Graph, edge_label: str = "adj") -> dict[str, int] | None:
    """A proper 3-coloring or None."""
    nodes = sorted(h.node_ids)
    edges = undirected_edge_set(h, edge_label)
    adjacency: dict[str, set[str]] = {n: set() for n in nodes}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    coloring: dict[str, int] = {}

    def assign(index: int) -> bool:
        if index == len(nodes):
            return True
        node = nodes[index]
        for color in range(3):
            if all(coloring.get(nb) != color for nb in adjacency[node]):
                coloring[node] = color
                if assign(index + 1):
                    return True
                del coloring[node]
        return False

    return dict(coloring) if assign(0) else None
