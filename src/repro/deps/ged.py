"""Graph entity dependencies — GEDs and their sub-classes (Section 3).

A GED φ = Q[x̄](X → Y) combines a graph pattern Q (the topological scope)
with an attribute dependency X → Y over literal sets X and Y.  The
paper's sub-classes, all represented by the same :class:`GED` type and
recognized structurally:

========  ===========================================================
GFD       no id literals (the GFDs of [23], under homomorphism)
GKey      Q = Q1 composed with a copy of Q1, Y = x0.id = y0.id
GEDx      no constant literals ("variable GEDs")
GFDx      neither id nor constant literals (extend relational FDs)
forbidding  Y = false
========  ===========================================================
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.deps.literals import (
    FALSE,
    ConstantLiteral,
    IdLiteral,
    Literal,
    VariableLiteral,
    check_literal,
)
from repro.errors import DependencyError
from repro.patterns.pattern import Pattern


class GED:
    """A graph entity dependency Q[x̄](X → Y).

    ``X`` and ``Y`` are sets of literals over the pattern's variables
    (either may be empty; ``Y`` may be ``[FALSE]`` for forbidding
    constraints).  Instances are immutable and hashable.
    """

    def __init__(
        self,
        pattern: Pattern,
        X: Iterable[Literal] = (),
        Y: Iterable[Literal] = (),
        name: str | None = None,
    ):
        self.pattern = pattern
        self.X: frozenset[Literal] = frozenset(X)
        self.Y: frozenset[Literal] = frozenset(Y)
        self.name = name
        for literal in self.X | self.Y:
            check_literal(literal, pattern.variables)
        if FALSE in self.X:
            raise DependencyError("'false' may only appear in Y (forbidding constraints)")

    # ------------------------------------------------------------------
    # Classification (Section 3, "Special cases")
    # ------------------------------------------------------------------
    @property
    def has_id_literals(self) -> bool:
        return any(isinstance(l, IdLiteral) for l in self.X | self.Y)

    @property
    def has_constant_literals(self) -> bool:
        """Constant literals; ``false`` counts (it desugars to constants)."""
        return any(
            isinstance(l, ConstantLiteral) or l is FALSE for l in self.X | self.Y
        )

    @property
    def is_gfd(self) -> bool:
        """GFDs of [23]: GEDs without id literals."""
        return not self.has_id_literals

    @property
    def is_gedx(self) -> bool:
        """Variable GEDs: no constant literals."""
        return not self.has_constant_literals

    @property
    def is_gfdx(self) -> bool:
        """Variable GFDs: neither constant nor id literals."""
        return self.is_gfd and self.is_gedx

    @property
    def is_forbidding(self) -> bool:
        """Forbidding constraints Q[x̄](X → false)."""
        return FALSE in self.Y

    def classify(self) -> set[str]:
        """All sub-class names this dependency belongs to."""
        classes = {"GED"}
        if self.is_gfd:
            classes.add("GFD")
        if self.is_gedx:
            classes.add("GEDx")
        if self.is_gfdx:
            classes.add("GFDx")
        if isinstance(self, GKey):
            classes.add("GKey")
        if self.is_forbidding:
            classes.add("forbidding")
        return classes

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GED):
            return NotImplemented
        return self.pattern == other.pattern and self.X == other.X and self.Y == other.Y

    def __hash__(self) -> int:
        # Memoized like Pattern.__hash__: dependencies are immutable
        # and hashed per candidate match on validation hot paths.
        cached = getattr(self, "_hash", None)
        if cached is None:
            cached = self._hash = hash((self.pattern, self.X, self.Y))
        return cached

    def __str__(self) -> str:
        x = " ∧ ".join(sorted(str(l) for l in self.X)) or "∅"
        y = " ∧ ".join(sorted(str(l) for l in self.Y)) or "∅"
        head = self.name or "GED"
        return f"{head}: Q[{', '.join(self.pattern.variables)}]({x} → {y})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self}>"


class GKey(GED):
    """A key for graphs (Section 3 (2)).

    ``Q[z̄](X → x0.id = y0.id)`` where Q is ``Q1[x̄]`` composed with a
    copy ``Q2[ȳ]`` of Q1 via a bijection f, and ``y0 = f(x0)``.  Use
    :func:`make_gkey` to build one from Q1 and the comparison spec.
    """

    def __init__(
        self,
        q1: Pattern,
        bijection: Mapping[str, str],
        x0: str,
        X: Iterable[Literal] = (),
        name: str | None = None,
    ):
        if x0 not in q1.variables:
            raise DependencyError(f"designated node {x0!r} is not a variable of Q1")
        q2 = q1.copy_with_bijection(bijection)
        pattern = q1.compose(q2)
        y0 = bijection[x0]
        super().__init__(pattern, X, [IdLiteral(x0, y0)], name=name)
        self.q1 = q1
        self.bijection = dict(bijection)
        self.x0 = x0
        self.y0 = y0


def make_gkey(
    q1: Pattern,
    x0: str,
    value_attrs: Mapping[str, Iterable[str]] | None = None,
    id_vars: Iterable[str] = (),
    constant_conditions: Iterable[ConstantLiteral] = (),
    suffix: str = "'",
    name: str | None = None,
) -> GKey:
    """Build a GKey from a single pattern Q1 and a comparison spec.

    Parameters
    ----------
    q1:
        the entity pattern Q1[x̄] (e.g. album --primary_artist--> artist).
    x0:
        the designated variable identified by the key.
    value_attrs:
        ``variable -> attributes`` compared by value between the pattern
        and its copy, producing variable literals ``v.A = f(v).A``.
    id_vars:
        variables whose images must already be identified, producing id
        literals ``v.id = f(v).id`` in X — this is what makes keys
        *recursive* (Example 1: to identify an album, first identify its
        artist, and vice versa).
    constant_conditions:
        extra constant literals for X (conditions on Q1's variables; each
        is mirrored onto the copy).
    """
    bijection = {v: v + suffix for v in q1.variables}
    X: list[Literal] = []
    for variable, attrs in (value_attrs or {}).items():
        if variable not in q1.variables:
            raise DependencyError(f"value-compared variable {variable!r} not in Q1")
        for attr in attrs:
            X.append(VariableLiteral(variable, attr, bijection[variable], attr))
    for variable in id_vars:
        if variable not in q1.variables:
            raise DependencyError(f"id-compared variable {variable!r} not in Q1")
        X.append(IdLiteral(variable, bijection[variable]))
    for condition in constant_conditions:
        if condition.var not in q1.variables:
            raise DependencyError(f"condition variable {condition.var!r} not in Q1")
        X.append(condition)
        X.append(ConstantLiteral(bijection[condition.var], condition.attr, condition.const))
    return GKey(q1, bijection, x0, X, name=name)


def sigma_size(dependencies: Iterable[GED]) -> int:
    """|Σ| = total size of patterns plus literal counts.

    Used by the Theorem 1 bound |Eq| ≤ 4·|G|·|Σ|.
    """
    total = 0
    for ged in dependencies:
        total += ged.pattern.size() + len(ged.X) + len(ged.Y)
    return total
