"""Relational dependencies and their GED encodings (Section 3 (5)).

The paper shows that when relation tuples are represented as nodes of a
graph (see :mod:`repro.graph.relational`), traditional FDs, CFDs [21]
and EGDs [7] are all expressible as GEDs.  This module implements the
three relational dependency classes, direct relational satisfaction
checks (used as oracles in tests), and the encodings:

* an **FD** ``R(X → Y)`` becomes a two-node pattern (two R-tuples) with
  variable literals equating the X attributes in the premise and the Y
  attributes in the conclusion, plus the attribute-existence GED
  ``Q[t](∅ → t.A = t.A)`` for the mentioned attributes;
* a **CFD** adds constant literals for the pattern-tableau constants;
* an **EGD** ``∀z̄ (φ(z̄) → y1 = y2)`` becomes the pair (φ_R, φ_E) of the
  paper: an edgeless pattern Q_E with one node per relation atom,
  φ_R enforcing attribute existence, φ_E enforcing the implied equality.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, Literal, VariableLiteral
from repro.errors import DependencyError
from repro.graph.graph import Value
from repro.graph.relational import Relation
from repro.patterns.pattern import Pattern


class FD:
    """A relational functional dependency ``R: X → Y``."""

    def __init__(self, relation: str, lhs: Sequence[str], rhs: Sequence[str]):
        if not relation:
            raise DependencyError("FD needs a relation name")
        if not rhs:
            raise DependencyError("FD needs a non-empty right-hand side")
        self.relation = relation
        self.lhs = list(lhs)
        self.rhs = list(rhs)

    def holds_on(self, relation: Relation) -> bool:
        """Direct relational semantics (testing oracle)."""
        for i, t1 in enumerate(relation.tuples):
            for t2 in relation.tuples[i:]:
                if all(t1[a] == t2[a] for a in self.lhs):
                    if not all(t1[b] == t2[b] for b in self.rhs):
                        return False
        return True

    def encode(self) -> list[GED]:
        """The GED encoding: attribute existence + the FD itself."""
        existence = _existence_ged(self.relation, self.lhs + self.rhs)
        pattern = Pattern({"t1": self.relation, "t2": self.relation})
        X: list[Literal] = [VariableLiteral("t1", a, "t2", a) for a in self.lhs]
        Y: list[Literal] = [VariableLiteral("t1", b, "t2", b) for b in self.rhs]
        fd = GED(pattern, X, Y, name=f"FD {self.relation}({self.lhs} -> {self.rhs})")
        return [existence, fd]

    def __str__(self) -> str:
        return f"{self.relation}: {', '.join(self.lhs)} -> {', '.join(self.rhs)}"


class CFD:
    """A conditional functional dependency [21].

    ``lhs`` / ``rhs`` map attributes to either a constant or ``None``
    (the CFD wildcard '_', meaning "any value, but equal across the two
    tuples" on the left and "equal across the two tuples" on the right).
    """

    def __init__(
        self,
        relation: str,
        lhs: Mapping[str, Value | None],
        rhs: Mapping[str, Value | None],
    ):
        if not rhs:
            raise DependencyError("CFD needs a non-empty right-hand side")
        self.relation = relation
        self.lhs = dict(lhs)
        self.rhs = dict(rhs)

    def holds_on(self, relation: Relation) -> bool:
        """Direct relational semantics (testing oracle)."""
        def lhs_matches(t: dict) -> bool:
            return all(c is None or t[a] == c for a, c in self.lhs.items())

        for t1 in relation.tuples:
            if not lhs_matches(t1):
                continue
            for c_attr, c in self.rhs.items():
                if c is not None and t1[c_attr] != c:
                    return False
            for t2 in relation.tuples:
                if not lhs_matches(t2):
                    continue
                if all(t1[a] == t2[a] for a in self.lhs):
                    for c_attr, c in self.rhs.items():
                        if c is None and t1[c_attr] != t2[c_attr]:
                            return False
        return True

    def encode(self) -> list[GED]:
        """The GED encoding over the tuple-as-node representation."""
        attrs = list(self.lhs) + list(self.rhs)
        existence = _existence_ged(self.relation, attrs)
        pattern = Pattern({"t1": self.relation, "t2": self.relation})
        X: list[Literal] = []
        for attr, const in self.lhs.items():
            X.append(VariableLiteral("t1", attr, "t2", attr))
            if const is not None:
                X.append(ConstantLiteral("t1", attr, const))
                X.append(ConstantLiteral("t2", attr, const))
        Y: list[Literal] = []
        for attr, const in self.rhs.items():
            if const is None:
                Y.append(VariableLiteral("t1", attr, "t2", attr))
            else:
                Y.append(ConstantLiteral("t1", attr, const))
                Y.append(ConstantLiteral("t2", attr, const))
        cfd = GED(pattern, X, Y, name=f"CFD {self.relation}")
        return [existence, cfd]


class EGD:
    """An equality-generating dependency ``∀z̄ (φ(z̄) → y1 = y2)``.

    ``atoms`` is a list of ``(relation_name, {attribute: logic_var})``
    pairs; a logic variable occurring in several positions expresses the
    equality atoms of φ.  ``conclusion`` names the two logic variables
    y1, y2 equated by the EGD.
    """

    def __init__(
        self,
        atoms: Sequence[tuple[str, Mapping[str, str]]],
        conclusion: tuple[str, str],
    ):
        if not atoms:
            raise DependencyError("EGD needs at least one relation atom")
        self.atoms = [(rel, dict(pos)) for rel, pos in atoms]
        self.conclusion = conclusion
        positions = self._positions()
        for y in conclusion:
            if y not in positions:
                raise DependencyError(f"conclusion variable {y!r} does not occur in any atom")

    def _positions(self) -> dict[str, list[tuple[str, str]]]:
        """logic var -> [(pattern node, attribute)] occurrences."""
        occurrences: dict[str, list[tuple[str, str]]] = {}
        for index, (_, mapping) in enumerate(self.atoms):
            node = f"t{index}"
            for attr, logic_var in mapping.items():
                occurrences.setdefault(logic_var, []).append((node, attr))
        return occurrences

    def holds_on(self, relations: Mapping[str, Relation]) -> bool:
        """Direct relational semantics by exhaustive enumeration (oracle)."""
        from itertools import product

        pools = []
        for rel_name, _ in self.atoms:
            relation = relations.get(rel_name)
            pools.append(relation.tuples if relation is not None else [])
        positions = self._positions()
        for combo in product(*pools):
            binding: dict[str, Value] = {}
            consistent = True
            for index, (_, mapping) in enumerate(self.atoms):
                for attr, logic_var in mapping.items():
                    value = combo[index][attr]
                    if logic_var in binding and binding[logic_var] != value:
                        consistent = False
                        break
                    binding[logic_var] = value
                if not consistent:
                    break
            if consistent:
                y1, y2 = self.conclusion
                if binding[y1] != binding[y2]:
                    return False
        return True

    def encode(self) -> list[GED]:
        """The paper's (φ_R, φ_E) pair of GFDs."""
        nodes = {f"t{i}": rel for i, (rel, _) in enumerate(self.atoms)}
        pattern = Pattern(nodes)  # Q_E has no edges.
        # φ_R: every mentioned attribute exists.
        YR: list[Literal] = []
        for index, (_, mapping) in enumerate(self.atoms):
            node = f"t{index}"
            for attr in mapping:
                YR.append(VariableLiteral(node, attr, node, attr))
        phi_r = GED(pattern, [], YR, name="EGD existence")
        # φ_E: shared logic variables → premise equalities; conclusion.
        positions = self._positions()
        XE: list[Literal] = []
        for occurrences in positions.values():
            first_node, first_attr = occurrences[0]
            for node, attr in occurrences[1:]:
                XE.append(VariableLiteral(first_node, first_attr, node, attr))
        y1, y2 = self.conclusion
        n1, a1 = positions[y1][0]
        n2, a2 = positions[y2][0]
        phi_e = GED(pattern, XE, [VariableLiteral(n1, a1, n2, a2)], name="EGD equality")
        return [phi_r, phi_e]


def _existence_ged(relation: str, attributes: Sequence[str]) -> GED:
    """``Q[t](∅ → t.A = t.A)``: every R-tuple has the listed attributes.

    This is the paper's attribute-existence device (Section 3,
    "Existence of attributes"), in the flavor of TGDs limited to
    attributes — not expressible by relational EGDs/FDs.
    """
    pattern = Pattern({"t": relation})
    Y = [VariableLiteral("t", a, "t", a) for a in dict.fromkeys(attributes)]
    return GED(pattern, [], Y, name=f"existence {relation}{list(attributes)}")
