"""Dependencies for graphs: literals, GEDs and sub-classes (Section 3)."""

from repro.deps.ged import GED, GKey, make_gkey, sigma_size
from repro.deps.io import (
    ged_from_dict,
    ged_from_json,
    ged_to_dict,
    ged_to_json,
    literal_from_dict,
    literal_to_dict,
)
from repro.deps.literals import (
    FALSE,
    ConstantLiteral,
    IdLiteral,
    Literal,
    VariableLiteral,
    check_literal,
    desugar_false,
    literal_variables,
    substitute,
)
from repro.deps.relational import CFD, EGD, FD

__all__ = [
    "CFD",
    "EGD",
    "FALSE",
    "FD",
    "GED",
    "GKey",
    "ConstantLiteral",
    "IdLiteral",
    "Literal",
    "VariableLiteral",
    "check_literal",
    "desugar_false",
    "ged_from_dict",
    "ged_from_json",
    "ged_to_dict",
    "ged_to_json",
    "literal_from_dict",
    "literal_to_dict",
    "literal_variables",
    "make_gkey",
    "sigma_size",
    "substitute",
]
