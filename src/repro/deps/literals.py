"""Dependency literals (Section 3).

A literal of x̄ is one of

* a **constant literal** ``x.A = c`` — attribute A of x equals constant c
  (A may not be ``id``);
* a **variable literal** ``x.A = y.B`` — attributes of two (not
  necessarily distinct) variables agree (neither may be ``id``);
* an **id literal** ``x.id = y.id`` — x and y denote the same node, hence
  share all attributes and edges.

``FALSE`` is the paper's syntactic sugar for an unsatisfiable Y (e.g.
``y.A = c ∧ y.A = d`` for distinct c, d); GEDs with ``Y = [FALSE]`` are
the *forbidding constraints* of Section 3 (4).  We keep ``FALSE`` as a
first-class literal (cleaner than forcing callers to invent the two
constants) and provide :func:`desugar_false` for code paths that want
the two-constant encoding.

Literals are immutable and hashable so they can live in sets — the FD
part of a GED is a pair of literal *sets* X → Y.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import LiteralError
from repro.graph.graph import ID_ATTRIBUTE, Value


@dataclass(frozen=True)
class ConstantLiteral:
    """``x.A = c``."""

    var: str
    attr: str
    const: Value

    def __post_init__(self) -> None:
        if self.attr == ID_ATTRIBUTE:
            raise LiteralError("constant literals may not use the 'id' attribute")
        if not self.var or not self.attr:
            raise LiteralError("constant literal needs a variable and an attribute")

    @property
    def variables(self) -> frozenset[str]:
        return frozenset({self.var})

    def __str__(self) -> str:
        return f"{self.var}.{self.attr} = {self.const!r}"


@dataclass(frozen=True)
class VariableLiteral:
    """``x.A = y.B``."""

    var1: str
    attr1: str
    var2: str
    attr2: str

    def __post_init__(self) -> None:
        if ID_ATTRIBUTE in (self.attr1, self.attr2):
            raise LiteralError(
                "variable literals may not use the 'id' attribute; use IdLiteral"
            )
        if not (self.var1 and self.attr1 and self.var2 and self.attr2):
            raise LiteralError("variable literal needs two variable.attribute terms")

    @property
    def variables(self) -> frozenset[str]:
        return frozenset({self.var1, self.var2})

    def flipped(self) -> "VariableLiteral":
        return VariableLiteral(self.var2, self.attr2, self.var1, self.attr1)

    def __str__(self) -> str:
        return f"{self.var1}.{self.attr1} = {self.var2}.{self.attr2}"


@dataclass(frozen=True)
class IdLiteral:
    """``x.id = y.id``."""

    var1: str
    var2: str

    def __post_init__(self) -> None:
        if not (self.var1 and self.var2):
            raise LiteralError("id literal needs two variables")

    @property
    def variables(self) -> frozenset[str]:
        return frozenset({self.var1, self.var2})

    def flipped(self) -> "IdLiteral":
        return IdLiteral(self.var2, self.var1)

    def __str__(self) -> str:
        return f"{self.var1}.id = {self.var2}.id"


class _FalseLiteral:
    """The Boolean constant ``false`` (a singleton)."""

    _instance: "_FalseLiteral | None" = None

    def __new__(cls) -> "_FalseLiteral":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    @property
    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "false"

    def __repr__(self) -> str:
        return "FALSE"

    def __hash__(self) -> int:
        return hash("__false__")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _FalseLiteral)


#: The unique ``false`` literal.
FALSE = _FalseLiteral()

Literal = Union[ConstantLiteral, VariableLiteral, IdLiteral, _FalseLiteral]

#: Internal marker constants for desugaring ``false``.
_FALSE_ATTR = "__false__"
_FALSE_C0: Value = "__false_c0__"
_FALSE_C1: Value = "__false_c1__"


def desugar_false(variable: str) -> tuple[ConstantLiteral, ConstantLiteral]:
    """The paper's encoding of ``false``: ``y.A = c ∧ y.A = d``, c ≠ d."""
    return (
        ConstantLiteral(variable, _FALSE_ATTR, _FALSE_C0),
        ConstantLiteral(variable, _FALSE_ATTR, _FALSE_C1),
    )


def literal_variables(literals) -> set[str]:
    """All variables mentioned by a collection of literals."""
    result: set[str] = set()
    for literal in literals:
        result |= literal.variables
    return result


def check_literal(literal: Literal, variables) -> None:
    """Raise :class:`LiteralError` unless the literal only uses ``variables``."""
    if not isinstance(
        literal, (ConstantLiteral, VariableLiteral, IdLiteral, _FalseLiteral)
    ):
        raise LiteralError(f"not a literal: {literal!r}")
    unknown = literal.variables - set(variables)
    if unknown:
        raise LiteralError(
            f"literal {literal} uses variables {sorted(unknown)} not in the pattern"
        )


def substitute(literal: Literal, mapping) -> Literal:
    """Apply a variable substitution h to a literal: the paper's h(l).

    ``mapping`` sends variables to variables (proof-level use) or to node
    ids (match-level use); unmapped variables are kept.
    """
    if isinstance(literal, ConstantLiteral):
        return ConstantLiteral(mapping.get(literal.var, literal.var), literal.attr, literal.const)
    if isinstance(literal, VariableLiteral):
        return VariableLiteral(
            mapping.get(literal.var1, literal.var1),
            literal.attr1,
            mapping.get(literal.var2, literal.var2),
            literal.attr2,
        )
    if isinstance(literal, IdLiteral):
        return IdLiteral(
            mapping.get(literal.var1, literal.var1),
            mapping.get(literal.var2, literal.var2),
        )
    return literal  # FALSE has no variables
