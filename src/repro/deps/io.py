"""JSON (de)serialization for literals and dependencies."""

from __future__ import annotations

import json
from typing import Any

from repro.deps.ged import GED
from repro.deps.literals import (
    FALSE,
    ConstantLiteral,
    IdLiteral,
    Literal,
    VariableLiteral,
)
from repro.errors import DependencyError
from repro.patterns.io import pattern_from_dict, pattern_to_dict


def literal_to_dict(literal: Literal) -> dict[str, Any]:
    if isinstance(literal, ConstantLiteral):
        return {"kind": "const", "var": literal.var, "attr": literal.attr, "value": literal.const}
    if isinstance(literal, VariableLiteral):
        return {
            "kind": "var",
            "var1": literal.var1,
            "attr1": literal.attr1,
            "var2": literal.var2,
            "attr2": literal.attr2,
        }
    if isinstance(literal, IdLiteral):
        return {"kind": "id", "var1": literal.var1, "var2": literal.var2}
    if literal is FALSE:
        return {"kind": "false"}
    raise DependencyError(f"cannot serialize literal {literal!r}")


def literal_from_dict(data: dict[str, Any]) -> Literal:
    kind = data.get("kind")
    if kind == "const":
        return ConstantLiteral(data["var"], data["attr"], data["value"])
    if kind == "var":
        return VariableLiteral(data["var1"], data["attr1"], data["var2"], data["attr2"])
    if kind == "id":
        return IdLiteral(data["var1"], data["var2"])
    if kind == "false":
        return FALSE
    raise DependencyError(f"unknown literal kind {kind!r}")


def ged_to_dict(ged: GED) -> dict[str, Any]:
    return {
        "pattern": pattern_to_dict(ged.pattern),
        "X": sorted((literal_to_dict(l) for l in ged.X), key=str),
        "Y": sorted((literal_to_dict(l) for l in ged.Y), key=str),
        "name": ged.name,
    }


def ged_from_dict(data: dict[str, Any]) -> GED:
    return GED(
        pattern_from_dict(data["pattern"]),
        [literal_from_dict(l) for l in data.get("X", [])],
        [literal_from_dict(l) for l in data.get("Y", [])],
        name=data.get("name"),
    )


def ged_to_json(ged: GED, indent: int | None = None) -> str:
    return json.dumps(ged_to_dict(ged), indent=indent, sort_keys=True)


def ged_from_json(text: str) -> GED:
    return ged_from_dict(json.loads(text))
