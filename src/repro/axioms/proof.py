"""Machine-checkable proof objects for the axiom system A_GED (Section 6).

A proof of φ from Σ is a sequence of GEDs φ1, ..., φn = φ where each φi
is either a member of Σ (a *premise*) or follows from earlier lines by
one of the six inference rules GED1–GED6 of Table 2.  Each
:class:`ProofLine` records its justification with enough detail for
:class:`ProofChecker` to *re-derive* the line independently — the
checker recomputes every rule application, including the semantic side
conditions of GED5 (inconsistency of Eq_X ∪ Eq_Y) and GED6 (a match of
Q1 into the coercion (G_Q)_{Eq_X ∪ Eq_Y} whose X1-image is deducible).

Representation notes
--------------------
* Proof-level literals are the ordinary dependency literals.  The paper
  allows ``c = x.A`` as an intermediate form; our representation keeps
  constant literals normalized as ``x.A = c``, so GED3 (symmetry) is
  the identity on constant literals and GED4 (transitivity) accepts the
  shared term in any position.  Variable and id literals are *not*
  normalized — ``x.A = y.B`` and ``y.B = x.A`` are distinct objects —
  so GED3 does real work for them (and is demonstrably independent).
* GED1's X_id is the set of reflexive id literals ``x.id = x.id``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.chase.canonical import canonical_graph, eq_from_literals, literal_entailed
from repro.chase.coercion import coerce, representative_map
from repro.chase.eqrel import EquivalenceRelation
from repro.deps.ged import GED
from repro.deps.literals import FALSE, IdLiteral, Literal, substitute
from repro.errors import ProofError
from repro.matching.homomorphism import is_homomorphism


@dataclass(frozen=True)
class Justification:
    """Why a proof line holds.

    ``rule`` is one of ``premise``, ``GED1``..``GED6``.  The remaining
    fields are rule-specific:

    * premise — no extra data (the line's GED must be in Σ);
    * GED1 — the line's GED must be Q(X → X ∪ X_id);
    * GED2 — ``sources = (line,)``, ``literal`` the id literal used,
      ``attr`` the attribute name;
    * GED3 — ``sources = (line,)``, ``literal`` the literal flipped;
    * GED4 — ``sources = (line,)``, ``literals = (l1, l2)`` composed;
    * GED5 — ``sources = (line,)`` whose Eq_X ∪ Eq_Y is inconsistent;
    * GED6 — ``sources = (line_of_Q, line_of_Q1)``, ``match`` the
      homomorphism h of Q1 into (G_Q)_{Eq_X∪Eq_Y}.
    """

    rule: str
    sources: tuple[int, ...] = ()
    literal: Literal | None = None
    literals: tuple[Literal, ...] = ()
    attr: str | None = None
    match: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ProofLine:
    ged: GED
    justification: Justification

    def __str__(self) -> str:
        j = self.justification
        extra = f" via {j.sources}" if j.sources else ""
        return f"[{j.rule}{extra}] {self.ged}"


@dataclass
class Proof:
    """A proof of ``conclusion`` from ``premises`` using A_GED."""

    premises: list[GED]
    lines: list[ProofLine] = field(default_factory=list)

    @property
    def conclusion(self) -> GED:
        if not self.lines:
            raise ProofError("empty proof has no conclusion")
        return self.lines[-1].ged

    def add(self, ged: GED, justification: Justification) -> int:
        """Append a line; returns its index."""
        self.lines.append(ProofLine(ged, justification))
        return len(self.lines) - 1

    def rules_used(self) -> set[str]:
        return {line.justification.rule for line in self.lines}

    def __len__(self) -> int:
        return len(self.lines)

    def __str__(self) -> str:
        return "\n".join(f"({i + 1}) {line}" for i, line in enumerate(self.lines))


# ----------------------------------------------------------------------
# Shared helpers (used by both the rule implementations and the checker)
# ----------------------------------------------------------------------


def xid_literals(ged_pattern_variables: Sequence[str]) -> frozenset[Literal]:
    """X_id of GED1: the reflexive id literals of the pattern variables."""
    return frozenset(IdLiteral(v, v) for v in ged_pattern_variables)


def eq_of_xy(ged: GED, extra_y: frozenset[Literal] | None = None) -> EquivalenceRelation:
    """Eq_X ∪ Eq_Y of a proof line, over the canonical graph G_Q."""
    g_q = canonical_graph(ged.pattern)
    identity = {v: v for v in ged.pattern.variables}
    literals = sorted(ged.X | (extra_y if extra_y is not None else ged.Y), key=str)
    return eq_from_literals(g_q, literals, identity)


def term_pair(literal: Literal):
    """A literal as an ordered pair of proof terms.

    Terms: ``("node", v)`` for id literals, ``("attr", v, A)`` and
    ``("const", c)`` for attribute literals.  Returns None for FALSE.
    """
    from repro.deps.literals import ConstantLiteral, VariableLiteral

    if isinstance(literal, IdLiteral):
        return ("node", literal.var1), ("node", literal.var2)
    if isinstance(literal, VariableLiteral):
        return ("attr", literal.var1, literal.attr1), ("attr", literal.var2, literal.attr2)
    if isinstance(literal, ConstantLiteral):
        return ("attr", literal.var, literal.attr), ("const", literal.const)
    return None


def literal_from_terms(t1, t2) -> Literal | None:
    """Rebuild a literal from two proof terms, or None if the pair is
    not representable (const = const, node = attr, ...)."""
    from repro.deps.literals import ConstantLiteral, VariableLiteral

    if t1[0] == "node" and t2[0] == "node":
        return IdLiteral(t1[1], t2[1])
    if t1[0] == "attr" and t2[0] == "attr":
        return VariableLiteral(t1[1], t1[2], t2[1], t2[2])
    if t1[0] == "attr" and t2[0] == "const":
        return ConstantLiteral(t1[1], t1[2], t2[1])
    if t1[0] == "const" and t2[0] == "attr":
        return ConstantLiteral(t2[1], t2[2], t1[1])
    return None


def flip_literal(literal: Literal) -> Literal:
    """GED3's symmetric form (identity on constant literals / FALSE)."""
    from repro.deps.literals import ConstantLiteral, VariableLiteral

    if isinstance(literal, IdLiteral):
        return literal.flipped()
    if isinstance(literal, VariableLiteral):
        return literal.flipped()
    if isinstance(literal, ConstantLiteral) or literal is FALSE:
        return literal
    raise ProofError(f"cannot flip {literal!r}")


def canonicalize_match(
    eq: EquivalenceRelation, match: Mapping[str, str]
) -> dict[str, str]:
    """Map a match through the current class representatives.

    A GED6 match names one *member* per class (the paper's coercion
    nodes are classes [x]_Eq; any member denotes its class); projecting
    through the representatives yields the map that must be an actual
    homomorphism into the coercion graph.  The *substitution* h(Y1)
    keeps the member names verbatim, so conclusions may mention
    non-representative variables.
    """
    reps = representative_map(eq)
    return {var: reps.get(node, node) for var, node in match.items()}


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------


class ProofChecker:
    """Re-derives every line of a proof; raises :class:`ProofError` on
    the first line that does not follow."""

    def __init__(self, premises: Sequence[GED]):
        self.premises = list(premises)

    def check(self, proof: Proof) -> bool:
        for index, line in enumerate(proof.lines):
            try:
                self._check_line(proof, index, line)
            except ProofError:
                raise
            except Exception as exc:  # broken side-condition machinery
                raise ProofError(f"line {index + 1} failed to check: {exc}") from exc
        return True

    def check_concludes(self, proof: Proof, phi: GED) -> bool:
        self.check(proof)
        if proof.conclusion != phi:
            raise ProofError(
                f"proof concludes {proof.conclusion}, expected {phi}"
            )
        return True

    # -- per-rule verification ------------------------------------------------

    def _line(self, proof: Proof, index: int, source: int) -> ProofLine:
        if not 0 <= source < index:
            raise ProofError(f"line {index + 1} cites line {source + 1}, not earlier")
        return proof.lines[source]

    def _check_line(self, proof: Proof, index: int, line: ProofLine) -> None:
        j = line.justification
        ged = line.ged
        if j.rule == "premise":
            if ged not in self.premises:
                raise ProofError(f"line {index + 1}: {ged} is not a premise")
            return
        if j.rule == "GED1":
            expected = ged.X | xid_literals(ged.pattern.variables)
            if ged.Y != expected:
                raise ProofError(f"line {index + 1}: GED1 must conclude X ∪ X_id")
            return
        if j.rule == "GED2":
            src = self._line(proof, index, j.sources[0])
            if src.ged.pattern != ged.pattern or src.ged.X != ged.X:
                raise ProofError(f"line {index + 1}: GED2 must preserve Q and X")
            id_lit = j.literal
            if not isinstance(id_lit, IdLiteral) or id_lit not in src.ged.Y:
                raise ProofError(f"line {index + 1}: GED2 needs an id literal in Y")
            attr = j.attr
            if attr is None or not _attr_appears(src.ged.Y, id_lit, attr):
                raise ProofError(
                    f"line {index + 1}: GED2 attribute {attr!r} does not appear in Y"
                )
            from repro.deps.literals import VariableLiteral

            expected_lit = VariableLiteral(id_lit.var1, attr, id_lit.var2, attr)
            if ged.Y != frozenset({expected_lit}):
                raise ProofError(f"line {index + 1}: GED2 must conclude u.A = v.A")
            return
        if j.rule == "GED3":
            src = self._line(proof, index, j.sources[0])
            if src.ged.pattern != ged.pattern or src.ged.X != ged.X:
                raise ProofError(f"line {index + 1}: GED3 must preserve Q and X")
            if j.literal not in src.ged.Y:
                raise ProofError(f"line {index + 1}: GED3 literal not in source Y")
            if ged.Y != frozenset({flip_literal(j.literal)}):
                raise ProofError(f"line {index + 1}: GED3 must conclude the flip")
            return
        if j.rule == "GED4":
            src = self._line(proof, index, j.sources[0])
            if src.ged.pattern != ged.pattern or src.ged.X != ged.X:
                raise ProofError(f"line {index + 1}: GED4 must preserve Q and X")
            l1, l2 = j.literals
            if l1 not in src.ged.Y or l2 not in src.ged.Y:
                raise ProofError(f"line {index + 1}: GED4 literals not in source Y")
            composed = _compose(l1, l2)
            if composed is None or ged.Y != frozenset({composed}):
                raise ProofError(f"line {index + 1}: GED4 composition mismatch")
            return
        if j.rule == "GED5":
            src = self._line(proof, index, j.sources[0])
            if src.ged.pattern != ged.pattern or src.ged.X != ged.X:
                raise ProofError(f"line {index + 1}: GED5 must preserve Q and X")
            if eq_of_xy(src.ged).is_consistent:
                raise ProofError(f"line {index + 1}: GED5 needs inconsistent Eq_X ∪ Eq_Y")
            return  # any Y is a valid conclusion
        if j.rule == "GED6":
            main = self._line(proof, index, j.sources[0])
            other = self._line(proof, index, j.sources[1])
            if main.ged.pattern != ged.pattern or main.ged.X != ged.X:
                raise ProofError(f"line {index + 1}: GED6 must preserve Q and X")
            eq = eq_of_xy(main.ged)
            if not eq.is_consistent:
                raise ProofError(f"line {index + 1}: GED6 needs consistent Eq_X ∪ Eq_Y")
            raw_match = dict(j.match)
            projected = canonicalize_match(eq, raw_match)
            coerced = coerce(eq)
            if not is_homomorphism(other.ged.pattern, coerced, projected):
                raise ProofError(f"line {index + 1}: GED6 match is not a homomorphism")
            for lit in other.ged.X:
                if lit is FALSE or not literal_entailed(eq, lit, raw_match):
                    raise ProofError(
                        f"line {index + 1}: GED6 premise literal {lit} not deducible"
                    )
            mapped = frozenset(substitute(l, raw_match) for l in other.ged.Y)
            if ged.Y != main.ged.Y | mapped:
                raise ProofError(f"line {index + 1}: GED6 must conclude Y ∪ h(Y1)")
            return
        raise ProofError(f"line {index + 1}: unknown rule {j.rule!r}")


def _attr_appears(Y: frozenset[Literal], id_lit: IdLiteral, attr: str) -> bool:
    """Whether attribute ``u.A`` (or ``v.A``) appears in Y."""
    relevant = {id_lit.var1, id_lit.var2}
    for literal in Y:
        pair = term_pair(literal)
        if pair is None:
            continue
        for term in pair:
            if term[0] == "attr" and term[1] in relevant and term[2] == attr:
                return True
    return False


def _compose(l1: Literal, l2: Literal) -> Literal | None:
    """GED4: compose two literals sharing a term (symmetry-tolerant)."""
    p1, p2 = term_pair(l1), term_pair(l2)
    if p1 is None or p2 is None:
        return None
    for a, b in ((p1[0], p1[1]), (p1[1], p1[0])):
        for c, d in ((p2[0], p2[1]), (p2[1], p2[0])):
            if b == c:
                result = literal_from_terms(a, d)
                if result is not None:
                    return result
    return None
