"""Derived rules built from GED1–GED6 (Example 8).

The paper shows three derivations and we implement each as a macro that
emits only *primitive* rule applications (so checked proofs never cite
a derived rule):

* **GED7 (subset)** — from Q(X → Y) and Y1 ⊆ Y, derive Q(X → Y1):
  extract each literal with GED3 (twice, to restore orientation), then
  conjoin the singletons with GED6 using the identity match.
* **Augmentation** — from Q(X → Y), derive Q(XZ → YZ).
* **Transitivity** — from Q(X → Y) and Q(Y → Z), derive Q(X → Z).

Each macro mirrors the paper's case split: when the relevant Eq is
inconsistent the derivation short-circuits through GED5.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.axioms.proof import Proof, eq_of_xy
from repro.axioms.system import ged1, ged3, ged5, ged6
from repro.deps.ged import GED
from repro.deps.literals import Literal
from repro.errors import ProofError


def _identity_match(ged: GED) -> dict[str, str]:
    return {v: v for v in ged.pattern.variables}


def conjoin(proof: Proof, line_a: int, line_b: int) -> int:
    """Q(X → Y_a), Q(X → Y_b) ⊢ Q(X → Y_a ∪ Y_b) — GED6 with the
    identity match of Q into its own coercion."""
    a = proof.lines[line_a].ged
    return ged6(proof, line_a, line_b, _identity_match(a))


def subset(proof: Proof, source: int, target_y: Iterable[Literal]) -> int:
    """GED7: from Q(X → Y) with Y1 ⊆ Y, derive exactly Q(X → Y1).

    ``target_y`` must be non-empty and a subset of the source line's Y.
    """
    src = proof.lines[source].ged
    target = list(dict.fromkeys(target_y))
    if not target:
        raise ProofError("subset extraction needs a non-empty target")
    missing = [l for l in target if l not in src.Y]
    if missing:
        raise ProofError(f"subset target not contained in Y: {missing}")
    if not eq_of_xy(src).is_consistent:
        # Inconsistent case of Example 8(a): GED5 concludes any Y1.
        return ged5(proof, source, target)

    singles: list[int] = []
    for literal in target:
        flipped_line = ged3(proof, source, literal)
        if proof.lines[flipped_line].ged.Y == frozenset({literal}):
            # Flip was the identity (constant literals): done in one step.
            singles.append(flipped_line)
        else:
            singles.append(ged3(proof, flipped_line, next(iter(proof.lines[flipped_line].ged.Y))))
    current = singles[0]
    for line in singles[1:]:
        current = conjoin(proof, current, line)
    return current


def augmentation(proof: Proof, source: int, Z: Iterable[Literal]) -> int:
    """From Q(X → Y) derive Q(XZ → YZ) (Example 8(b))."""
    src = proof.lines[source].ged
    Z = frozenset(Z)
    XZ = src.X | Z
    start = ged1(proof, src.pattern, XZ)  # Q(XZ → XZ ∧ X_id)
    base = subset(proof, start, XZ)  # Q(XZ → XZ)
    if not eq_of_xy(proof.lines[base].ged).is_consistent:
        return ged5(proof, base, src.Y | Z)
    # Import Q(X → Y) via GED6: X ⊆ XZ is deducible from Eq_{XZ ∪ XZ}.
    merged = ged6(proof, base, source, _identity_match(src))  # Q(XZ → XZ ∪ Y)
    return subset(proof, merged, src.Y | Z)


def transitivity(proof: Proof, line_xy: int, line_yz: int) -> int:
    """From Q(X → Y) and Q(Y → Z) derive Q(X → Z) (Example 8(c))."""
    ged_xy = proof.lines[line_xy].ged
    ged_yz = proof.lines[line_yz].ged
    if ged_xy.Y != ged_yz.X or ged_xy.pattern != ged_yz.pattern:
        raise ProofError("transitivity needs Q(X → Y) and Q(Y → Z)")
    start = ged1(proof, ged_xy.pattern, ged_xy.X)  # Q(X → X ∧ X_id)
    if not eq_of_xy(proof.lines[start].ged).is_consistent:
        return ged5(proof, start, ged_yz.Y)
    with_y = ged6(proof, start, line_xy, _identity_match(ged_xy))  # Q(X → X ∪ X_id ∪ Y)
    if not eq_of_xy(proof.lines[with_y].ged).is_consistent:
        return ged5(proof, with_y, ged_yz.Y)
    with_z = ged6(proof, with_y, line_yz, _identity_match(ged_yz))  # ... ∪ Z
    return subset(proof, with_z, ged_yz.Y)
