"""Independence of the A_GED rules (Theorem 7, part 3).

For each rule the paper argues there are Σ and φ with Σ ⊢ φ whose every
proof uses that rule.  This module packages one witness per rule:

* the (Σ, φ) pair,
* the paper-style argument for why the rule is unavoidable, and
* a synthesized proof that demonstrably *uses* the rule,

which the tests verify (Σ |= φ holds, the proof checks, and the rule
appears in it).  Machine-checking the *non-existence* of rule-avoiding
proofs would require exhaustive proof search; like the paper, we state
the argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, IdLiteral, VariableLiteral
from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class IndependenceWitness:
    rule: str
    sigma: tuple[GED, ...]
    phi: GED
    argument: str


def witnesses() -> list[IndependenceWitness]:
    """One (Σ, φ, argument) witness per rule of A_GED."""
    one = Pattern({"x": "a"})
    two = Pattern({"x": "a", "y": "a"})
    three = Pattern({"x": "a", "y": "a", "z": "a"})

    w1 = IndependenceWitness(
        "GED1",
        (),
        GED(one, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "A", 1)]),
        "Only GED1 introduces a line about a pattern/premise pair (Q, X) "
        "from nothing; every other rule consumes an existing line with "
        "the same Q and X, so with Σ = ∅ no proof can start without it.",
    )
    w2 = IndependenceWitness(
        "GED2",
        (
            GED(
                two,
                [],
                [IdLiteral("x", "y"), VariableLiteral("x", "A", "x", "A")],
            ),
        ),
        GED(two, [], [VariableLiteral("x", "A", "y", "A")]),
        "x.A = y.A relates two *different* attribute terms that are never "
        "syntactically equated: only the id-semantics rule GED2 can turn "
        "x.id = y.id into an attribute equality.",
    )
    w3 = IndependenceWitness(
        "GED3",
        (GED(two, [], [VariableLiteral("x", "A", "y", "B")]),),
        GED(two, [], [VariableLiteral("y", "B", "x", "A")]),
        "The target is the mirror image of the only available literal; "
        "GED4 composing l with itself yields reflexive literals only, so "
        "symmetry (GED3) is the sole way to reverse an equality.",
    )
    w4 = IndependenceWitness(
        "GED4",
        (
            GED(
                three,
                [],
                [
                    VariableLiteral("x", "A", "y", "B"),
                    VariableLiteral("y", "B", "z", "C"),
                ],
            ),
        ),
        GED(three, [], [VariableLiteral("x", "A", "z", "C")]),
        "x.A = z.C shares no literal with Σ; only transitivity (GED4) "
        "can bridge the two premises through the shared term y.B.",
    )
    w5 = IndependenceWitness(
        "GED5",
        (),
        GED(
            one,
            [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "A", 2)],
            [ConstantLiteral("x", "A", 3)],
        ),
        "The paper's own witness: no other rule can deduce Q(X → Y) when "
        "Y contains a constant appearing in neither X nor Σ; only the "
        "inconsistency rule GED5 can conclude it.",
    )
    w6 = IndependenceWitness(
        "GED6",
        (GED(one, [], [ConstantLiteral("x", "A", 1)]),),
        GED(two, [], [ConstantLiteral("x", "A", 1), ConstantLiteral("y", "A", 1)]),
        "φ's pattern differs from Σ's, so premise citation alone cannot "
        "conclude it; GED1 yields only reflexive literals and GED5 needs "
        "an inconsistency — only the embedding rule GED6 can transport "
        "Σ's FD into φ's pattern (twice, once per embedding).",
    )
    return [w1, w2, w3, w4, w5, w6]
