"""Proof synthesis: from a chase trace to an A_GED proof (Theorem 7).

The completeness proof of Theorem 7 turns a terminal chasing sequence of
G_Q by Σ (starting from Eq_X) into a derivation:

* Claim 1 — every intermediate Eq_i is derivable: start from GED1
  (Q(X → X ∧ X_id)) and replay each chase step Eq_i ⇒_(φ,h) Eq_{i+1} as
  a GED6 application (φ ∈ Σ is cited as a premise; h is the recorded
  match, canonicalized by the checker against the current coercion);
* Claim 2 — if the chase ends inconsistent, the final GED6 application
  makes Eq_X ∪ Eq_Y inconsistent and GED5 concludes anything — in
  particular the target Y;
* otherwise Y is deducible from the final relation, and a *saturation*
  of the accumulated literal set under GED2 (id literals induce
  attribute equalities), GED3 (symmetry) and GED4 (transitivity,
  including through shared constants — the paper's rule (b)) derives
  each literal of Y, after which GED7-style subset extraction produces
  exactly Q(X → Y).

:func:`prove` therefore *constructs* a checkable proof whenever
Σ |= φ, and raises :class:`ProofError` when Σ ⊭ φ — together with
:class:`repro.axioms.proof.ProofChecker` (soundness direction) this is
the executable content of Theorem 7.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.axioms.derived import conjoin, subset
from repro.axioms.proof import Proof, eq_of_xy, term_pair
from repro.axioms.system import ged1, ged2, ged3, ged4, ged5, ged6, premise
from repro.chase.canonical import canonical_graph, eq_from_literals
from repro.chase.engine import chase
from repro.deps.ged import GED
from repro.deps.literals import (
    FALSE,
    IdLiteral,
    Literal,
    VariableLiteral,
)
from repro.errors import ProofError


def prove(sigma: Sequence[GED], phi: GED) -> Proof:
    """Synthesize an A_GED proof of φ from Σ, or raise if Σ ⊭ φ.

    φ must have a non-empty Y (an empty Y is a tautology carrying no
    content to derive).
    """
    sigma = list(sigma)
    if not phi.Y:
        raise ProofError("nothing to prove: φ has an empty Y")
    proof = Proof(premises=sigma)

    g_q = canonical_graph(phi.pattern)
    identity = {v: v for v in phi.pattern.variables}
    eq_x = eq_from_literals(g_q, sorted(phi.X, key=str), identity)

    start = ged1(proof, phi.pattern, phi.X)
    current = start

    if not eq_x.is_consistent:
        # Eq_X itself is inconsistent; GED1's conclusion X ∪ X_id already
        # has inconsistent Eq_{X∪Y}, so GED5 closes immediately.
        return _finish_via_ged5(proof, current, phi)

    result = chase(g_q, sigma, initial_eq=eq_x)

    premise_lines: dict[int, int] = {}

    def premise_line(ged: GED) -> int:
        key = id(ged)
        if key not in premise_lines:
            # The chase cites GED objects from sigma; find the equal one.
            member = next(g for g in sigma if g == ged)
            premise_lines[key] = premise(proof, member)
        return premise_lines[key]

    for step in result.steps:
        source = premise_line(step.ged)
        current = ged6(proof, current, source, step.assignment)
        if not eq_of_xy(proof.lines[current].ged).is_consistent:
            if result.consistent:
                raise ProofError(
                    "internal: replay became inconsistent but the chase was valid"
                )
            return _finish_via_ged5(proof, current, phi)

    if not result.consistent:
        # The chase was invalidated (e.g. by Eq-closure effects) without
        # the replayed Y becoming syntactically inconsistent; saturating
        # the literal set must surface the conflict.
        current = _saturate(proof, current, target=None)
        if eq_of_xy(proof.lines[current].ged).is_consistent:
            raise ProofError("internal: could not replay the chase inconsistency")
        return _finish_via_ged5(proof, current, phi)

    # Consistent chase: derive each literal of Y by saturation.
    target = frozenset(phi.Y)
    current = _saturate(proof, current, target)
    missing = target - proof.lines[current].ged.Y
    if missing:
        raise ProofError(
            f"Σ does not imply φ: cannot derive {sorted(map(str, missing))}"
        )
    return _conclude(proof, current, phi)


def _finish_via_ged5(proof: Proof, current: int, phi: GED) -> Proof:
    final = ged5(proof, current, phi.Y)
    assert proof.lines[final].ged == phi
    return proof


def _conclude(proof: Proof, current: int, phi: GED) -> Proof:
    final = subset(proof, current, sorted(phi.Y, key=str))
    if proof.lines[final].ged != phi:
        raise ProofError("internal: subset extraction missed the target")
    return proof


def _saturate(proof: Proof, current: int, target: frozenset[Literal] | None) -> int:
    """Close the current line's Y under GED2/GED3/GED4.

    Each newly derived literal is produced on its own line and folded
    into the running conjunction with GED6 (identity match).  Stops as
    soon as ``target`` (if given) is covered, or at a fixpoint.
    """
    changed = True
    while changed:
        ged_now = proof.lines[current].ged
        if target is not None and target <= ged_now.Y:
            return current
        if not eq_of_xy(ged_now).is_consistent:
            return current
        changed = False
        derivation = _next_derivation(ged_now.Y)
        if derivation is not None:
            kind, payload = derivation
            if kind == "sym":
                line = ged3(proof, current, payload)
            elif kind == "trans":
                line = ged4(proof, current, payload[0], payload[1])
            else:  # "id-attr"
                line = ged2(proof, current, payload[0], payload[1])
            current = conjoin(proof, current, line)
            changed = True
    return current


def _next_derivation(Y: frozenset[Literal]):
    """One missing GED2/GED3/GED4 consequence of Y, or None at fixpoint."""
    literals = [l for l in sorted(Y, key=str) if l is not FALSE]
    known = set(literals)

    # GED3: symmetry for variable / id literals.
    for literal in literals:
        if isinstance(literal, (VariableLiteral, IdLiteral)):
            flipped = literal.flipped()
            if flipped not in known:
                return ("sym", literal)

    # GED2: id literals induce attribute equalities for attributes that
    # appear (on either endpoint) in Y.
    attrs_of: dict[str, set[str]] = {}
    for literal in literals:
        pair = term_pair(literal)
        if pair is None:
            continue
        for term in pair:
            if term[0] == "attr":
                attrs_of.setdefault(term[1], set()).add(term[2])
    for literal in literals:
        if isinstance(literal, IdLiteral) and literal.var1 != literal.var2:
            pooled = attrs_of.get(literal.var1, set()) | attrs_of.get(literal.var2, set())
            for attr in sorted(pooled):
                induced = VariableLiteral(literal.var1, attr, literal.var2, attr)
                if induced not in known and induced.flipped() not in known:
                    return ("id-attr", (literal, attr))

    # GED4: transitive composition through a shared term.
    from repro.axioms.proof import _compose

    for i, l1 in enumerate(literals):
        for l2 in literals[i:]:
            composed = _compose(l1, l2)
            if composed is None or composed in known:
                continue
            if isinstance(composed, (VariableLiteral, IdLiteral)):
                if composed.flipped() in known:
                    continue
                pair = term_pair(composed)
                if pair[0] == pair[1]:
                    # Reflexive attr equality adds nothing new... unless
                    # it is an existence literal not yet present.
                    if composed not in known:
                        return ("trans", (l1, l2))
                    continue
            return ("trans", (l1, l2))
    return None
