"""The finite axiom system A_GED (Section 6, Table 2)."""

from repro.axioms.derived import augmentation, conjoin, subset, transitivity
from repro.axioms.independence import IndependenceWitness, witnesses
from repro.axioms.proof import (
    Justification,
    Proof,
    ProofChecker,
    ProofLine,
    flip_literal,
    xid_literals,
)
from repro.axioms.synthesis import prove
from repro.axioms.system import RULES, ged1, ged2, ged3, ged4, ged5, ged6, premise

__all__ = [
    "IndependenceWitness",
    "Justification",
    "Proof",
    "ProofChecker",
    "ProofLine",
    "RULES",
    "augmentation",
    "conjoin",
    "flip_literal",
    "ged1",
    "ged2",
    "ged3",
    "ged4",
    "ged5",
    "ged6",
    "premise",
    "prove",
    "subset",
    "transitivity",
    "witnesses",
    "xid_literals",
]
