"""Forward application of the A_GED rules (Table 2).

Each function applies one inference rule to a :class:`Proof` under
construction, appends the justified line, and returns its index.  The
side conditions are validated eagerly (the checker re-validates them
later), so a rule application that would be unsound raises
:class:`ProofError` immediately.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.axioms.proof import (
    Justification,
    Proof,
    canonicalize_match,
    eq_of_xy,
    flip_literal,
    xid_literals,
    _compose,
)
from repro.chase.canonical import literal_entailed
from repro.chase.coercion import coerce
from repro.deps.ged import GED
from repro.deps.literals import FALSE, IdLiteral, Literal, VariableLiteral, substitute
from repro.errors import ProofError
from repro.matching.homomorphism import is_homomorphism


def premise(proof: Proof, ged: GED) -> int:
    """Cite a member of Σ."""
    if ged not in proof.premises:
        raise ProofError(f"{ged} is not among the premises")
    return proof.add(ged, Justification("premise"))


def ged1(proof: Proof, pattern, X) -> int:
    """GED1: ⊢ Q[x̄](X → X ∧ X_id)."""
    X = frozenset(X)
    conclusion = GED(pattern, X, X | xid_literals(pattern.variables))
    return proof.add(conclusion, Justification("GED1"))


def ged2(proof: Proof, source: int, id_literal: IdLiteral, attr: str) -> int:
    """GED2: from Q(X → Y) with (u.id = v.id) ∈ Y, ⊢ Q(X → u.A = v.A)
    for an attribute u.A / v.A appearing in Y."""
    src = proof.lines[source].ged
    if id_literal not in src.Y:
        raise ProofError(f"GED2: {id_literal} not in the source Y")
    conclusion = GED(
        src.pattern,
        src.X,
        [VariableLiteral(id_literal.var1, attr, id_literal.var2, attr)],
    )
    return proof.add(
        conclusion,
        Justification("GED2", (source,), literal=id_literal, attr=attr),
    )


def ged3(proof: Proof, source: int, literal: Literal) -> int:
    """GED3: from Q(X → Y) with (u = v) ∈ Y, ⊢ Q(X → v = u)."""
    src = proof.lines[source].ged
    if literal not in src.Y:
        raise ProofError(f"GED3: {literal} not in the source Y")
    conclusion = GED(src.pattern, src.X, [flip_literal(literal)])
    return proof.add(conclusion, Justification("GED3", (source,), literal=literal))


def ged4(proof: Proof, source: int, l1: Literal, l2: Literal) -> int:
    """GED4: from (u1 = v), (v = u2) ∈ Y, ⊢ Q(X → u1 = u2)."""
    src = proof.lines[source].ged
    if l1 not in src.Y or l2 not in src.Y:
        raise ProofError("GED4: literals not in the source Y")
    composed = _compose(l1, l2)
    if composed is None:
        raise ProofError(f"GED4: {l1} and {l2} share no term")
    conclusion = GED(src.pattern, src.X, [composed])
    return proof.add(conclusion, Justification("GED4", (source,), literals=(l1, l2)))


def ged5(proof: Proof, source: int, Y1) -> int:
    """GED5: from Q(X → Y) with Eq_X ∪ Eq_Y inconsistent, ⊢ Q(X → Y1)."""
    src = proof.lines[source].ged
    if eq_of_xy(src).is_consistent:
        raise ProofError("GED5: Eq_X ∪ Eq_Y is consistent")
    conclusion = GED(src.pattern, src.X, Y1)
    return proof.add(conclusion, Justification("GED5", (source,)))


def ged6(
    proof: Proof,
    source: int,
    other: int,
    match: Mapping[str, str],
) -> int:
    """GED6: from Q(X → Y) (consistent), Q1(X1 → Y1), and a match h of
    Q1 in (G_Q)_{Eq_X ∪ Eq_Y} with h(x̄1) |= X1, ⊢ Q(X → Y ∧ h(Y1))."""
    main = proof.lines[source].ged
    other_ged = proof.lines[other].ged
    eq = eq_of_xy(main)
    if not eq.is_consistent:
        raise ProofError("GED6: Eq_X ∪ Eq_Y is inconsistent (use GED5)")
    raw = dict(match)
    projected = canonicalize_match(eq, raw)
    coerced = coerce(eq)
    if not is_homomorphism(other_ged.pattern, coerced, projected):
        raise ProofError("GED6: match is not a homomorphism into the coercion")
    for lit in other_ged.X:
        if lit is FALSE or not literal_entailed(eq, lit, raw):
            raise ProofError(f"GED6: premise literal {lit} is not deducible")
    mapped = frozenset(substitute(l, raw) for l in other_ged.Y)
    conclusion = GED(main.pattern, main.X, main.Y | mapped)
    return proof.add(
        conclusion,
        Justification("GED6", (source, other), match=tuple(sorted(match.items()))),
    )


#: Human-readable rule index, mirroring Table 2 of the paper.
RULES = {
    "GED1": "Σ ⊢ Q[x̄](X → X ∧ X_id)",
    "GED2": "(u.id = v.id) ∈ Y ⊢ Q[x̄](X → u.A = v.A) for u.A appearing in Y",
    "GED3": "(u = v) ∈ Y ⊢ Q[x̄](X → v = u)",
    "GED4": "(u1 = v), (v = u2) ∈ Y ⊢ Q[x̄](X → u1 = u2)",
    "GED5": "Eq_X ∪ Eq_Y inconsistent ⊢ Q[x̄](X → Y1) for any Y1",
    "GED6": "match h of Q1 in (G_Q)_{Eq_X∪Eq_Y}, h(x̄1) |= X1 ⊢ Q[x̄](X → Y ∧ h(Y1))",
}
