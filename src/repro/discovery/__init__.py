"""Discovery (mining) of GFDs from a data graph.

The paper assumes the rules of Example 1 are *given*; in practice they
are profiled from data, which is the heavily-studied follow-on problem
(GFD discovery).  This package implements the laptop-scale version:

* :mod:`repro.discovery.patterns` enumerates small candidate patterns
  from the graph's observed schema — one single-node pattern per label
  and one single-edge pattern per (source label, edge label, target
  label) triple, the shapes that dominate real query logs (Section
  5.3's bounded-size observation);
* :mod:`repro.discovery.tableize` materializes the matches of a
  pattern as a row table over (variable, attribute) columns, reducing
  literal evaluation to column lookups;
* :mod:`repro.discovery.fds` runs a levelwise (Apriori/TANE-style)
  search over literal sets: for each candidate right-hand-side literal
  it grows left-hand sides until confidence reaches 1.0 (exact rules)
  or the size budget is hit, reporting **support** (matches satisfying
  X) and **confidence** (fraction also satisfying Y) for each rule.

Discovered rules with confidence 1.0 *hold* on the input graph — the
test suite asserts ``validates(G, rule)`` for every one — and feed
directly into the cover computation (:mod:`repro.optimization.cover`)
to remove the redundancy that enumeration inevitably produces.
"""

from repro.discovery.domains import DomainConstraint, discover_domain_constraints
from repro.discovery.fds import DiscoveredGED, discover_gfds, discover_for_pattern
from repro.discovery.keys import DiscoveredKey, discover_gkeys
from repro.discovery.patterns import CandidatePattern, enumerate_candidate_patterns
from repro.discovery.tableize import MatchTable, build_match_table

__all__ = [
    "CandidatePattern",
    "DiscoveredGED",
    "DomainConstraint",
    "discover_domain_constraints",
    "DiscoveredKey",
    "discover_gkeys",
    "MatchTable",
    "build_match_table",
    "discover_for_pattern",
    "discover_gfds",
    "enumerate_candidate_patterns",
]
