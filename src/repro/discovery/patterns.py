"""Candidate pattern enumeration for discovery.

Profiles the data graph's *observed schema*: which node labels exist,
and which (source label, edge label, target label) triples occur.  Each
schema element becomes a candidate pattern whose support is its match
count.  Single nodes and single edges cover the overwhelming share of
real-world pattern shapes (the paper cites 97%+ single-triple patterns
in SWDF); two-edge paths are available behind a flag for workloads like
Example 1's country→capital pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.matching.homomorphism import count_matches
from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class CandidatePattern:
    """A pattern plus its support (match count) in the profiled graph."""

    pattern: Pattern
    support: int
    shape: str  # "node" | "edge" | "path" | "fork"

    def __str__(self) -> str:
        return f"{self.shape}[{', '.join(self.pattern.variables)}] (support {self.support})"


def enumerate_candidate_patterns(
    graph: Graph,
    min_support: int = 1,
    include_paths: bool = False,
    include_forks: bool = False,
) -> list[CandidatePattern]:
    """Candidate patterns from the graph's observed schema.

    * one single-node pattern ``(x: L)`` per node label L;
    * one single-edge pattern ``(x: L1)-[e]->(y: L2)`` per observed
      labeled-edge schema triple;
    * with ``include_paths``, two-edge chain patterns for composable
      triple pairs; with ``include_forks``, two-edge out-forks sharing
      the source variable (the Example 1 capital/capital shape).

    Patterns below ``min_support`` matches are dropped.  Output is
    deterministic: sorted by (shape, pattern signature).
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")

    schema_triples: set[tuple[str, str, str]] = set()
    for source, edge_label, target in graph.edges:
        schema_triples.add(
            (graph.node(source).label, edge_label, graph.node(target).label)
        )

    candidates: list[CandidatePattern] = []

    for label in sorted(graph.labels):
        pattern = Pattern({"x": label})
        support = len(graph.nodes_with_label(label))
        if support >= min_support:
            candidates.append(CandidatePattern(pattern, support, "node"))

    for source_label, edge_label, target_label in sorted(schema_triples):
        pattern = Pattern(
            {"x": source_label, "y": target_label},
            [("x", edge_label, "y")],
        )
        support = count_matches(pattern, graph)
        if support >= min_support:
            candidates.append(CandidatePattern(pattern, support, "edge"))

    if include_paths:
        for first in sorted(schema_triples):
            for second in sorted(schema_triples):
                if first[2] != second[0]:
                    continue
                pattern = Pattern(
                    {"x": first[0], "y": first[2], "z": second[2]},
                    [("x", first[1], "y"), ("y", second[1], "z")],
                )
                support = count_matches(pattern, graph)
                if support >= min_support:
                    candidates.append(CandidatePattern(pattern, support, "path"))

    if include_forks:
        for first in sorted(schema_triples):
            for second in sorted(schema_triples):
                if first[0] != second[0] or (first, second) > (second, first):
                    continue
                pattern = Pattern(
                    {"x": first[0], "y": first[2], "z": second[2]},
                    [("x", first[1], "y"), ("x", second[1], "z")],
                )
                support = count_matches(pattern, graph)
                if support >= min_support:
                    candidates.append(CandidatePattern(pattern, support, "fork"))

    return candidates


__all__ = ["CandidatePattern", "enumerate_candidate_patterns"]
