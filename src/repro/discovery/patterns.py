"""Candidate pattern enumeration for discovery.

Profiles the data graph's *observed schema*: which node labels exist,
and which (source label, edge label, target label) triples occur.  Each
schema element becomes a candidate pattern whose support is its match
count.  Single nodes and single edges cover the overwhelming share of
real-world pattern shapes (the paper cites 97%+ single-triple patterns
in SWDF); two-edge paths are available behind a flag for workloads like
Example 1's country→capital pairs.

Support counting is the profiling hot path — one full match enumeration
per schema pattern — so it can run on the :mod:`repro.engine` worker
pool: pass ``workers`` > 1 and the counts are computed by warm workers
holding a broadcast copy of the graph (and its index, when attached),
one pattern reference per task.  Counts, filtering, and output order are
identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.matching.sigma_dag import count_sigma
from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class CandidatePattern:
    """A pattern plus its support (match count) in the profiled graph."""

    pattern: Pattern
    support: int
    shape: str  # "node" | "edge" | "path" | "fork"

    def __str__(self) -> str:
        return f"{self.shape}[{', '.join(self.pattern.variables)}] (support {self.support})"


def enumerate_candidate_patterns(
    graph: Graph,
    min_support: int = 1,
    include_paths: bool = False,
    include_forks: bool = False,
    workers: int | None = 1,
) -> list[CandidatePattern]:
    """Candidate patterns from the graph's observed schema.

    * one single-node pattern ``(x: L)`` per node label L;
    * one single-edge pattern ``(x: L1)-[e]->(y: L2)`` per observed
      labeled-edge schema triple;
    * with ``include_paths``, two-edge chain patterns for composable
      triple pairs; with ``include_forks``, two-edge out-forks sharing
      the source variable (the Example 1 capital/capital shape).

    Patterns below ``min_support`` matches are dropped.  Output is
    deterministic: sorted by (shape, pattern signature).  With
    ``workers`` > 1 (or ``None`` for one per CPU) the match counting
    fans out over the engine pool; the result is unchanged.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")

    schema_triples: set[tuple[str, str, str]] = set()
    for source, edge_label, target in graph.edges:
        schema_triples.add(
            (graph.node(source).label, edge_label, graph.node(target).label)
        )

    candidates: list[CandidatePattern] = []

    for label in sorted(graph.labels):
        pattern = Pattern({"x": label})
        support = len(graph.nodes_with_label(label))
        if support >= min_support:
            candidates.append(CandidatePattern(pattern, support, "node"))

    # Counted patterns, in deterministic construction order; support is
    # filled in below (serially, or fanned out over the engine pool).
    counted: list[tuple[str, Pattern]] = []

    for source_label, edge_label, target_label in sorted(schema_triples):
        counted.append(
            (
                "edge",
                Pattern(
                    {"x": source_label, "y": target_label},
                    [("x", edge_label, "y")],
                ),
            )
        )

    if include_paths:
        for first in sorted(schema_triples):
            for second in sorted(schema_triples):
                if first[2] != second[0]:
                    continue
                counted.append(
                    (
                        "path",
                        Pattern(
                            {"x": first[0], "y": first[2], "z": second[2]},
                            [("x", first[1], "y"), ("y", second[1], "z")],
                        ),
                    )
                )

    if include_forks:
        for first in sorted(schema_triples):
            for second in sorted(schema_triples):
                if first[0] != second[0] or (first, second) > (second, first):
                    continue
                counted.append(
                    (
                        "fork",
                        Pattern(
                            {"x": first[0], "y": first[2], "z": second[2]},
                            [("x", first[1], "y"), ("x", second[1], "z")],
                        ),
                    )
                )

    supports = _count_supports(graph, [pattern for _, pattern in counted], workers)
    for (shape, pattern), support in zip(counted, supports):
        if support >= min_support:
            candidates.append(CandidatePattern(pattern, support, shape))

    return candidates


def _count_supports(
    graph: Graph, patterns: list[Pattern], workers: int | None
) -> list[int]:
    """Match counts for ``patterns``, serially or on the engine pool.

    Each candidate generation counts as **one Σ-DAG pass**
    (:func:`~repro.matching.sigma_dag.count_sigma`): near-identical
    candidates (the edge patterns inside every path/fork family) share
    their scan/extend prefixes and the final level counts by pool size
    without materializing matches.  The engine path dispatches the same
    Σ pass in contiguous chunks, one per worker.
    """
    if workers == 1 or len(patterns) <= 1:
        return count_sigma(graph, patterns)
    from repro.engine.pool import get_pool, resolve_workers

    if resolve_workers(workers) == 1:
        return count_sigma(graph, patterns)
    return get_pool(graph, workers).count_patterns(patterns)


__all__ = ["CandidatePattern", "enumerate_candidate_patterns"]
