"""Discovery of GKeys (keys for graphs) from data.

A GKey ``Q[z̄](X → x0.id = y0.id)`` (Section 3 (2)) holds on G when any
two matches of Q1 agreeing on the compared attributes bind the
designated variable to the same node.  Over a match table that is a
grouping check:

    group the matches of Q1 by the value tuple of the candidate
    attribute set;  the candidate is a key for x0 iff no group binds
    x0 to two distinct nodes.

We search candidate attribute sets levelwise, smallest first, and keep
only **minimal** keys (no discovered key's attribute set is a subset of
another's).  Each hit is materialized as a proper
:class:`~repro.deps.ged.GKey` via :func:`~repro.deps.ged.make_gkey` —
pattern composed with its renamed copy — and verified to validate on
the profiled graph, so the output plugs directly into entity resolution
(:mod:`repro.quality.entity_resolution`).

The recursive keys of Example 1 (identify an album via its artist's
*id*) are out of levelwise reach by design: id-based conditions refer
to entities resolved by other keys, a fixpoint the chase computes, not
a grouping the data exhibits.  What discovery *can* find is the
value-based base case (ψ2-style keys), which is what bootstraps the
recursion in practice.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.deps.ged import GKey, make_gkey
from repro.discovery.tableize import MISSING, build_match_table
from repro.errors import DiscoveryError
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class DiscoveredKey:
    """A mined key with its evidence on the profiled graph."""

    gkey: GKey
    #: (variable, attribute) pairs compared by value.
    attributes: tuple[tuple[str, str], ...]
    #: Matches of Q1 that carried all compared attributes.
    support: int
    #: Distinct entities the key distinguishes (value-tuple groups).
    groups: int

    def __str__(self) -> str:
        attrs = ", ".join(f"{v}.{a}" for v, a in self.attributes)
        return (
            f"key for {self.gkey.x0} by ({attrs}) "
            f"[support={self.support}, entities={self.groups}]"
        )


def discover_gkeys(
    graph: Graph,
    pattern: Pattern,
    x0: str,
    max_attrs: int = 2,
    min_support: int = 2,
    candidate_attrs: Sequence[tuple[str, str]] | None = None,
) -> list[DiscoveredKey]:
    """Minimal value-based GKeys for ``x0`` over pattern ``Q1``.

    Parameters
    ----------
    pattern:
        the entity pattern Q1[x̄] (NOT the doubled GKey pattern — the
        composition with a copy is built per hit).
    x0:
        the designated variable the key identifies.
    max_attrs:
        largest attribute-set size searched.
    min_support:
        minimum number of matches carrying all candidate attributes.
    candidate_attrs:
        restrict the searched (variable, attribute) pool; defaults to
        every attribute observed on matched nodes.
    """
    if x0 not in pattern.variables:
        raise DiscoveryError(f"designated variable {x0!r} is not in the pattern")
    if max_attrs < 1:
        raise DiscoveryError(f"max_attrs must be >= 1, got {max_attrs}")
    if min_support < 1:
        raise DiscoveryError(f"min_support must be >= 1, got {min_support}")

    table = build_match_table(pattern, graph)
    pool = list(candidate_attrs) if candidate_attrs is not None else table.columns
    unknown = [col for col in pool if col not in set(table.columns)]
    if candidate_attrs is not None and unknown and table.num_rows:
        raise DiscoveryError(f"candidate attributes never observed: {unknown}")

    discovered: list[DiscoveredKey] = []
    minimal: list[frozenset[tuple[str, str]]] = []
    for size in range(1, max_attrs + 1):
        for combo in itertools.combinations(pool, size):
            combo_set = frozenset(combo)
            if any(found <= combo_set for found in minimal):
                continue  # a smaller key exists: not minimal
            verdict = _key_holds(table, combo, x0, min_support)
            if verdict is None:
                continue
            support, groups = verdict
            gkey = make_gkey(
                pattern,
                x0,
                value_attrs=_group_by_variable(combo),
                name=f"key-{x0}-" + "-".join(f"{v}.{a}" for v, a in combo),
            )
            minimal.append(combo_set)
            discovered.append(DiscoveredKey(gkey, tuple(combo), support, groups))
    discovered.sort(key=lambda k: (len(k.attributes), str(k)))
    return discovered


def _key_holds(
    table, combo: Sequence[tuple[str, str]], x0: str, min_support: int
) -> tuple[int, int] | None:
    """(support, groups) when `combo` functionally determines x0's node,
    over the matches carrying every combo attribute; None otherwise."""
    groups: dict[tuple, str] = {}
    support = 0
    for row in range(table.num_rows):
        values = tuple(table.values[row].get(col, MISSING) for col in combo)
        if any(value is MISSING for value in values):
            continue  # Section 3 semantics: missing attributes never satisfy X
        support += 1
        node = table.rows[row][x0]
        if values in groups:
            if groups[values] != node:
                return None  # two entities share the value tuple: not a key
        else:
            groups[values] = node
    if support < min_support:
        return None
    return support, len(groups)


def _group_by_variable(combo: Sequence[tuple[str, str]]) -> dict[str, list[str]]:
    grouped: dict[str, list[str]] = {}
    for variable, attr in combo:
        grouped.setdefault(variable, []).append(attr)
    return grouped


__all__ = ["DiscoveredKey", "discover_gkeys"]
