"""Discovery of domain constraints (the paper's Examples 9 and 10).

Section 7 introduces both extension classes through the same running
example: enforcing that an attribute has a restricted domain —

* Example 9 writes it as GDCs: φ1 makes ``x.A`` exist, φ2 forbids
  values outside the domain with built-in predicates;
* Example 10 writes the enumerated form as a GED∨:
  ``Q_e[x](∅ → x.A = 0 ∨ x.A = 1)``.

This module mines those constraints from data, per (label, attribute)
column:

* **range constraints** (numeric columns → GDCs): the observed
  interval [lo, hi] becomes the pair of forbidding GDCs
  ``Q_e[x](x.A < lo → false)`` and ``Q_e[x](x.A > hi → false)``,
  exactly the Example 9 shape;
* **enumerated domains** (small categorical columns → GED∨s): the
  observed value set {v1..vk} becomes
  ``Q_e[x](x.A = x.A → x.A = v1 ∨ ... ∨ x.A = vk)`` — the premise
  ``x.A = x.A`` scopes the rule to nodes carrying the attribute, so
  the mined rule does not impose existence (that stays a deliberate,
  separate Example 9 φ1 choice).

Coverage (fraction of label-nodes carrying the attribute) and support
are reported so callers can decide whether to *also* enforce existence.
All mined constraints hold on the profiled graph by construction; the
tests assert it through the real GDC/GED∨ validators.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Number

from repro.deps.literals import ConstantLiteral, VariableLiteral
from repro.errors import DiscoveryError
from repro.extensions.gdc import GDC, ComparisonLiteral
from repro.deps.literals import FALSE
from repro.extensions.gedvee import GEDVee
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class DomainConstraint:
    """A mined domain constraint for one (label, attribute) column."""

    label: str
    attr: str
    #: "range" (numeric, mined as GDCs) or "enum" (mined as a GED∨).
    kind: str
    #: The two forbidding GDCs for ranges; empty for enums.
    gdcs: tuple[GDC, ...]
    #: The enumerated-domain GED∨ for enums; None for ranges.
    gedvee: GEDVee | None
    #: Nodes of the label carrying the attribute.
    support: int
    #: support / all nodes of the label.
    coverage: float
    #: (lo, hi) for ranges, the sorted value tuple for enums.
    domain: tuple

    def __str__(self) -> str:
        if self.kind == "range":
            lo, hi = self.domain
            body = f"{lo} <= {self.label}.{self.attr} <= {hi}"
        else:
            body = f"{self.label}.{self.attr} ∈ {set(self.domain)!r}"
        return f"{body} [support={self.support}, coverage={self.coverage:.2f}]"


def discover_domain_constraints(
    graph: Graph,
    min_support: int = 2,
    max_enum: int = 6,
) -> list[DomainConstraint]:
    """Mine per-(label, attribute) domain constraints.

    Columns whose values are all numeric (and not Booleans) yield
    *range* constraints; columns with at most ``max_enum`` distinct
    values yield *enumerated* constraints (numeric columns that are
    also small prefer the enum form, like Example 10's Boolean).
    Columns with many distinct non-numeric values (identifiers) yield
    nothing.
    """
    if min_support < 1:
        raise DiscoveryError(f"min_support must be >= 1, got {min_support}")
    if max_enum < 1:
        raise DiscoveryError(f"max_enum must be >= 1, got {max_enum}")

    columns: dict[tuple[str, str], list] = {}
    label_counts: dict[str, int] = {}
    for node in graph.nodes:
        label_counts[node.label] = label_counts.get(node.label, 0) + 1
        for attr, value in node.attributes.items():
            columns.setdefault((node.label, attr), []).append(value)

    constraints: list[DomainConstraint] = []
    for (label, attr), values in sorted(columns.items()):
        support = len(values)
        if support < min_support:
            continue
        coverage = support / label_counts[label]
        distinct = set(values)
        if len(distinct) <= max_enum:
            constraints.append(
                _enum_constraint(label, attr, distinct, support, coverage)
            )
        elif all(isinstance(v, Number) and not isinstance(v, bool) for v in distinct):
            constraints.append(
                _range_constraint(label, attr, distinct, support, coverage)
            )
    return constraints


def _enum_constraint(
    label: str, attr: str, distinct: set, support: int, coverage: float
) -> DomainConstraint:
    pattern = Pattern({"x": label})
    domain = tuple(sorted(distinct, key=repr))
    vee = GEDVee(
        pattern,
        [VariableLiteral("x", attr, "x", attr)],
        [ConstantLiteral("x", attr, value) for value in domain],
        name=f"domain-{label}.{attr}",
    )
    return DomainConstraint(label, attr, "enum", (), vee, support, coverage, domain)


def _range_constraint(
    label: str, attr: str, distinct: set, support: int, coverage: float
) -> DomainConstraint:
    pattern = Pattern({"x": label})
    lo, hi = min(distinct), max(distinct)
    low = GDC(
        pattern,
        [ComparisonLiteral("x", attr, "<", lo)],
        [FALSE],
        name=f"min-{label}.{attr}",
    )
    high = GDC(
        pattern,
        [ComparisonLiteral("x", attr, ">", hi)],
        [FALSE],
        name=f"max-{label}.{attr}",
    )
    return DomainConstraint(
        label, attr, "range", (low, high), None, support, coverage, (lo, hi)
    )


__all__ = ["DomainConstraint", "discover_domain_constraints"]
