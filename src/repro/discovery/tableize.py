"""Materializing pattern matches as a table.

Discovery evaluates many literal sets over the same matches; scanning
the graph per literal would redo homomorphism work.  A
:class:`MatchTable` enumerates the matches once and stores, per row,

* the node id bound to each variable, and
* the value of every (variable, attribute) pair that occurs in the
  matched nodes (missing attributes are recorded as :data:`MISSING`,
  which compares equal to nothing — the paper's existence semantics:
  a literal over a missing attribute is *not* satisfied in Y position
  and vacuously skipped in X position is handled by the caller).

Columns are the union of attributes seen across rows, so the table is
wide but complete: every literal over the pattern's variables can be
evaluated by column lookups.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.deps.literals import (
    ConstantLiteral,
    IdLiteral,
    Literal,
    VariableLiteral,
)
from repro.graph.graph import Graph, Value
from repro.matching.plan import compile_plan
from repro.patterns.pattern import Pattern


class _Missing:
    """Sentinel for 'attribute absent at this node' (equal to nothing)."""

    def __repr__(self) -> str:
        return "MISSING"

    def __eq__(self, other: object) -> bool:
        return other is self

    def __hash__(self) -> int:
        return hash("__missing__")


MISSING = _Missing()


@dataclass
class MatchTable:
    """The matches of one pattern, materialized.

    ``rows[i][var]`` is the node id variable ``var`` takes in match i;
    ``values[i][(var, attr)]`` its attribute value or :data:`MISSING`.
    """

    pattern: Pattern
    rows: list[dict[str, str]]
    values: list[dict[tuple[str, str], Value]]
    columns: list[tuple[str, str]]

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def literal_holds(self, row: int, literal: Literal) -> bool:
        """Whether match ``row`` satisfies ``literal`` (Section 3
        semantics: missing attributes never satisfy)."""
        if isinstance(literal, ConstantLiteral):
            value = self.values[row].get((literal.var, literal.attr), MISSING)
            return value is not MISSING and value == literal.const
        if isinstance(literal, VariableLiteral):
            v1 = self.values[row].get((literal.var1, literal.attr1), MISSING)
            v2 = self.values[row].get((literal.var2, literal.attr2), MISSING)
            return v1 is not MISSING and v2 is not MISSING and v1 == v2
        if isinstance(literal, IdLiteral):
            return self.rows[row][literal.var1] == self.rows[row][literal.var2]
        raise TypeError(f"unsupported literal {literal!r}")

    def satisfying(
        self, literals: Sequence[Literal], within: Sequence[int] | None = None
    ) -> list[int]:
        """Row indexes satisfying all ``literals`` (within a row subset)."""
        pool = range(self.num_rows) if within is None else within
        return [row for row in pool if all(self.literal_holds(row, l) for l in literals)]

    def distinct_values(self, var: str, attr: str) -> set[Value]:
        """Distinct present values of ``var.attr`` across all rows."""
        found: set[Value] = set()
        for row_values in self.values:
            value = row_values.get((var, attr), MISSING)
            if value is not MISSING:
                found.add(value)
        return found


def build_match_table(pattern: Pattern, graph: Graph, limit: int | None = None) -> MatchTable:
    """Enumerate matches of ``pattern`` in ``graph`` into a table.

    Discovery profiles many candidate patterns against one unchanging
    graph, so the enumeration runs each pattern's compiled plan over
    the graph's shared interned view — the view is built once for the
    whole discovery sweep, and plans for repeated patterns (support
    recounts, confidence scans) come from the view's cache.
    """
    rows: list[dict[str, str]] = []
    values: list[dict[tuple[str, str], Value]] = []
    columns: dict[tuple[str, str], None] = {}
    for match in compile_plan(graph, pattern).matches(limit=limit):
        rows.append(dict(match))
        row_values: dict[tuple[str, str], Value] = {}
        for variable, node_id in match.items():
            for attr, value in graph.node(node_id).attributes.items():
                row_values[(variable, attr)] = value
                columns[(variable, attr)] = None
        values.append(row_values)
    return MatchTable(pattern, rows, values, sorted(columns))


__all__ = ["MISSING", "MatchTable", "build_match_table"]
