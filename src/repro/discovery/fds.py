"""Levelwise GFD discovery over a match table.

For a candidate pattern Q, the search space is literal sets over Q's
variables.  We mine rules Q[x̄](X → l) with a single right-hand-side
literal (GED∨-free normal form — a multi-literal Y is equivalent to
several single-literal rules):

* **RHS candidates**: constant literals ``x.A = c`` for every value c
  that ``x.A`` takes (skipped when the column has more than
  ``max_distinct`` values — those are identifiers, not categories), and
  variable literals ``x.A = y.B`` over present column pairs;
* **LHS candidates**: levelwise subsets of the same literal pool, of
  size 0, 1, ..., ``max_lhs``, Apriori-pruned: a level-k LHS is only
  explored if none of its level-(k-1) subsets already yields the rule
  (minimality), and only if its support clears ``min_support``.

**support**(X → l) = number of matches satisfying X;
**confidence** = fraction of those also satisfying l.  Rules reaching
``min_confidence`` are reported; exact rules (confidence 1.0) hold on
the graph by construction.

The id-literal analogue (GKey discovery) is intentionally out of scope:
keys need the pattern-copy construction of Section 3 and a notion of
duplicate ground truth; see ``repro.quality.entity_resolution`` for the
consumption side.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, Literal, VariableLiteral
from repro.discovery.patterns import enumerate_candidate_patterns
from repro.discovery.tableize import MatchTable, build_match_table
from repro.errors import DiscoveryError
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class DiscoveredGED:
    """A mined rule with its quality measures on the profiled graph."""

    ged: GED
    support: int
    confidence: float

    @property
    def exact(self) -> bool:
        return self.confidence >= 1.0

    def __str__(self) -> str:
        return f"{self.ged} [support={self.support}, confidence={self.confidence:.2f}]"


def discover_for_pattern(
    graph: Graph,
    pattern: Pattern,
    max_lhs: int = 2,
    min_support: int = 2,
    min_confidence: float = 1.0,
    max_distinct: int = 8,
) -> list[DiscoveredGED]:
    """Mine GFDs Q[x̄](X → l) for one pattern Q.

    Parameters mirror classical FD/CFD discovery: ``min_support`` keeps
    rules witnessed by enough matches to be believable, and
    ``min_confidence`` < 1.0 admits approximate rules (useful when the
    data is dirty — the violations of an almost-exact rule are exactly
    the suspects a cleaning pipeline wants).
    """
    if not 0.0 < min_confidence <= 1.0:
        raise DiscoveryError(f"min_confidence must be in (0, 1], got {min_confidence}")
    if min_support < 1:
        raise DiscoveryError(f"min_support must be >= 1, got {min_support}")
    if max_lhs < 0:
        raise DiscoveryError(f"max_lhs must be >= 0, got {max_lhs}")

    table = build_match_table(pattern, graph)
    if table.num_rows < min_support:
        return []

    pool = _literal_pool(table, max_distinct)
    discovered: list[DiscoveredGED] = []
    #: RHS literal -> list of minimal LHS sets already found for it.
    minimal_lhs: dict[Literal, list[frozenset[Literal]]] = {l: [] for l in pool}

    for size in range(max_lhs + 1):
        for lhs in itertools.combinations(pool, size):
            lhs_set = frozenset(lhs)
            supporting = table.satisfying(list(lhs))
            if len(supporting) < min_support:
                continue
            for rhs in pool:
                if rhs in lhs_set:
                    continue
                if any(found <= lhs_set for found in minimal_lhs[rhs]):
                    continue  # a smaller LHS already yields this RHS
                if _trivial(lhs_set, rhs):
                    continue
                satisfied = table.satisfying([rhs], within=supporting)
                confidence = len(satisfied) / len(supporting)
                if confidence >= min_confidence:
                    minimal_lhs[rhs].append(lhs_set)
                    ged = GED(pattern, sorted(lhs_set, key=str), [rhs])
                    discovered.append(
                        DiscoveredGED(ged, len(supporting), confidence)
                    )
    discovered.sort(key=lambda d: (-d.confidence, -d.support, str(d.ged)))
    return discovered


def _literal_pool(table: MatchTable, max_distinct: int) -> list[Literal]:
    """Candidate literals over the table's populated columns."""
    pool: list[Literal] = []
    for var, attr in table.columns:
        values = table.distinct_values(var, attr)
        if 0 < len(values) <= max_distinct:
            for value in sorted(values, key=repr):
                pool.append(ConstantLiteral(var, attr, value))
    for (v1, a1), (v2, a2) in itertools.combinations(table.columns, 2):
        if (v1, a1) < (v2, a2):
            pool.append(VariableLiteral(v1, a1, v2, a2))
    return pool


def _trivial(lhs: frozenset[Literal], rhs: Literal) -> bool:
    """Syntactic triviality: the RHS is a constant literal whose column
    is already pinned to the same constant by the LHS."""
    if isinstance(rhs, ConstantLiteral):
        for literal in lhs:
            if (
                isinstance(literal, ConstantLiteral)
                and literal.var == rhs.var
                and literal.attr == rhs.attr
            ):
                return True
    return False


def discover_gfds(
    graph: Graph,
    max_lhs: int = 1,
    min_support: int = 2,
    min_confidence: float = 1.0,
    max_distinct: int = 8,
    include_paths: bool = False,
    include_forks: bool = False,
    max_patterns: int | None = None,
    workers: int | None = 1,
) -> list[DiscoveredGED]:
    """Mine GFDs across all candidate patterns of the graph's schema.

    Enumerates patterns (:func:`enumerate_candidate_patterns`), mines
    each, and concatenates — sorted by confidence, support, then rule
    text.  ``max_patterns`` caps the profiled patterns (largest support
    first) for big schemas.  ``workers`` > 1 routes the support
    counting through the :mod:`repro.engine` pool.
    """
    candidates = enumerate_candidate_patterns(
        graph,
        min_support=min_support,
        include_paths=include_paths,
        include_forks=include_forks,
        workers=workers,
    )
    candidates.sort(key=lambda c: -c.support)
    if max_patterns is not None:
        candidates = candidates[:max_patterns]
    discovered: list[DiscoveredGED] = []
    for candidate in candidates:
        discovered.extend(
            discover_for_pattern(
                graph,
                candidate.pattern,
                max_lhs=max_lhs,
                min_support=min_support,
                min_confidence=min_confidence,
                max_distinct=max_distinct,
            )
        )
    discovered.sort(key=lambda d: (-d.confidence, -d.support, str(d.ged)))
    return discovered


__all__ = ["DiscoveredGED", "discover_for_pattern", "discover_gfds"]
