"""Deterministic graph generators used by tests, reductions and benchmarks.

All generators take explicit sizes and (where randomized) an explicit
``random.Random`` instance or seed, so every experiment is reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.graph.graph import Graph


def complete_graph(n: int, label: str = "v", edge_label: str = "adj") -> Graph:
    """K_n with both orientations of every edge (undirected encoding)."""
    g = Graph()
    for i in range(n):
        g.add_node(f"n{i}", label)
    for i in range(n):
        for j in range(n):
            if i != j:
                g.add_edge(f"n{i}", edge_label, f"n{j}")
    return g


def cycle_graph(n: int, label: str = "v", edge_label: str = "adj", directed: bool = False) -> Graph:
    """C_n; undirected encoding unless ``directed``."""
    g = Graph()
    for i in range(n):
        g.add_node(f"n{i}", label)
    for i in range(n):
        j = (i + 1) % n
        g.add_edge(f"n{i}", edge_label, f"n{j}")
        if not directed:
            g.add_edge(f"n{j}", edge_label, f"n{i}")
    return g


def path_graph(n: int, label: str = "v", edge_label: str = "adj", directed: bool = False) -> Graph:
    """P_n; undirected encoding unless ``directed``."""
    g = Graph()
    for i in range(n):
        g.add_node(f"n{i}", label)
    for i in range(n - 1):
        g.add_edge(f"n{i}", edge_label, f"n{i + 1}")
        if not directed:
            g.add_edge(f"n{i + 1}", edge_label, f"n{i}")
    return g


def star_graph(n_leaves: int, label: str = "v", edge_label: str = "adj") -> Graph:
    """A center node with ``n_leaves`` undirected spokes."""
    g = Graph()
    g.add_node("c", label)
    for i in range(n_leaves):
        g.add_node(f"l{i}", label)
        g.add_edge("c", edge_label, f"l{i}")
        g.add_edge(f"l{i}", edge_label, "c")
    return g


def random_labeled_graph(
    n: int,
    edge_probability: float,
    node_labels: Iterable[str] = ("a", "b", "c"),
    edge_labels: Iterable[str] = ("r", "s"),
    rng: random.Random | int | None = None,
    attribute_names: Iterable[str] = (),
    attribute_values: Iterable[object] = (0, 1, 2),
    attribute_probability: float = 0.5,
) -> Graph:
    """An Erdős–Rényi-style directed graph with random labels/attributes."""
    rng = _as_rng(rng)
    node_labels = list(node_labels)
    edge_labels = list(edge_labels)
    attribute_names = list(attribute_names)
    attribute_values = list(attribute_values)
    g = Graph()
    for i in range(n):
        attrs = {
            name: rng.choice(attribute_values)
            for name in attribute_names
            if rng.random() < attribute_probability
        }
        g.add_node(f"n{i}", rng.choice(node_labels), attrs)
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < edge_probability:
                g.add_edge(f"n{i}", rng.choice(edge_labels), f"n{j}")
    return g


def random_connected_undirected_graph(
    n: int,
    extra_edge_probability: float = 0.3,
    rng: random.Random | int | None = None,
    label: str = "v",
    edge_label: str = "adj",
) -> Graph:
    """A connected, loop-free undirected graph (both-orientation encoding).

    Used to generate 3-colorability instances (the problem stays
    NP-complete on connected graphs, as the paper notes).  A random
    spanning tree guarantees connectivity; extra edges are sprinkled on
    top.
    """
    rng = _as_rng(rng)
    g = Graph()
    for i in range(n):
        g.add_node(f"n{i}", label)
    # Random spanning tree: attach each node to a random earlier node.
    for i in range(1, n):
        j = rng.randrange(i)
        g.add_edge(f"n{i}", edge_label, f"n{j}")
        g.add_edge(f"n{j}", edge_label, f"n{i}")
    for i in range(n):
        for j in range(i + 1, n):
            if not g.has_edge(f"n{i}", edge_label, f"n{j}"):
                if rng.random() < extra_edge_probability:
                    g.add_edge(f"n{i}", edge_label, f"n{j}")
                    g.add_edge(f"n{j}", edge_label, f"n{i}")
    return g


def undirected_edge_set(g: Graph, edge_label: str = "adj") -> set[tuple[str, str]]:
    """The undirected edges of a both-orientation-encoded graph, as
    canonically ordered pairs."""
    pairs: set[tuple[str, str]] = set()
    for s, l, t in g.edges:
        if l == edge_label and s != t:
            pairs.add((min(s, t), max(s, t)))
    return pairs


def _as_rng(rng: random.Random | int | None) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng if rng is not None else 0)
