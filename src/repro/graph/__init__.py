"""Property graphs (Section 2): nodes with labels + attributes, labeled edges."""

from repro.graph.builder import GraphBuilder
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_undirected_graph,
    random_labeled_graph,
    star_graph,
    undirected_edge_set,
)
from repro.graph.fragments import (
    Fragment,
    FragmentedGraph,
    Fragmentation,
    RoutedUpdate,
    fragment_stats,
    get_fragments,
    partition_graph,
    route_update,
)
from repro.graph.graph import ID_ATTRIBUTE, Edge, Graph, Node, Value
from repro.graph.io import (
    UpdateLogWriter,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    read_update_log,
    replay_update_log,
    scan_update_log,
    update_from_dict,
    update_to_dict,
)
from repro.graph.relational import Relation, graph_to_relation, relations_to_graph
from repro.graph.update import GraphUpdate, validate_update

__all__ = [
    "ID_ATTRIBUTE",
    "Edge",
    "Fragment",
    "FragmentedGraph",
    "Fragmentation",
    "Graph",
    "GraphBuilder",
    "GraphUpdate",
    "Node",
    "Relation",
    "RoutedUpdate",
    "UpdateLogWriter",
    "Value",
    "fragment_stats",
    "get_fragments",
    "partition_graph",
    "route_update",
    "complete_graph",
    "cycle_graph",
    "graph_from_dict",
    "graph_from_json",
    "graph_to_dict",
    "graph_to_json",
    "graph_to_relation",
    "path_graph",
    "random_connected_undirected_graph",
    "random_labeled_graph",
    "read_update_log",
    "relations_to_graph",
    "replay_update_log",
    "scan_update_log",
    "star_graph",
    "undirected_edge_set",
    "update_from_dict",
    "update_to_dict",
    "validate_update",
]
