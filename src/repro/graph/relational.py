"""Relations represented as graphs (Section 3, "Special cases" (5)).

The paper observes that relational FDs, CFDs and EGDs can be expressed as
GEDs once relation tuples are represented as nodes in a graph: a tuple of
relation ``R`` becomes a node labeled ``R`` whose attributes are the
tuple's attribute values.  This module provides the relational side of
that encoding; :mod:`repro.deps.relational` provides the dependency side.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import GraphError
from repro.graph.graph import Graph, Value


class Relation:
    """A named relation with a fixed attribute list and a set of tuples."""

    def __init__(self, name: str, attributes: Sequence[str]):
        if not name:
            raise GraphError("relation name must be non-empty")
        if len(set(attributes)) != len(attributes):
            raise GraphError(f"duplicate attribute names in relation {name!r}")
        self.name = name
        self.attributes = list(attributes)
        self._tuples: list[dict[str, Value]] = []

    def insert(self, values: Mapping[str, Value] | Sequence[Value]) -> None:
        """Insert a tuple, given as a mapping or positionally."""
        if isinstance(values, Mapping):
            row = dict(values)
        else:
            values = list(values)
            if len(values) != len(self.attributes):
                raise GraphError(
                    f"relation {self.name!r} has {len(self.attributes)} attributes, "
                    f"got {len(values)} values"
                )
            row = dict(zip(self.attributes, values))
        unknown = set(row) - set(self.attributes)
        if unknown:
            raise GraphError(f"unknown attributes {sorted(unknown)} for relation {self.name!r}")
        missing = set(self.attributes) - set(row)
        if missing:
            raise GraphError(f"missing attributes {sorted(missing)} for relation {self.name!r}")
        self._tuples.append(row)

    @property
    def tuples(self) -> list[dict[str, Value]]:
        return [dict(t) for t in self._tuples]

    def __len__(self) -> int:
        return len(self._tuples)


def relations_to_graph(relations: Iterable[Relation]) -> Graph:
    """Encode relation instances as a graph.

    Each tuple becomes a node labeled with its relation's name, carrying
    the tuple's values as attributes.  The encoding has no edges, exactly
    like the canonical patterns Q_E the paper uses to express EGDs
    (Section 3 (5): "Q_E has no edges").
    """
    g = Graph()
    for relation in relations:
        for index, row in enumerate(relation.tuples):
            g.add_node(f"{relation.name}#{index}", relation.name, row)
    return g


def graph_to_relation(g: Graph, name: str, attributes: Sequence[str]) -> Relation:
    """Decode the nodes labeled ``name`` back into a relation.

    Nodes missing any of ``attributes`` are skipped (graphs are
    schemaless; only complete tuples are relational).
    """
    relation = Relation(name, attributes)
    for node_id in sorted(g.nodes_with_label(name)):
        node = g.node(node_id)
        if all(node.has_attribute(a) for a in attributes):
            relation.insert({a: node.get(a) for a in attributes})
    return relation
