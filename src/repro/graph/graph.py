"""The property-graph substrate (Section 2 of the paper).

A graph ``G = (V, E, L, F_A)`` has

* a finite set ``V`` of nodes, each with a unique identity (``node.id``),
* a finite set ``E ⊆ V × Γ × V`` of directed labeled edges,
* a label ``L(v)`` from Γ on every node, and
* a finite attribute tuple ``F_A(v) = (A1 = a1, ..., An = an)`` on every
  node; attributes are schemaless — any node may carry any attributes.

``id`` is the node identity and is *not* an ordinary attribute: literals
may compare ``x.id = y.id`` but may not assign constants to it, and
:meth:`Node.attributes` never contains an ``id`` key.

The class keeps adjacency indexes (by direction and by edge label) and a
node-label index so the homomorphism matcher can compute candidate sets
without scanning the whole graph.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping

from repro.errors import GraphError

#: Reserved attribute name for node identity (Section 2: "each node v has
#: a special attribute id denoting its node identity").
ID_ATTRIBUTE = "id"

Value = Hashable
Edge = tuple[str, str, str]

#: Shared empty adjacency row (returned by the read-only row accessors
#: for absent labels; frozen so accidental mutation fails loudly).
_EMPTY_ROW: frozenset = frozenset()


class Node:
    """A graph node: identity, label, and a schemaless attribute tuple."""

    __slots__ = ("id", "label", "_attrs")

    def __init__(self, node_id: str, label: str, attrs: Mapping[str, Value] | None = None):
        if not isinstance(node_id, str) or not node_id:
            raise GraphError(f"node id must be a non-empty string, got {node_id!r}")
        if not isinstance(label, str) or not label:
            raise GraphError(f"node label must be a non-empty string, got {label!r}")
        self.id = node_id
        self.label = label
        self._attrs: dict[str, Value] = {}
        if attrs:
            for name, value in attrs.items():
                self._set_attr(name, value)

    def _set_attr(self, name: str, value: Value) -> None:
        if name == ID_ATTRIBUTE:
            raise GraphError("'id' is the reserved node identity, not a settable attribute")
        if not isinstance(name, str) or not name:
            raise GraphError(f"attribute name must be a non-empty string, got {name!r}")
        self._attrs[name] = value

    def _del_attr(self, name: str) -> None:
        if name not in self._attrs:
            raise GraphError(f"node {self.id!r} has no attribute {name!r}")
        del self._attrs[name]

    @property
    def attributes(self) -> Mapping[str, Value]:
        """Read-only view of the node's attribute tuple (without ``id``)."""
        return dict(self._attrs)

    def has_attribute(self, name: str) -> bool:
        return name in self._attrs

    def get(self, name: str, default: Value | None = None) -> Value | None:
        return self._attrs.get(name, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.id!r}, label={self.label!r}, attrs={self._attrs!r})"


class Graph:
    """A finite directed labeled graph with node attributes.

    Nodes are addressed by their string identity.  Edges are triples
    ``(source_id, label, target_id)``; parallel edges with distinct
    labels are allowed, duplicate triples are idempotent (``E`` is a
    set, exactly as in the paper).
    """

    def __init__(self) -> None:
        self._nodes: dict[str, Node] = {}
        self._edges: set[Edge] = set()
        # Adjacency indexes:  src -> label -> {dst}  and  dst -> label -> {src}
        self._out: dict[str, dict[str, set[str]]] = {}
        self._in: dict[str, dict[str, set[str]]] = {}
        # Node-label index: label -> {node ids}
        self._by_label: dict[str, set[str]] = {}
        # Mutation counter: bumped on every effective change through the
        # Graph API.  External index structures (repro.indexing) record
        # the version they were built against and treat a mismatch as
        # "stale — fall back to unindexed behavior".
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        label: str,
        attrs: Mapping[str, Value] | None = None,
        **kw_attrs: Value,
    ) -> Node:
        """Add a node.  ``attrs`` and keyword attributes are merged.

        Re-adding an existing id is an error: node identity is immutable
        (merging nodes is the chase's job, via coercion, never done in
        place on a graph).
        """
        if node_id in self._nodes:
            raise GraphError(f"node {node_id!r} already exists")
        merged: dict[str, Value] = dict(attrs) if attrs else {}
        merged.update(kw_attrs)
        node = Node(node_id, label, merged)
        self._nodes[node_id] = node
        self._out[node_id] = {}
        self._in[node_id] = {}
        self._by_label.setdefault(label, set()).add(node_id)
        self._version += 1
        return node

    def add_edge(self, source: str, label: str, target: str) -> Edge:
        """Add the edge ``(source, label, target)``; idempotent."""
        if source not in self._nodes:
            raise GraphError(f"edge source {source!r} is not a node")
        if target not in self._nodes:
            raise GraphError(f"edge target {target!r} is not a node")
        if not isinstance(label, str) or not label:
            raise GraphError(f"edge label must be a non-empty string, got {label!r}")
        edge = (source, label, target)
        if edge not in self._edges:
            self._edges.add(edge)
            self._out[source].setdefault(label, set()).add(target)
            self._in[target].setdefault(label, set()).add(source)
            self._version += 1
        return edge

    def set_attribute(self, node_id: str, name: str, value: Value) -> None:
        """Set (or overwrite) one attribute on an existing node."""
        self.node(node_id)._set_attr(name, value)
        self._version += 1

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def remove_edge(self, source: str, label: str, target: str) -> Edge:
        """Remove one edge; the edge must be present."""
        edge = (source, label, target)
        if edge not in self._edges:
            raise GraphError(f"cannot remove missing edge {edge!r}")
        self._edges.discard(edge)
        targets = self._out[source][label]
        targets.discard(target)
        if not targets:
            del self._out[source][label]
        sources = self._in[target][label]
        sources.discard(source)
        if not sources:
            del self._in[target][label]
        self._version += 1
        return edge

    def remove_attribute(self, node_id: str, name: str) -> None:
        """Delete one attribute from an existing node; both must exist."""
        self.node(node_id)._del_attr(name)
        self._version += 1

    def remove_node(self, node_id: str) -> list[Edge]:
        """Remove a node and (cascading) every incident edge.

        Returns the removed incident edges — the dirty region a caller
        maintaining derived structures (indexes, ledgers) must repair.
        """
        node = self.node(node_id)
        incident = set(self.out_edges(node_id)) | set(self.in_edges(node_id))
        for source, label, target in incident:
            self._edges.discard((source, label, target))
            targets = self._out[source].get(label)
            if targets is not None:
                targets.discard(target)
                if not targets:
                    del self._out[source][label]
            sources = self._in[target].get(label)
            if sources is not None:
                sources.discard(source)
                if not sources:
                    del self._in[target][label]
        del self._out[node_id]
        del self._in[node_id]
        del self._nodes[node_id]
        members = self._by_label.get(node.label)
        if members is not None:
            members.discard(node_id)
            if not members:
                del self._by_label[node.label]
        self._version += 1
        return sorted(incident)

    @property
    def version(self) -> int:
        """Monotone mutation counter (see ``__init__``).

        Any add_node / effective add_edge / set_attribute — and any
        remove_node / remove_edge / remove_attribute — increments it;
        :mod:`repro.indexing` uses it to detect indexes invalidated by
        mutations that bypassed the maintenance layer, and
        :mod:`repro.engine` retires warm worker pools whose broadcast
        snapshot no longer matches.
        """
        return self._version

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def has_edge(self, source: str, label: str, target: str) -> bool:
        return (source, label, target) in self._edges

    @property
    def node_ids(self) -> list[str]:
        """Node ids in deterministic (insertion) order."""
        return list(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    @property
    def edges(self) -> set[Edge]:
        return set(self._edges)

    def nodes_with_label(self, label: str) -> set[str]:
        """All node ids carrying exactly ``label``."""
        return set(self._by_label.get(label, ()))

    @property
    def labels(self) -> set[str]:
        """All node labels present in the graph."""
        return {label for label, ids in self._by_label.items() if ids}

    @property
    def edge_labels(self) -> set[str]:
        return {label for (_, label, _) in self._edges}

    def successors(self, node_id: str, label: str | None = None) -> set[str]:
        """Targets of out-edges of ``node_id`` (optionally of one label)."""
        index = self._out.get(node_id)
        if index is None:
            raise GraphError(f"unknown node {node_id!r}")
        if label is not None:
            return set(index.get(label, ()))
        result: set[str] = set()
        for targets in index.values():
            result |= targets
        return result

    def predecessors(self, node_id: str, label: str | None = None) -> set[str]:
        """Sources of in-edges of ``node_id`` (optionally of one label)."""
        index = self._in.get(node_id)
        if index is None:
            raise GraphError(f"unknown node {node_id!r}")
        if label is not None:
            return set(index.get(label, ()))
        result: set[str] = set()
        for sources in index.values():
            result |= sources
        return result

    def out_row(self, node_id: str, label: str) -> "set[str] | frozenset[str]":
        """The internal successor set for one label — **read-only**.

        Unlike :meth:`successors`, no copy is made; the returned set is
        the live adjacency index and must not be mutated.  This is the
        matching executor's per-probe row access (the seed matcher paid
        one set copy per edge check here).
        """
        row = self._out.get(node_id)
        if row is None:
            raise GraphError(f"unknown node {node_id!r}")
        return row.get(label, _EMPTY_ROW)

    def in_row(self, node_id: str, label: str) -> "set[str] | frozenset[str]":
        """The internal predecessor set for one label — **read-only**."""
        row = self._in.get(node_id)
        if row is None:
            raise GraphError(f"unknown node {node_id!r}")
        return row.get(label, _EMPTY_ROW)

    def out_edges(self, node_id: str) -> Iterator[Edge]:
        for label, targets in self._out.get(node_id, {}).items():
            for target in targets:
                yield (node_id, label, target)

    def in_edges(self, node_id: str) -> Iterator[Edge]:
        for label, sources in self._in.get(node_id, {}).items():
            for source in sources:
                yield (source, label, node_id)

    def out_degree(self, node_id: str, label: str | None = None) -> int:
        """Out-degree; with ``label``, only edges carrying that label.

        The per-label form answers from the adjacency index's set sizes
        (O(1)) — degree pruning's probe, with no successor-set copy.
        """
        index = self._out.get(node_id, {})
        if label is not None:
            return len(index.get(label, ()))
        return sum(len(t) for t in index.values())

    def in_degree(self, node_id: str, label: str | None = None) -> int:
        """In-degree; with ``label``, only edges carrying that label."""
        index = self._in.get(node_id, {})
        if label is not None:
            return len(index.get(label, ()))
        return sum(len(s) for s in index.values())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def size(self) -> int:
        """|G| = number of nodes + edges + attribute entries.

        Used by the Theorem 1 chase bounds (|Eq| ≤ 4·|G|·|Σ|).
        """
        attr_entries = sum(len(n._attrs) for n in self._nodes.values())
        return len(self._nodes) + len(self._edges) + attr_entries

    # ------------------------------------------------------------------
    # Whole-graph operations
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """An independent deep copy."""
        clone = Graph()
        for node in self._nodes.values():
            clone.add_node(node.id, node.label, node.attributes)
        for source, label, target in self._edges:
            clone.add_edge(source, label, target)
        return clone

    def disjoint_union(
        self, other: "Graph", prefix_self: str = "", prefix_other: str = ""
    ) -> "Graph":
        """Disjoint union, renaming ids with the given prefixes.

        With empty prefixes the id sets must already be disjoint.
        """
        result = Graph()
        for node in self._nodes.values():
            result.add_node(prefix_self + node.id, node.label, node.attributes)
        for node in other._nodes.values():
            result.add_node(prefix_other + node.id, node.label, node.attributes)
        for s, l, t in self._edges:
            result.add_edge(prefix_self + s, l, prefix_self + t)
        for s, l, t in other._edges:
            result.add_edge(prefix_other + s, l, prefix_other + t)
        return result

    def induced_subgraph(self, node_ids: Iterable[str]) -> "Graph":
        """The substructure induced on ``node_ids`` (nodes, their
        attributes, and every edge with both endpoints retained)."""
        keep = set(node_ids)
        result = Graph()
        for node_id in keep:
            node = self.node(node_id)
            result.add_node(node.id, node.label, node.attributes)
        for s, l, t in self._edges:
            if s in keep and t in keep:
                result.add_edge(s, l, t)
        return result

    def __eq__(self, other: object) -> bool:
        """Structural equality: same ids, labels, attributes and edges."""
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._nodes) != set(other._nodes):
            return False
        for node_id, node in self._nodes.items():
            other_node = other._nodes[node_id]
            if node.label != other_node.label or node._attrs != other_node._attrs:
                return False
        return self._edges == other._edges

    def __hash__(self) -> int:  # Graphs are mutable; identity hashing only.
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(nodes={len(self._nodes)}, edges={len(self._edges)})"
