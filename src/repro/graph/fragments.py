"""The fragmented graph core: edge-cut partitions of the data graph.

Every parallel backend before this module sharded the *match space* of
one monolithic :class:`~repro.graph.graph.Graph` that each worker
replicated in full — broadcast cost, worker memory and update
replication all scaled with |G|, not |G|/k.  This module partitions the
**data itself**, the way Fan & Lu's dependencies-for-graphs setting
presumes for graphs too big for one machine's working set:

* :func:`partition_graph` cuts V into k disjoint *interior* sets
  (``"hash"`` — stable CRC32 of the node id; ``"greedy"`` — a
  deterministic METIS-style linear greedy pass that keeps neighbors
  together under a balance cap);
* each :class:`Fragment` stores the subgraph **induced** on its interior
  plus its *border* (every node outside the interior that is adjacent to
  it), with border nodes annotated with their owning fragment.  Storing
  the induced subgraph — border-border edges included — is what makes
  the ball-completeness rule of :mod:`repro.matching.locality` sound:
  a pivot whose pattern-radius ball keeps its core interior can be
  matched entirely on the fragment, byte-identically to the whole graph;
* :class:`FragmentedGraph` is the facade that answers the whole-graph
  ``Graph`` read API by routing every probe to the *owner* fragment of
  the node involved (the owner holds the node's complete adjacency, so
  no probe ever needs a second fragment);
* :func:`route_update` slices one :class:`~repro.graph.update.GraphUpdate`
  batch into per-fragment sub-batches carrying **only what each fragment
  must see** — the operations on its own nodes plus the border-replica
  coherence traffic (replica creation with completion edges when a node
  becomes adjacent to a fragment's interior, replica retirement when the
  last such adjacency goes away, attribute fan-out to every holder).
  :meth:`FragmentedGraph.apply_update` applies each slice through the
  index-maintaining path, so per-fragment indexes stay synced exactly
  like the monolithic one does.

The facade's answers — and the violations of every fragment-resident
execution path built on it — are asserted byte-identical to the
monolithic graph by the property suites in ``tests/graph`` and
``tests/parallel``.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graph.graph import Edge, Graph, Node, Value
from repro.graph.update import GraphUpdate, validate_update
from repro.telemetry import metrics as _metrics
from repro.utils.registry import WeakIdRegistry

PARTITION_MODES = ("hash", "greedy")


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------


def _hash_owner(node_id: str, k: int) -> int:
    """Stable owner assignment (CRC32, not Python's salted ``hash``) —
    the same node lands in the same fragment in every process."""
    return zlib.crc32(node_id.encode("utf-8")) % k


def _hash_assignment(graph: Graph, k: int) -> dict[str, int]:
    return {node_id: _hash_owner(node_id, k) for node_id in graph.node_ids}


_GREEDY_REFINE_ROUNDS = 4


def _greedy_assignment(graph: Graph, k: int) -> dict[str, int]:
    """Deterministic METIS-style greedy balanced partitioning.

    Two phases, both fully deterministic for a given graph:

    1. **Greedy graph growing** (the METIS initial partitioner): each
       fragment grows from a seed — the smallest unassigned node id —
       by repeatedly absorbing the unassigned node with the most edges
       into the region (ties by id), until it reaches ⌈n/k⌉ nodes.
       Dense communities are swallowed whole before a region ever
       crosses a weak link, which is exactly what keeps borders small
       on clustered data.
    2. **Local refinement** (Kernighan–Lin flavored): a few passes over
       the nodes in sorted order, moving any node whose neighbors
       majority-live in another fragment with spare capacity, repairing
       the growth phase's boundary mistakes.
    """
    n = graph.num_nodes
    capacity = -(-n // k) + 1 if n else 1
    target = -(-n // k) if n else 1
    owner: dict[str, int] = {}
    members = [0] * k

    def neighbors(node_id: str) -> set[str]:
        return graph.successors(node_id) | graph.predecessors(node_id)

    unassigned = set(graph.node_ids)
    for fragment_index in range(k):
        if not unassigned:
            break
        # Gain map over the growth frontier: unassigned node -> #edges
        # into the growing region.
        gains: dict[str, int] = {}
        grown = 0
        while grown < target and unassigned:
            if gains:
                node_id = max(gains, key=lambda m: (gains[m], m))
                # Ascending id on gain ties would bias toward early ids;
                # (gain, id) max picks the *largest* id — any fixed rule
                # works, it only needs to be deterministic.
                del gains[node_id]
            else:
                node_id = min(unassigned)  # fresh seed (new component)
            unassigned.discard(node_id)
            owner[node_id] = fragment_index
            members[fragment_index] += 1
            grown += 1
            for neighbor in neighbors(node_id):
                if neighbor in unassigned:
                    gains[neighbor] = gains.get(neighbor, 0) + 1
    for node_id in sorted(unassigned):  # remainder after the last region
        owner[node_id] = k - 1
        members[k - 1] += 1

    ordered = sorted(owner)
    for _ in range(_GREEDY_REFINE_ROUNDS):
        moved = False
        for node_id in ordered:
            current = owner[node_id]
            counts = [0] * k
            for neighbor in neighbors(node_id):
                counts[owner[neighbor]] += 1
            best = max(
                range(k),
                key=lambda f: (
                    counts[f],
                    f == current,  # prefer staying put on equal pull
                    -members[f],
                    -f,
                ),
            )
            if best != current and counts[best] > counts[current] and members[best] < capacity:
                owner[node_id] = best
                members[current] -= 1
                members[best] += 1
                moved = True
        if not moved:
            break
    return owner


@dataclass
class Fragment:
    """One fragment: interior nodes it owns, replicated border nodes,
    and the subgraph induced on their union (``graph``).

    ``border_owner`` maps each border node to its owning fragment index
    — the annotation escalation and update routing navigate by.
    """

    index: int
    graph: Graph
    interior: set[str]
    border_owner: dict[str, int] = field(default_factory=dict)

    @property
    def border(self) -> set[str]:
        return set(self.border_owner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fragment({self.index}, interior={len(self.interior)}, "
            f"border={len(self.border_owner)}, edges={self.graph.num_edges})"
        )


@dataclass
class Fragmentation:
    """A complete edge-cut partition of one graph into fragments."""

    fragments: list[Fragment]
    owner: dict[str, int]
    mode: str
    source_version: int
    indexed: bool = False

    @property
    def k(self) -> int:
        return len(self.fragments)

    def fragment_of(self, node_id: str) -> Fragment:
        try:
            return self.fragments[self.owner[node_id]]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def cut_edges(self) -> int:
        """Edges whose endpoints live in different fragments."""
        return sum(
            1
            for fragment in self.fragments
            for source, _, target in fragment.graph.edges
            if self.owner.get(source) == fragment.index
            and self.owner.get(target) != fragment.index
        )

    def replicated_nodes(self) -> int:
        """Total border replicas across fragments (0 = no cuts at all)."""
        return sum(len(fragment.border_owner) for fragment in self.fragments)

    def check(self, reference: Graph) -> None:
        """Assert the structural invariants against a reference graph.

        Interior sets partition V; each border set is exactly the
        exterior neighborhood of the interior; each local graph is the
        subgraph induced on interior ∪ border.  Raises ``AssertionError``
        on any violation (test/debug helper, not a hot path).
        """
        all_interior: set[str] = set()
        for fragment in self.fragments:
            assert not (all_interior & fragment.interior), "interiors overlap"
            all_interior |= fragment.interior
            for node_id in fragment.interior:
                assert self.owner.get(node_id) == fragment.index, "owner map out of sync"
        assert all_interior == set(reference.node_ids), "interiors do not cover V"
        for fragment in self.fragments:
            expected_border = {
                neighbor
                for node_id in fragment.interior
                for neighbor in (
                    reference.successors(node_id) | reference.predecessors(node_id)
                )
                if neighbor not in fragment.interior
            }
            assert fragment.border == expected_border, (
                f"fragment {fragment.index} border mismatch"
            )
            for node_id, owner_index in fragment.border_owner.items():
                assert self.owner[node_id] == owner_index, "border owner annotation stale"
            expected = reference.induced_subgraph(fragment.interior | fragment.border)
            assert fragment.graph == expected, f"fragment {fragment.index} graph mismatch"


def partition_graph(graph: Graph, k: int, mode: str = "hash") -> Fragmentation:
    """Cut ``graph`` into ``k`` fragments (see the module docstring).

    ``k`` larger than the node count simply leaves trailing fragments
    empty.  The partition is a snapshot: fragment graphs are independent
    copies, and ``source_version`` records the graph version captured.
    """
    if k < 1:
        raise ValueError(f"fragment count must be >= 1, got {k}")
    if mode not in PARTITION_MODES:
        raise ValueError(f"mode must be one of {PARTITION_MODES}, got {mode!r}")
    owner = _hash_assignment(graph, k) if mode == "hash" else _greedy_assignment(graph, k)
    interiors: list[set[str]] = [set() for _ in range(k)]
    for node_id, fragment_index in owner.items():
        interiors[fragment_index].add(node_id)
    fragments: list[Fragment] = []
    for index in range(k):
        interior = interiors[index]
        border_owner: dict[str, int] = {}
        for node_id in interior:
            for neighbor in graph.successors(node_id) | graph.predecessors(node_id):
                if neighbor not in interior:
                    border_owner[neighbor] = owner[neighbor]
        local = graph.induced_subgraph(interior | set(border_owner))
        fragments.append(Fragment(index, local, interior, border_owner))
    fragmentation = Fragmentation(fragments, owner, mode, graph.version)
    sink = _metrics.sink()
    if sink.enabled:
        sink.incr("fragment.partitions_built")
        _record_partition_quality(sink, fragmentation)
    return fragmentation


def _record_partition_quality(sink, fragmentation: "Fragmentation") -> None:
    """Gauge the partition-quality signals ROADMAP item 5 triggers on:
    border-replica share, cut edges, and interior balance."""
    nodes = len(fragmentation.owner)
    replicas = fragmentation.replicated_nodes()
    sink.gauge("fragment.border_replica_share", replicas / nodes if nodes else 0.0)
    sink.gauge("fragment.cut_edges", float(fragmentation.cut_edges()))
    interiors = [len(fragment.interior) for fragment in fragmentation.fragments]
    top = max(interiors, default=0)
    sink.gauge(
        "fragment.balance", (sum(interiors) / len(interiors)) / top if top else 1.0
    )


# ----------------------------------------------------------------------
# Update routing (border-replica coherence)
# ----------------------------------------------------------------------


@dataclass
class RoutedUpdate:
    """One batch, sliced per fragment, plus the bookkeeping deltas.

    ``slices[f]`` carries exactly what fragment f must apply: its own
    operations plus coherence traffic (replica creation/retirement,
    attribute fan-out, completion edges).  ``owner_added`` /
    ``owner_removed`` are the owner-map deltas; ``replicas_added`` /
    ``replicas_removed`` list (fragment, node, owner) replica changes.
    """

    slices: list[GraphUpdate]
    owner_added: dict[str, int]
    owner_removed: set[str]
    replicas_added: list[tuple[int, str, int]]
    replicas_removed: list[tuple[int, str]]

    def total_operations(self) -> int:
        """Summed slice sizes — what the fragment-routed replication
        log actually ships, versus ``k × update.size()`` for full
        replication."""
        return sum(update_slice.size() for update_slice in self.slices)


def _incident_edges(local: Graph, node_id: str) -> set[Edge]:
    return set(local.out_edges(node_id)) | set(local.in_edges(node_id))


def route_update(fragmented: "FragmentedGraph", update: GraphUpdate) -> RoutedUpdate:
    """Slice one (globally valid) batch into per-fragment sub-batches.

    The update must already be valid against the facade's current state
    (:meth:`FragmentedGraph.apply_update` validates before routing).
    Routing never mutates; it reads the pre-state and simulates the
    post-state adjacency of the affected nodes to compute replica
    coherence.
    """
    fragments = fragmented.fragmentation.fragments
    owner = fragmented.fragmentation.owner
    k = len(fragments)

    del_node_set = set(update.del_nodes)
    new_entries = {node_id: (label, dict(attrs or {})) for node_id, label, attrs in update.nodes}

    # -- post-state ownership ------------------------------------------
    owner_added: dict[str, int] = {}
    members = [len(fragment.interior) for fragment in fragments]
    for node_id in del_node_set:
        if node_id not in new_entries:
            members[owner[node_id]] -= 1
    for node_id in new_entries:
        if node_id in owner:  # replace: identity keeps its fragment
            owner_added[node_id] = owner[node_id]
        elif fragmented.fragmentation.mode == "hash":
            owner_added[node_id] = _hash_owner(node_id, k)
            members[owner_added[node_id]] += 1
        else:  # greedy: emptiest fragment, smallest index on ties
            best = min(range(k), key=lambda f: (members[f], f))
            owner_added[node_id] = best
            members[best] += 1

    def owner_post(node_id: str) -> int:
        got = owner_added.get(node_id)
        return owner[node_id] if got is None else got

    def exists_post(node_id: str) -> bool:
        if node_id in new_entries:
            return True
        return node_id in owner and node_id not in del_node_set

    # -- affected nodes and their post-state adjacency -----------------
    affected: set[str] = set(new_entries)
    for source, _, target in update.edges:
        affected.add(source)
        affected.add(target)
    for source, _, target in update.del_edges:
        affected.add(source)
        affected.add(target)
    pre_neighbors_of_deleted: dict[str, set[Edge]] = {}
    for node_id in del_node_set:
        affected.add(node_id)
        incident = _incident_edges(fragments[owner[node_id]].graph, node_id)
        pre_neighbors_of_deleted[node_id] = incident
        for source, _, target in incident:
            affected.add(source)
            affected.add(target)

    del_edge_set = set(update.del_edges)
    post_edges: dict[str, set[Edge]] = {}
    for node_id in affected:
        if not exists_post(node_id):
            continue
        if node_id in owner and node_id not in del_node_set:
            edges = _incident_edges(fragments[owner[node_id]].graph, node_id)
            edges -= del_edge_set
            # A node deletion cascades its incident edges even when the
            # same id is re-added in this batch ("replace") — only the
            # batch's own edge additions can resurrect them.
            edges = {
                edge
                for edge in edges
                if edge[0] not in del_node_set and edge[2] not in del_node_set
            }
        else:
            edges = set()  # brand-new or replaced node: only batch edges
        for edge in update.edges:
            if node_id in (edge[0], edge[2]):
                edges.add(edge)
        post_edges[node_id] = edges

    # -- replication diff ----------------------------------------------
    def required_post(node_id: str, fragment_index: int) -> bool:
        if owner_post(node_id) == fragment_index:
            return True
        for source, _, target in post_edges[node_id]:
            other = target if source == node_id else source
            if other != node_id and owner_post(other) == fragment_index:
                return True
        return False

    presence_post: dict[tuple[str, int], bool] = {}
    replicas_added: list[tuple[int, str, int]] = []
    replicas_removed: list[tuple[int, str]] = []
    newly_present: list[list[str]] = [[] for _ in range(k)]
    dropped_replicas: list[list[str]] = [[] for _ in range(k)]
    for node_id in sorted(affected):
        for fragment_index in range(k):
            pre_present = fragments[fragment_index].graph.has_node(node_id)
            post_present = exists_post(node_id) and required_post(node_id, fragment_index)
            presence_post[(node_id, fragment_index)] = post_present
            if post_present and (not pre_present or node_id in del_node_set):
                newly_present[fragment_index].append(node_id)
                if owner_post(node_id) != fragment_index:
                    replicas_added.append((fragment_index, node_id, owner_post(node_id)))
            elif pre_present and not post_present:
                if node_id not in del_node_set:
                    # Replica retirement of a *surviving* node (global
                    # deletions are routed as the batch's own del_nodes).
                    dropped_replicas[fragment_index].append(node_id)
                    replicas_removed.append((fragment_index, node_id))
                elif node_id in new_entries:
                    # Replaced (delete + re-add) but no longer required
                    # here: the routed del_nodes entry already removes
                    # the old replica from this fragment's graph, and
                    # the replace keeps the id out of owner_removed —
                    # so the border bookkeeping must retire it here.
                    replicas_removed.append((fragment_index, node_id))

    def present_post(node_id: str, fragment_index: int) -> bool:
        got = presence_post.get((node_id, fragment_index))
        if got is not None:
            return got
        return fragments[fragment_index].graph.has_node(node_id)

    # -- per-fragment slices -------------------------------------------
    global_del_attrs: dict[str, list[str]] = {}
    for node_id, attr in update.del_attrs:
        global_del_attrs.setdefault(node_id, []).append(attr)

    def replica_payload(node_id: str) -> tuple[str, str, dict[str, Value]]:
        """(id, label, attrs) for a coherence-created replica.

        Attrs are the node's pre-state values minus the batch's
        deletions; the batch's attribute *writes* are routed to every
        post-state holder, so they land on the new replica too.
        """
        if node_id in new_entries and (node_id not in owner or node_id in del_node_set):
            label, attrs = new_entries[node_id]
            return (node_id, label, dict(attrs))
        node = fragments[owner[node_id]].graph.node(node_id)
        attrs = dict(node.attributes)
        for attr in global_del_attrs.get(node_id, ()):
            attrs.pop(attr, None)
        return (node_id, node.label, attrs)

    slices: list[GraphUpdate] = []
    for fragment_index in range(k):
        local = fragments[fragment_index].graph
        slice_del_edges = [edge for edge in update.del_edges if local.has_edge(*edge)]
        slice_del_attrs = [
            (node_id, attr)
            for node_id, attr in update.del_attrs
            if local.has_node(node_id)
        ]
        slice_del_nodes = [
            node_id for node_id in update.del_nodes if local.has_node(node_id)
        ] + dropped_replicas[fragment_index]
        slice_nodes = [
            replica_payload(node_id) for node_id in newly_present[fragment_index]
        ]
        slice_attrs = [
            (node_id, attr, value)
            for node_id, attr, value in update.attrs
            if present_post(node_id, fragment_index)
        ]
        slice_edges: list[Edge] = []
        seen_edges: set[Edge] = set()
        for edge in update.edges:
            if (
                present_post(edge[0], fragment_index)
                and present_post(edge[2], fragment_index)
                and edge not in seen_edges
            ):
                seen_edges.add(edge)
                slice_edges.append(edge)
        # Completion edges: a fresh replica must arrive with every
        # surviving pre-existing edge it has into this fragment, or the
        # induced-subgraph closure (and with it ball-completeness) breaks.
        for node_id in newly_present[fragment_index]:
            for edge in sorted(post_edges[node_id]):
                if (
                    edge not in seen_edges
                    and present_post(edge[0], fragment_index)
                    and present_post(edge[2], fragment_index)
                ):
                    seen_edges.add(edge)
                    slice_edges.append(edge)
        slices.append(
            GraphUpdate(
                nodes=slice_nodes,
                edges=slice_edges,
                attrs=slice_attrs,
                del_nodes=slice_del_nodes,
                del_edges=slice_del_edges,
                del_attrs=slice_del_attrs,
            )
        )

    owner_removed = {
        node_id for node_id in del_node_set if node_id not in new_entries
    }
    return RoutedUpdate(slices, owner_added, owner_removed, replicas_added, replicas_removed)


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------


class FragmentedGraph:
    """A partitioned graph answering the whole-graph read API.

    Every probe routes to the **owner** fragment of the node involved:
    the owner's induced subgraph holds the node's complete adjacency
    (any neighbor is interior or border there), so one fragment always
    suffices.  Node order is canonical (sorted ids) rather than
    insertion order — every consumer that needs determinism sorts
    anyway (the matcher's interned views sort by id).

    Mutation goes through :meth:`apply_update` only, which routes the
    batch per fragment (:func:`route_update`) and applies each slice via
    the index-maintaining path, keeping per-fragment indexes synced.
    """

    def __init__(self, fragmentation: Fragmentation):
        self.fragmentation = fragmentation
        self._version = 0

    @classmethod
    def partition(
        cls,
        graph: Graph,
        k: int,
        mode: str = "hash",
        *,
        indexed: bool = False,
    ) -> "FragmentedGraph":
        """Partition ``graph`` and wrap the result; ``indexed=True``
        attaches (and thereafter maintains) one index per fragment."""
        fragmentation = partition_graph(graph, k, mode)
        fragmented = cls(fragmentation)
        if indexed:
            fragmented.attach_indexes()
        return fragmented

    def attach_indexes(self) -> None:
        """Build per-fragment :mod:`repro.indexing` bundles (idempotent:
        rebuilds replace any stale ones)."""
        from repro.indexing.registry import attach_index

        for fragment in self.fragmentation.fragments:
            attach_index(fragment.graph)
        self.fragmentation.indexed = True

    # -- routing helpers -----------------------------------------------
    @property
    def fragments(self) -> list[Fragment]:
        return self.fragmentation.fragments

    def _owner_graph(self, node_id: str) -> Graph:
        return self.fragmentation.fragment_of(node_id).graph

    # -- the Graph read API --------------------------------------------
    @property
    def version(self) -> int:
        """Facade mutation counter (bumped once per applied batch)."""
        return self._version

    def node(self, node_id: str) -> Node:
        return self._owner_graph(node_id).node(node_id)

    def has_node(self, node_id: str) -> bool:
        return node_id in self.fragmentation.owner

    def has_edge(self, source: str, label: str, target: str) -> bool:
        fragment_index = self.fragmentation.owner.get(source)
        if fragment_index is None:
            return False
        return self.fragmentation.fragments[fragment_index].graph.has_edge(
            source, label, target
        )

    @property
    def node_ids(self) -> list[str]:
        """Node ids in canonical (sorted) order."""
        return sorted(self.fragmentation.owner)

    @property
    def nodes(self) -> list[Node]:
        return [self.node(node_id) for node_id in self.node_ids]

    @property
    def edges(self) -> set[Edge]:
        owner = self.fragmentation.owner
        return {
            edge
            for fragment in self.fragmentation.fragments
            for edge in fragment.graph.edges
            if owner[edge[0]] == fragment.index
        }

    def nodes_with_label(self, label: str) -> set[str]:
        owner = self.fragmentation.owner
        return {
            node_id
            for fragment in self.fragmentation.fragments
            for node_id in fragment.graph.nodes_with_label(label)
            if owner[node_id] == fragment.index
        }

    @property
    def labels(self) -> set[str]:
        result: set[str] = set()
        for fragment in self.fragmentation.fragments:
            result |= fragment.graph.labels
        return result

    @property
    def edge_labels(self) -> set[str]:
        result: set[str] = set()
        for fragment in self.fragmentation.fragments:
            result |= fragment.graph.edge_labels
        return result

    def successors(self, node_id: str, label: str | None = None) -> set[str]:
        return self._owner_graph(node_id).successors(node_id, label)

    def predecessors(self, node_id: str, label: str | None = None) -> set[str]:
        return self._owner_graph(node_id).predecessors(node_id, label)

    def out_row(self, node_id: str, label: str):
        return self._owner_graph(node_id).out_row(node_id, label)

    def in_row(self, node_id: str, label: str):
        return self._owner_graph(node_id).in_row(node_id, label)

    def out_edges(self, node_id: str) -> Iterator[Edge]:
        return self._owner_graph(node_id).out_edges(node_id)

    def in_edges(self, node_id: str) -> Iterator[Edge]:
        return self._owner_graph(node_id).in_edges(node_id)

    def out_degree(self, node_id: str, label: str | None = None) -> int:
        return self._owner_graph(node_id).out_degree(node_id, label)

    def in_degree(self, node_id: str, label: str | None = None) -> int:
        return self._owner_graph(node_id).in_degree(node_id, label)

    @property
    def num_nodes(self) -> int:
        return len(self.fragmentation.owner)

    @property
    def num_edges(self) -> int:
        owner = self.fragmentation.owner
        return sum(
            1
            for fragment in self.fragmentation.fragments
            for edge in fragment.graph.edges
            if owner[edge[0]] == fragment.index
        )

    def size(self) -> int:
        """|G| = nodes + edges + attribute entries, counted once each
        (replicas excluded)."""
        attrs = sum(len(self.node(node_id).attributes) for node_id in self.fragmentation.owner)
        return self.num_nodes + self.num_edges + attrs

    def to_graph(self) -> Graph:
        """Reassemble one monolithic :class:`Graph` (tests, escalation
        fallbacks, export)."""
        result = Graph()
        for node_id in self.node_ids:
            node = self.node(node_id)
            result.add_node(node.id, node.label, node.attributes)
        for source, label, target in sorted(self.edges):
            result.add_edge(source, label, target)
        return result

    # -- mutation ------------------------------------------------------
    def apply_update(self, update: GraphUpdate) -> RoutedUpdate:
        """Validate, route, and apply one batch across the fragments.

        Returns the :class:`RoutedUpdate` (the per-fragment replication
        log entries) so callers — the streaming layer — can ship each
        slice to its fragment-resident worker instead of replicating the
        whole batch everywhere.
        """
        from repro.indexing.maintenance import apply_update_indexed

        validate_update(self, update)  # atomic: reject before any slice lands
        routed = route_update(self, update)
        fragmentation = self.fragmentation
        for fragment, update_slice in zip(fragmentation.fragments, routed.slices):
            if not update_slice.is_empty():
                apply_update_indexed(fragment.graph, update_slice)
        # -- bookkeeping ----------------------------------------------
        for node_id in routed.owner_removed:
            former = fragmentation.owner.pop(node_id)
            fragmentation.fragments[former].interior.discard(node_id)
            for fragment in fragmentation.fragments:
                fragment.border_owner.pop(node_id, None)
        for node_id, fragment_index in routed.owner_added.items():
            fragmentation.owner[node_id] = fragment_index
            fragmentation.fragments[fragment_index].interior.add(node_id)
        for fragment_index, node_id in routed.replicas_removed:
            fragmentation.fragments[fragment_index].border_owner.pop(node_id, None)
        for fragment_index, node_id, owner_index in routed.replicas_added:
            fragmentation.fragments[fragment_index].border_owner[node_id] = owner_index
        self._version += 1
        sink = _metrics.sink()
        if sink.enabled:
            sink.incr("fragment.route.batches")
            sink.incr("fragment.route.ops_routed", routed.total_operations())
            sink.incr("fragment.route.ops_full", fragmentation.k * update.size())
            sink.incr("fragment.route.replicas_added", len(routed.replicas_added))
            sink.incr("fragment.route.replicas_removed", len(routed.replicas_removed))
            nodes = len(fragmentation.owner)
            sink.gauge(
                "fragment.border_replica_share",
                fragmentation.replicated_nodes() / nodes if nodes else 0.0,
            )
        return routed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FragmentedGraph(k={self.fragmentation.k}, nodes={self.num_nodes}, "
            f"mode={self.fragmentation.mode!r}, v={self._version})"
        )


# ----------------------------------------------------------------------
# Fragmentation registry (read-only consumers: the fragment backend)
# ----------------------------------------------------------------------

# Identity-keyed weak registry (same scheme as repro.indexing.registry):
# fragmentations are snapshots, so any graph mutation — version mismatch
# — retires the cached partition wholesale.
_fragmentations: WeakIdRegistry = WeakIdRegistry()


def get_fragments(
    graph: Graph,
    k: int,
    mode: str = "hash",
    *,
    ensure_indexes: bool | None = None,
) -> Fragmentation:
    """The cached partition of ``graph`` into ``k`` fragments.

    Rebuilt when the graph version moved or no (k, mode) entry exists.
    ``ensure_indexes`` mirrors the coordinator's index decision onto the
    fragments: ``None`` follows whether the *graph* has a synced index
    attached, ``True``/``False`` force it.  Cached fragmentations are
    read-only mirrors — mutate the graph and the cache retires itself.
    """
    from repro.indexing.registry import get_index

    entries: dict[tuple[int, str], Fragmentation] | None = _fragmentations.get(graph)
    if entries is None:
        entries = {}
        _fragmentations.set(graph, entries)
    fragmentation = entries.get((k, mode))
    if fragmentation is None or fragmentation.source_version != graph.version:
        _metrics.sink().incr("fragment.cache.builds")
        fragmentation = partition_graph(graph, k, mode)
        entries[(k, mode)] = fragmentation
    else:
        _metrics.sink().incr("fragment.cache.hits")
    want_indexes = (
        get_index(graph) is not None if ensure_indexes is None else ensure_indexes
    )
    if want_indexes and not fragmentation.indexed:
        from repro.indexing.registry import attach_index

        for fragment in fragmentation.fragments:
            attach_index(fragment.graph)
        fragmentation.indexed = True
    return fragmentation


def fragment_stats(fragmentation: Fragmentation) -> dict[str, object]:
    """Summary numbers for one partition (CLI / bench reporting)."""
    per_fragment = [
        {
            "fragment": fragment.index,
            "interior": len(fragment.interior),
            "border": len(fragment.border_owner),
            "local_nodes": fragment.graph.num_nodes,
            "local_edges": fragment.graph.num_edges,
        }
        for fragment in fragmentation.fragments
    ]
    interiors = [len(fragment.interior) for fragment in fragmentation.fragments]
    balance = (
        (sum(interiors) / len(interiors)) / max(interiors) if max(interiors, default=0) else 1.0
    )
    return {
        "k": fragmentation.k,
        "mode": fragmentation.mode,
        "cut_edges": fragmentation.cut_edges(),
        "replicated_nodes": fragmentation.replicated_nodes(),
        "balance": balance,
        "fragments": per_fragment,
    }


__all__ = [
    "PARTITION_MODES",
    "Fragment",
    "FragmentedGraph",
    "Fragmentation",
    "RoutedUpdate",
    "fragment_stats",
    "get_fragments",
    "partition_graph",
    "route_update",
]
