"""JSON (de)serialization for graphs.

The format is a plain dictionary so graphs can be stored in files,
shipped over APIs, or embedded in experiment manifests:

.. code-block:: json

    {
      "nodes": [{"id": "a1", "label": "album", "attrs": {"title": "Bleach"}}],
      "edges": [["a1", "primary_artist", "p1"]]
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import GraphError
from repro.graph.graph import Graph


def graph_to_dict(g: Graph) -> dict[str, Any]:
    """A JSON-ready dictionary representation of ``g``."""
    return {
        "nodes": [
            {"id": n.id, "label": n.label, "attrs": dict(n.attributes)}
            for n in g.nodes
        ],
        "edges": sorted([s, l, t] for (s, l, t) in g.edges),
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    if not isinstance(data, dict) or "nodes" not in data:
        raise GraphError("graph dictionary must contain a 'nodes' list")
    g = Graph()
    for entry in data["nodes"]:
        g.add_node(entry["id"], entry["label"], entry.get("attrs") or {})
    for edge in data.get("edges", []):
        source, label, target = edge
        g.add_edge(source, label, target)
    return g


def graph_to_json(g: Graph, indent: int | None = None) -> str:
    return json.dumps(graph_to_dict(g), indent=indent, sort_keys=True)


def graph_from_json(text: str) -> Graph:
    return graph_from_dict(json.loads(text))
