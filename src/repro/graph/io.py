"""(De)serialization for graphs: JSON files and flat-array snapshots.

The JSON format is a plain dictionary so graphs can be stored in files,
shipped over APIs, or embedded in experiment manifests:

.. code-block:: json

    {
      "nodes": [{"id": "a1", "label": "album", "attrs": {"title": "Bleach"}}],
      "edges": [["a1", "primary_artist", "p1"]]
    }

The flat-array format (:func:`graph_to_arrays` / :func:`graph_from_arrays`)
is the wire representation behind :mod:`repro.engine.snapshot`: every
string is interned once in a pool and the node/edge structure becomes a
handful of ``array('I')`` integer columns, which pickle an order of
magnitude cheaper than the object graph (no per-Node class payload, no
per-edge tuple objects).  It is lossless — rebuilding yields a graph that
is ``==`` to the original — but, unlike the JSON format, it is a Python
pickle-time optimization, not an interchange format.
"""

from __future__ import annotations

import json
from array import array
from typing import Any

from repro.errors import GraphError
from repro.graph.graph import Graph


def graph_to_dict(g: Graph) -> dict[str, Any]:
    """A JSON-ready dictionary representation of ``g``."""
    return {
        "nodes": [
            {"id": n.id, "label": n.label, "attrs": dict(n.attributes)}
            for n in g.nodes
        ],
        "edges": sorted([s, l, t] for (s, l, t) in g.edges),
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    if not isinstance(data, dict) or "nodes" not in data:
        raise GraphError("graph dictionary must contain a 'nodes' list")
    g = Graph()
    for entry in data["nodes"]:
        g.add_node(entry["id"], entry["label"], entry.get("attrs") or {})
    for edge in data.get("edges", []):
        source, label, target = edge
        g.add_edge(source, label, target)
    return g


def graph_to_json(g: Graph, indent: int | None = None) -> str:
    return json.dumps(graph_to_dict(g), indent=indent, sort_keys=True)


def graph_from_json(text: str) -> Graph:
    return graph_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Flat-array snapshot encoding (the repro.engine broadcast format)
# ----------------------------------------------------------------------


class _Pool:
    """Interning pool: assigns each distinct value one integer slot.

    Values are deduplicated by ``(type, value)`` so ``1``, ``1.0`` and
    ``True`` — equal under ``==`` — keep their exact identity through a
    roundtrip.  Unhashable values (graphs may carry them; the index
    layer treats them as unindexable) are appended without dedup.
    """

    def __init__(self) -> None:
        self.values: list[Any] = []
        self._slots: dict[Any, int] = {}

    def intern(self, value: Any) -> int:
        try:
            key = (type(value), value)
            slot = self._slots.get(key)
            if slot is None:
                slot = len(self.values)
                self._slots[key] = slot
                self.values.append(value)
            return slot
        except TypeError:  # unhashable value: store without dedup
            self.values.append(value)
            return len(self.values) - 1


def graph_to_arrays(g: Graph) -> dict[str, Any]:
    """Encode ``g`` as interned pools plus flat integer columns.

    Layout (all columns index into ``pool``):

    * ``node_ids`` / ``node_labels`` — one entry per node, in the
      graph's deterministic insertion order;
    * ``attr_node`` / ``attr_name`` / ``attr_value`` — one entry per
      attribute; ``attr_node`` indexes into ``node_ids``;
    * ``edge_src`` / ``edge_label`` / ``edge_dst`` — one entry per edge,
      sorted; ``edge_src``/``edge_dst`` index into ``node_ids``.
    """
    pool = _Pool()
    node_ids = array("I")
    node_labels = array("I")
    node_slot: dict[str, int] = {}
    attr_node = array("I")
    attr_name = array("I")
    attr_value = array("I")
    for position, node in enumerate(g.nodes):
        node_slot[node.id] = position
        node_ids.append(pool.intern(node.id))
        node_labels.append(pool.intern(node.label))
        for name, value in node.attributes.items():
            attr_node.append(position)
            attr_name.append(pool.intern(name))
            attr_value.append(pool.intern(value))
    edge_src = array("I")
    edge_label = array("I")
    edge_dst = array("I")
    for source, label, target in sorted(g.edges):
        edge_src.append(node_slot[source])
        edge_label.append(pool.intern(label))
        edge_dst.append(node_slot[target])
    return {
        "pool": pool.values,
        "node_ids": node_ids,
        "node_labels": node_labels,
        "attr_node": attr_node,
        "attr_name": attr_name,
        "attr_value": attr_value,
        "edge_src": edge_src,
        "edge_label": edge_label,
        "edge_dst": edge_dst,
    }


def graph_from_arrays(data: dict[str, Any]) -> Graph:
    """Rebuild a graph from :func:`graph_to_arrays` output."""
    pool: list[Any] = data["pool"]
    g = Graph()
    ids: list[str] = []
    for id_slot, label_slot in zip(data["node_ids"], data["node_labels"]):
        node_id = pool[id_slot]
        ids.append(node_id)
        g.add_node(node_id, pool[label_slot])
    for position, name_slot, value_slot in zip(
        data["attr_node"], data["attr_name"], data["attr_value"]
    ):
        g.set_attribute(ids[position], pool[name_slot], pool[value_slot])
    for src, label_slot, dst in zip(data["edge_src"], data["edge_label"], data["edge_dst"]):
        g.add_edge(ids[src], pool[label_slot], ids[dst])
    return g
