"""(De)serialization for graphs: JSON files, flat-array snapshots, and
the durable update log.

The JSON format is a plain dictionary so graphs can be stored in files,
shipped over APIs, or embedded in experiment manifests:

.. code-block:: json

    {
      "nodes": [{"id": "a1", "label": "album", "attrs": {"title": "Bleach"}}],
      "edges": [["a1", "primary_artist", "p1"]]
    }

The flat-array format (:func:`graph_to_arrays` / :func:`graph_from_arrays`)
is the wire representation behind :mod:`repro.engine.snapshot`: every
string is interned once in a pool and the node/edge structure becomes a
handful of ``array('I')`` integer columns, which pickle an order of
magnitude cheaper than the object graph (no per-Node class payload, no
per-edge tuple objects).  It is lossless — rebuilding yields a graph that
is ``==`` to the original — but, unlike the JSON format, it is a Python
pickle-time optimization, not an interchange format.

The **update log** (:class:`UpdateLogWriter` / :func:`read_update_log` /
:func:`replay_update_log`) makes streams of
:class:`~repro.graph.update.GraphUpdate` batches durable and resumable:
one JSONL line per batch, each stamped with a monotone sequence number,
interleaved with periodic *checkpoint* lines carrying the full graph in
the flat-array encoding (arrays spelled as JSON lists).  Replaying from
the latest checkpoint rather than the beginning is what makes recovery
O(tail), not O(history).  The exact line formats are specified in
``docs/update-log.md``; attribute values must be JSON-representable
(the same restriction the plain JSON graph format has).
"""

from __future__ import annotations

import json
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.update import GraphUpdate


def graph_to_dict(g: Graph) -> dict[str, Any]:
    """A JSON-ready dictionary representation of ``g``."""
    return {
        "nodes": [
            {"id": n.id, "label": n.label, "attrs": dict(n.attributes)}
            for n in g.nodes
        ],
        "edges": sorted([s, l, t] for (s, l, t) in g.edges),
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    if not isinstance(data, dict) or "nodes" not in data:
        raise GraphError("graph dictionary must contain a 'nodes' list")
    g = Graph()
    for entry in data["nodes"]:
        g.add_node(entry["id"], entry["label"], entry.get("attrs") or {})
    for edge in data.get("edges", []):
        source, label, target = edge
        g.add_edge(source, label, target)
    return g


def graph_to_json(g: Graph, indent: int | None = None) -> str:
    return json.dumps(graph_to_dict(g), indent=indent, sort_keys=True)


def graph_from_json(text: str) -> Graph:
    return graph_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Flat-array snapshot encoding (the repro.engine broadcast format)
# ----------------------------------------------------------------------


class _Pool:
    """Interning pool: assigns each distinct value one integer slot.

    Values are deduplicated by ``(type, value)`` so ``1``, ``1.0`` and
    ``True`` — equal under ``==`` — keep their exact identity through a
    roundtrip.  Unhashable values (graphs may carry them; the index
    layer treats them as unindexable) are appended without dedup.
    """

    def __init__(self) -> None:
        self.values: list[Any] = []
        self._slots: dict[Any, int] = {}

    def intern(self, value: Any) -> int:
        try:
            key = (type(value), value)
            slot = self._slots.get(key)
            if slot is None:
                slot = len(self.values)
                self._slots[key] = slot
                self.values.append(value)
            return slot
        except TypeError:  # unhashable value: store without dedup
            self.values.append(value)
            return len(self.values) - 1


def graph_to_arrays(g: Graph) -> dict[str, Any]:
    """Encode ``g`` as interned pools plus flat integer columns.

    Layout (all columns index into ``pool``):

    * ``node_ids`` / ``node_labels`` — one entry per node, in the
      graph's deterministic insertion order;
    * ``attr_node`` / ``attr_name`` / ``attr_value`` — one entry per
      attribute; ``attr_node`` indexes into ``node_ids``;
    * ``edge_src`` / ``edge_label`` / ``edge_dst`` — one entry per edge,
      sorted; ``edge_src``/``edge_dst`` index into ``node_ids``.
    """
    pool = _Pool()
    node_ids = array("I")
    node_labels = array("I")
    node_slot: dict[str, int] = {}
    attr_node = array("I")
    attr_name = array("I")
    attr_value = array("I")
    for position, node in enumerate(g.nodes):
        node_slot[node.id] = position
        node_ids.append(pool.intern(node.id))
        node_labels.append(pool.intern(node.label))
        for name, value in node.attributes.items():
            attr_node.append(position)
            attr_name.append(pool.intern(name))
            attr_value.append(pool.intern(value))
    edge_src = array("I")
    edge_label = array("I")
    edge_dst = array("I")
    for source, label, target in sorted(g.edges):
        edge_src.append(node_slot[source])
        edge_label.append(pool.intern(label))
        edge_dst.append(node_slot[target])
    return {
        "pool": pool.values,
        "node_ids": node_ids,
        "node_labels": node_labels,
        "attr_node": attr_node,
        "attr_name": attr_name,
        "attr_value": attr_value,
        "edge_src": edge_src,
        "edge_label": edge_label,
        "edge_dst": edge_dst,
    }


def graph_from_arrays(data: dict[str, Any]) -> Graph:
    """Rebuild a graph from :func:`graph_to_arrays` output."""
    pool: list[Any] = data["pool"]
    g = Graph()
    ids: list[str] = []
    for id_slot, label_slot in zip(data["node_ids"], data["node_labels"]):
        node_id = pool[id_slot]
        ids.append(node_id)
        g.add_node(node_id, pool[label_slot])
    for position, name_slot, value_slot in zip(
        data["attr_node"], data["attr_name"], data["attr_value"]
    ):
        g.set_attribute(ids[position], pool[name_slot], pool[value_slot])
    for src, label_slot, dst in zip(data["edge_src"], data["edge_label"], data["edge_dst"]):
        g.add_edge(ids[src], pool[label_slot], ids[dst])
    return g


# ----------------------------------------------------------------------
# The durable update log (JSONL; format spec in docs/update-log.md)
# ----------------------------------------------------------------------

#: Version stamp carried by every update-log line.
UPDATE_LOG_FORMAT = 1

_ARRAY_COLUMNS = (
    "node_ids",
    "node_labels",
    "attr_node",
    "attr_name",
    "attr_value",
    "edge_src",
    "edge_label",
    "edge_dst",
)


def update_to_dict(update: GraphUpdate) -> dict[str, Any]:
    """A JSON-ready dictionary for one batch (empty fields omitted)."""
    payload: dict[str, Any] = {}
    if update.nodes:
        payload["nodes"] = [[i, l, dict(a or {})] for i, l, a in update.nodes]
    if update.edges:
        payload["edges"] = [list(edge) for edge in update.edges]
    if update.attrs:
        payload["attrs"] = [list(entry) for entry in update.attrs]
    if update.del_nodes:
        payload["del_nodes"] = list(update.del_nodes)
    if update.del_edges:
        payload["del_edges"] = [list(edge) for edge in update.del_edges]
    if update.del_attrs:
        payload["del_attrs"] = [list(entry) for entry in update.del_attrs]
    return payload


def update_from_dict(data: dict[str, Any]) -> GraphUpdate:
    """Rebuild a batch from :func:`update_to_dict` output."""
    if not isinstance(data, dict):
        raise GraphError(f"update dictionary expected, got {type(data).__name__}")
    return GraphUpdate(
        nodes=[(i, l, dict(a)) for i, l, a in data.get("nodes", ())],
        edges=[tuple(edge) for edge in data.get("edges", ())],
        attrs=[tuple(entry) for entry in data.get("attrs", ())],
        del_nodes=list(data.get("del_nodes", ())),
        del_edges=[tuple(edge) for edge in data.get("del_edges", ())],
        del_attrs=[tuple(entry) for entry in data.get("del_attrs", ())],
    )


def _checkpoint_arrays(g: Graph) -> dict[str, Any]:
    """Flat-array encoding with integer columns spelled as JSON lists."""
    arrays = graph_to_arrays(g)
    payload: dict[str, Any] = {"pool": arrays["pool"]}
    for column in _ARRAY_COLUMNS:
        payload[column] = list(arrays[column])
    return payload


@dataclass
class LogRecord:
    """One decoded update-log line."""

    seq: int
    type: str  # "update" | "checkpoint"
    update: GraphUpdate | None = None
    graph: Graph | None = None


class UpdateLogWriter:
    """Append-only JSONL writer for a stream of update batches.

    ``checkpoint_every=k`` writes a checkpoint line (the full graph,
    flat-array encoded) after every k-th batch; the caller passes the
    maintained graph to :meth:`append` so checkpoints always capture the
    post-batch state.  ``seq`` numbers batches from 1; a checkpoint
    carries the seq of the last batch it includes (seq 0 = base graph
    before any batch).

    Reopening an existing log **resumes** its numbering: the writer
    reads the last record's ``seq`` (every record type carries the
    current batch count) and continues from there, so the format's
    monotone-seq contract survives restarts.
    """

    def __init__(self, path: str | Path, checkpoint_every: int | None = None):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.path = Path(path)
        self.checkpoint_every = checkpoint_every
        self.seq = self._resume_seq(self.path)
        self._file = open(self.path, "a", encoding="utf-8")

    @staticmethod
    def _resume_seq(path: Path) -> int:
        """The seq of an existing log's last record (0 for a new log)."""
        if not path.exists():
            return 0
        last_line = None
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    last_line = line
        if last_line is None:
            return 0
        try:
            record = json.loads(last_line)
            seq = record["seq"]
        except (json.JSONDecodeError, KeyError, TypeError):
            raise GraphError(
                f"cannot resume update log {path}: last record is malformed"
            ) from None
        if not isinstance(seq, int) or seq < 0:
            raise GraphError(f"cannot resume update log {path}: bad seq {seq!r}")
        return seq

    def _write(self, record: dict[str, Any]) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def write_base(self, graph: Graph) -> None:
        """Record the base graph as a seq-0 checkpoint (optional; a log
        without one replays against a caller-supplied base graph)."""
        self._write(
            {
                "format": UPDATE_LOG_FORMAT,
                "type": "checkpoint",
                "seq": self.seq,
                "arrays": _checkpoint_arrays(graph),
            }
        )

    def append(self, update: GraphUpdate, graph: Graph | None = None) -> int:
        """Append one batch; returns its sequence number.

        With ``checkpoint_every`` configured and ``graph`` provided, a
        checkpoint of the (already-updated) graph follows every k-th
        batch.
        """
        self.seq += 1
        self._write(
            {
                "format": UPDATE_LOG_FORMAT,
                "type": "update",
                "seq": self.seq,
                "update": update_to_dict(update),
            }
        )
        if (
            self.checkpoint_every is not None
            and graph is not None
            and self.seq % self.checkpoint_every == 0
        ):
            self.checkpoint(graph)
        return self.seq

    def checkpoint(self, graph: Graph) -> None:
        """Write a checkpoint of ``graph`` at the current seq."""
        self._write(
            {
                "format": UPDATE_LOG_FORMAT,
                "type": "checkpoint",
                "seq": self.seq,
                "arrays": _checkpoint_arrays(graph),
            }
        )

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "UpdateLogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def scan_update_log(path: str | Path) -> Iterator[dict[str, Any]]:
    """Validated *raw* records, one JSON dictionary per line.

    The cheap layer under :func:`read_update_log`: format/type/seq are
    checked but nothing is materialized — in particular checkpoint
    graphs stay as their array dictionaries, so callers that skip or
    postpone checkpoints (replay, the ``stream`` CLI) never pay
    O(|G|) decodes for records they discard.
    """
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise GraphError(f"{path}:{line_no}: not valid JSON ({exc})") from None
            if not isinstance(record, dict) or "type" not in record or "seq" not in record:
                raise GraphError(f"{path}:{line_no}: malformed update-log record")
            if record.get("format") != UPDATE_LOG_FORMAT:
                raise GraphError(
                    f"{path}:{line_no}: unsupported update-log format "
                    f"{record.get('format')!r} (this reader speaks {UPDATE_LOG_FORMAT})"
                )
            if record["type"] not in ("update", "checkpoint"):
                raise GraphError(
                    f"{path}:{line_no}: unknown record type {record['type']!r}"
                )
            yield record


def _decode_record(record: dict[str, Any]) -> LogRecord:
    if record["type"] == "update":
        return LogRecord(record["seq"], "update", update=update_from_dict(record["update"]))
    return LogRecord(record["seq"], "checkpoint", graph=graph_from_arrays(record["arrays"]))


def read_update_log(path: str | Path) -> Iterator[LogRecord]:
    """Decode an update log line by line (checkpoints included)."""
    for record in scan_update_log(path):
        yield _decode_record(record)


@dataclass
class ReplayResult:
    """What :func:`replay_update_log` did."""

    graph: Graph
    applied: int  # update batches actually applied
    last_seq: int  # seq of the last record consumed (0 = empty log)
    resumed_from: int  # checkpoint seq the replay started at (0 = base)


def replay_update_log(
    path: str | Path,
    graph: Graph | None = None,
    *,
    use_checkpoints: bool = True,
) -> ReplayResult:
    """Replay a log into a graph (index-maintaining, batch-atomic).

    With ``graph=None`` the log must contain at least one checkpoint;
    replay restores the **latest** checkpoint and applies only the
    batches after it.  With a caller-supplied base graph, all batches
    are applied (checkpoints are skipped, or — when ``use_checkpoints``
    — the latest one replaces the state wholesale so the tail still
    wins; pass ``use_checkpoints=False`` to force a full from-base
    replay, e.g. to cross-check checkpoint integrity).
    """
    from repro.indexing.maintenance import apply_update_indexed

    # Single raw scan: keep the latest checkpoint's (undecoded) arrays
    # and only the raw update tail after it, so recovery work and peak
    # memory are O(tail + |latest checkpoint|), not O(history).
    latest_checkpoint: dict[str, Any] | None = None
    tail: list[dict[str, Any]] = []
    for record in scan_update_log(path):
        if record["type"] == "checkpoint":
            if use_checkpoints:
                latest_checkpoint = record
                tail = []
        else:
            tail.append(record)
    resumed_from = 0
    if latest_checkpoint is not None:
        graph = graph_from_arrays(latest_checkpoint["arrays"])
        resumed_from = latest_checkpoint["seq"]
    if graph is None:
        raise GraphError(
            f"update log {path} has no checkpoint; pass the base graph to replay against"
        )
    applied = 0
    last_seq = resumed_from
    for record in tail:
        apply_update_indexed(graph, update_from_dict(record["update"]))
        applied += 1
        last_seq = record["seq"]
    return ReplayResult(graph, applied, last_seq, resumed_from)
