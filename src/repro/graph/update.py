"""Graph update batches: the unit of change for streaming maintenance.

A :class:`GraphUpdate` describes one atomic batch of mutations against a
data graph — additions (new nodes, new edges, attribute writes) *and*
deletions (edges, attributes, whole nodes).  Batches are what the
incremental-validation layer (:mod:`repro.reasoning.incremental`), the
index maintenance layer (:mod:`repro.indexing.maintenance`), the durable
update log (:mod:`repro.graph.io`) and the streaming violation ledger
(:mod:`repro.streaming`) all speak.

**Batch semantics** (enforced by every apply path):

1. Deletions run first, in the order ``del_edges``, ``del_attrs``,
   ``del_nodes`` — deleting a node cascades to its incident edges, so a
   batch may delete a node and re-add the same id ("replace").
2. Additions run second, in the order ``nodes``, ``attrs``, ``edges`` —
   a batch may add a node, write its attributes, and wire it up.
3. Re-adding an existing node id is an **error**, mirroring
   :meth:`~repro.graph.graph.Graph.add_node` (node identity is
   immutable; merging nodes is the chase's job, never done in place).
   To replace a node, delete it in the same batch first.
4. Edge additions are idempotent (``E`` is a set, as in the paper);
   every deletion must name an element that exists at its point in the
   order above, and duplicate deletions within one batch are errors.

**Atomicity**: :func:`validate_update` checks the *whole* batch against
these rules before anything mutates, simulating the in-batch node-set
evolution; apply paths call it first and raise
:class:`~repro.errors.GraphError` (a :class:`~repro.errors.ReproError`)
naming the offending tuple, leaving the graph — and any attached index —
untouched instead of failing mid-batch with the structures half-updated.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.graph import ID_ATTRIBUTE, Edge, Graph, Value


@dataclass
class GraphUpdate:
    """One atomic batch of graph mutations (see the module docstring).

    * ``nodes`` — (id, label, attrs) for new nodes;
    * ``edges`` — (source, label, target) for new edges (idempotent);
    * ``attrs`` — (node id, attribute, value) for attribute writes
      (overwriting an existing value is allowed);
    * ``del_nodes`` — node ids to delete (cascades incident edges);
    * ``del_edges`` — (source, label, target) edges to delete;
    * ``del_attrs`` — (node id, attribute) pairs to delete.
    """

    nodes: Sequence[tuple[str, str, Mapping[str, Value]]] = ()
    edges: Sequence[tuple[str, str, str]] = ()
    attrs: Sequence[tuple[str, str, Value]] = ()
    del_nodes: Sequence[str] = ()
    del_edges: Sequence[tuple[str, str, str]] = ()
    del_attrs: Sequence[tuple[str, str]] = ()

    def touched_nodes(self) -> set[str]:
        """Every node id whose presence, attributes or incident edges
        are affected by the update (deleted ids included — they matter
        for retiring ledger entries even though they no longer exist
        after the batch)."""
        touched = {node_id for node_id, _, _ in self.nodes}
        touched |= {node_id for node_id, _, _ in self.attrs}
        for source, _, target in self.edges:
            touched.add(source)
            touched.add(target)
        touched |= set(self.del_nodes)
        touched |= {node_id for node_id, _ in self.del_attrs}
        for source, _, target in self.del_edges:
            touched.add(source)
            touched.add(target)
        return touched

    def is_empty(self) -> bool:
        return not (
            self.nodes
            or self.edges
            or self.attrs
            or self.del_nodes
            or self.del_edges
            or self.del_attrs
        )

    def size(self) -> int:
        """Number of individual operations in the batch."""
        return (
            len(self.nodes)
            + len(self.edges)
            + len(self.attrs)
            + len(self.del_nodes)
            + len(self.del_edges)
            + len(self.del_attrs)
        )


def _check_attr_name(name: object, offender: tuple) -> None:
    if not isinstance(name, str) or not name:
        raise GraphError(f"invalid attribute name in update {offender!r}")
    if name == ID_ATTRIBUTE:
        raise GraphError(
            f"'id' is the reserved node identity, not a settable attribute: {offender!r}"
        )


def validate_update(graph: Graph, update: GraphUpdate) -> None:
    """Check the whole batch against ``graph`` before any mutation.

    Raises :class:`GraphError` naming the first offending tuple; on
    return, applying the batch in the documented order cannot fail, so
    apply paths are atomic (nothing mutates on a bad batch).
    """
    # -- deletions, simulated in apply order ---------------------------
    deleted_edges: set[Edge] = set()
    for edge in update.del_edges:
        source, label, target = edge
        if edge in deleted_edges:
            raise GraphError(f"duplicate edge deletion in update: {edge!r}")
        if not graph.has_edge(source, label, target):
            raise GraphError(f"cannot delete missing edge {edge!r}")
        deleted_edges.add(edge)
    deleted_attrs: set[tuple[str, str]] = set()
    for node_id, attr in update.del_attrs:
        if (node_id, attr) in deleted_attrs:
            raise GraphError(f"duplicate attribute deletion in update: {(node_id, attr)!r}")
        if not graph.has_node(node_id):
            raise GraphError(
                f"attribute deletion references missing node: {(node_id, attr)!r}"
            )
        if not graph.node(node_id).has_attribute(attr):
            raise GraphError(f"cannot delete missing attribute {(node_id, attr)!r}")
        deleted_attrs.add((node_id, attr))
    deleted_nodes: set[str] = set()
    for node_id in update.del_nodes:
        if node_id in deleted_nodes:
            raise GraphError(f"duplicate node deletion in update: {node_id!r}")
        if not graph.has_node(node_id):
            raise GraphError(f"cannot delete missing node {node_id!r}")
        deleted_nodes.add(node_id)

    # -- additions, against the post-deletion node set -----------------
    added_nodes: set[str] = set()
    for entry in update.nodes:
        node_id, label, attrs = entry
        if not isinstance(node_id, str) or not node_id:
            raise GraphError(f"invalid node id in update {entry!r}")
        if not isinstance(label, str) or not label:
            raise GraphError(f"invalid node label in update {entry!r}")
        if node_id in added_nodes:
            raise GraphError(f"duplicate node addition in update: {node_id!r}")
        if graph.has_node(node_id) and node_id not in deleted_nodes:
            raise GraphError(
                f"node {node_id!r} already exists (node identity is immutable; "
                "delete it in the same batch to replace it)"
            )
        for name in dict(attrs or {}):
            _check_attr_name(name, entry)
        added_nodes.add(node_id)

    def node_exists_after(node_id: str) -> bool:
        if node_id in added_nodes:
            return True
        return graph.has_node(node_id) and node_id not in deleted_nodes

    for entry in update.attrs:
        node_id, name, _value = entry
        _check_attr_name(name, entry)
        if not node_exists_after(node_id):
            raise GraphError(f"attribute write references missing node: {entry!r}")
    for entry in update.edges:
        source, label, target = entry
        if not isinstance(label, str) or not label:
            raise GraphError(f"invalid edge label in update {entry!r}")
        if not node_exists_after(source):
            raise GraphError(f"edge source references missing node: {entry!r}")
        if not node_exists_after(target):
            raise GraphError(f"edge target references missing node: {entry!r}")


def apply_update_plain(graph: Graph, update: GraphUpdate) -> Graph:
    """Apply a (pre-validated or trusted) batch directly to the graph,
    in the documented order, with no index awareness.

    Callers wanting atomicity and index maintenance use
    :func:`repro.indexing.maintenance.apply_update_indexed` (or its
    alias :func:`repro.reasoning.incremental.apply_update`), which
    validates first and routes through the maintenance layer.
    """
    for source, label, target in update.del_edges:
        graph.remove_edge(source, label, target)
    for node_id, attr in update.del_attrs:
        graph.remove_attribute(node_id, attr)
    for node_id in update.del_nodes:
        graph.remove_node(node_id)
    for node_id, label, attrs in update.nodes:
        graph.add_node(node_id, label, attrs)
    for node_id, attr, value in update.attrs:
        graph.set_attribute(node_id, attr, value)
    for source, label, target in update.edges:
        graph.add_edge(source, label, target)
    return graph


__all__ = ["GraphUpdate", "apply_update_plain", "validate_update"]
