"""Fluent construction of graphs.

:class:`GraphBuilder` is sugar over :class:`repro.graph.Graph` for tests,
examples and workload generators:

>>> g = (GraphBuilder()
...      .node("a1", "album", title="Bleach")
...      .node("p1", "artist", name="Nirvana")
...      .edge("a1", "primary_artist", "p1")
...      .build())
>>> g.num_nodes
2
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.graph.graph import Graph, Value


class GraphBuilder:
    """Chainable graph construction; ``build()`` returns the graph."""

    def __init__(self) -> None:
        self._graph = Graph()

    def node(
        self,
        node_id: str,
        label: str,
        attrs: Mapping[str, Value] | None = None,
        **kw_attrs: Value,
    ) -> "GraphBuilder":
        self._graph.add_node(node_id, label, attrs, **kw_attrs)
        return self

    def nodes(self, label: str, *node_ids: str) -> "GraphBuilder":
        """Add several attribute-less nodes sharing one label."""
        for node_id in node_ids:
            self._graph.add_node(node_id, label)
        return self

    def edge(self, source: str, label: str, target: str) -> "GraphBuilder":
        self._graph.add_edge(source, label, target)
        return self

    def edges(self, label: str, *pairs: tuple[str, str]) -> "GraphBuilder":
        """Add several edges sharing one label."""
        for source, target in pairs:
            self._graph.add_edge(source, label, target)
        return self

    def undirected_edge(self, a: str, label: str, b: str) -> "GraphBuilder":
        """An undirected edge encoded as the two directed edges.

        Used throughout the reductions: the paper's graphs are directed,
        so an undirected instance graph H is encoded with both
        orientations of each edge.
        """
        self._graph.add_edge(a, label, b)
        self._graph.add_edge(b, label, a)
        return self

    def attr(self, node_id: str, name: str, value: Value) -> "GraphBuilder":
        self._graph.set_attribute(node_id, name, value)
        return self

    def build(self) -> Graph:
        return self._graph
