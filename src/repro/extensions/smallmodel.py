"""Bounded small-model search for GDCs and GED∨s (Theorems 8 and 9).

The Σp2 upper bounds of Section 7 rest on small-model properties: a
satisfiable GDC set has a model of size ≤ 4·|Σ|³; a non-implication has
a counterexample of size ≤ 2·|φ|·(|φ| + |Σ| + 1)².  This module
implements the corresponding search exactly, over the same normalized
space as :mod:`repro.reasoning.bruteforce` (see there for the proof
that quotients of the canonical graph suffice), extended with **order
regions** for the built-in predicates:

an attribute slot is ABSENT, a constant of Σ, a *fresh incomparable
token* (shared tokens are equal; tokens never satisfy order predicates
against numbers — needed to falsify e.g. ``x.A < 5 ∧ x.A > 5 ∧
x.A ≠ 5`` simultaneously), or a **gap value** ``(i, rank)`` denoting
the rank-th fresh value inside the i-th open interval between the
sorted numeric constants.  Over a dense domain this realizes every
order type that finitely many values can have relative to Σ's
constants — the "attribute value normalization" of the Theorem 8 proof.

**Pruning.**  The space is exponential by design (the problems are
Σp2-complete), but most of it is dead: a partially assigned candidate
is hopeless once some dependency has a match whose X is already
definitely true while Y is already definitely violated (no unassigned
slot can rescue it — assignments only *decide* more literals).  The
:class:`GroundRules` pruner precomputes, per quotient, every (match,
dependency) pair as a ground rule and kills dead branches during the
slot-by-slot assignment.  ``SearchStats`` counts candidates and pruned
branches — the work measures the Table 1 benchmarks report.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import ReductionError
from repro.graph.graph import Graph
from repro.matching.homomorphism import find_homomorphisms
from repro.patterns.labels import WILDCARD
from repro.reasoning.bruteforce import set_partitions

ABSENT = ("absent",)

#: Evaluation lattice for partially assigned candidates.
TRUE, FALSE_, UNDECIDED = True, False, None

Slot = tuple[str, str]


@dataclass
class SearchStats:
    """Work counters for one small-model search."""

    partitions: int = 0
    candidates: int = 0
    pruned: int = 0
    nodes_in_witness: int | None = None


@dataclass
class SearchSpace:
    """The normalized value space of a dependency set."""

    attributes: list[str]
    constants: list[object]
    numeric_constants: list[float] = field(init=False)

    def __post_init__(self) -> None:
        numeric = sorted(
            {
                float(c)
                for c in self.constants
                if isinstance(c, (int, float)) and not isinstance(c, bool)
            }
        )
        self.numeric_constants = numeric

    def slot_values(self, max_rank: int) -> list[tuple]:
        """All normalized values one slot can take."""
        values: list[tuple] = [ABSENT]
        for c in self.constants:
            values.append(("const", c))
        gaps = len(self.numeric_constants) + 1
        for gap in range(gaps):
            for rank in range(max_rank):
                values.append(("gap", gap, rank))
        for token in range(max_rank):
            values.append(("token", token))
        return values

    def concretize(self, value: tuple, max_rank: int):
        """A concrete Python value realizing a normalized choice."""
        kind = value[0]
        if kind == "const":
            return value[1]
        if kind == "token":
            return f"@token{value[1]}"
        gap, rank = value[1], value[2]
        consts = self.numeric_constants
        if not consts:
            return float(rank)
        if gap == 0:
            return consts[0] - 1.0 - rank
        if gap == len(consts):
            return consts[-1] + 1.0 + rank
        lo, hi = consts[gap - 1], consts[gap]
        return lo + (hi - lo) * (rank + 1) / (max_rank + 2)


def quotient_graphs(canonical: Graph) -> Iterator[tuple[Graph, dict[str, str]]]:
    """All label-compatible quotients of a canonical graph, with the
    node -> representative projection."""
    node_ids = sorted(canonical.node_ids)
    for partition in set_partitions(node_ids):
        projection: dict[str, str] = {}
        quotient = Graph()
        ok = True
        for block in partition:
            labels = {canonical.node(n).label for n in block}
            concrete = {l for l in labels if l != WILDCARD}
            if len(concrete) > 1:
                ok = False
                break
            rep = min(block)
            label = next(iter(concrete)) if concrete else WILDCARD
            quotient.add_node(rep, label)
            for member in block:
                projection[member] = rep
        if not ok:
            continue
        for source, label, target in canonical.edges:
            quotient.add_edge(projection[source], label, projection[target])
        yield quotient, projection


# ----------------------------------------------------------------------
# Ground-rule pruning
# ----------------------------------------------------------------------

#: A three-valued literal evaluator over partial assignments:
#: ``eval_fn(literal, match, lookup) -> True | False | None`` where
#: ``lookup(node_id, attr)`` returns ``(decided, concrete_value)`` with
#: ``concrete_value is ABSENT`` for assigned-absent slots.
LiteralEval = Callable


class GroundRules:
    """All (dependency, match) obligations of a fixed quotient graph."""

    def __init__(self, deps: Sequence, eval_fn: LiteralEval, disjunctive: bool):
        self._deps = list(deps)
        self._eval = eval_fn
        self._disjunctive = disjunctive
        self._rules: list[tuple[list, list]] = []

    def bind(self, quotient: Graph) -> "GroundRules":
        bound = GroundRules(self._deps, self._eval, self._disjunctive)
        for dep in self._deps:
            for match in find_homomorphisms(dep.pattern, quotient):
                x_items = [(l, dict(match)) for l in sorted(dep.X, key=str)]
                y_items = [(l, dict(match)) for l in sorted(dep.Y, key=str)]
                bound._rules.append((x_items, y_items))
        return bound

    def dead(self, lookup) -> bool:
        """Whether some ground rule is already definitely violated."""
        for x_items, y_items in self._rules:
            x_values = [self._eval(l, m, lookup) for l, m in x_items]
            if any(v is FALSE_ for v in x_values):
                continue
            if any(v is UNDECIDED for v in x_values):
                continue
            # X is definitely true.
            y_values = [self._eval(l, m, lookup) for l, m in y_items]
            if self._disjunctive:
                if y_values and any(v is not FALSE_ for v in y_values):
                    continue
                if not y_values:
                    return True  # empty disjunction under a true X
                return True  # all disjuncts definitely false
            if any(v is FALSE_ for v in y_values):
                return True
        return False


def search_small_model(
    canonical: Graph,
    space: SearchSpace,
    accept: Callable[[Graph, dict[str, str]], bool],
    max_nodes: int = 7,
    max_candidates: int | None = None,
    stats: SearchStats | None = None,
    pruner: GroundRules | None = None,
) -> Graph | None:
    """Search quotient × assignment space for a graph accepted by
    ``accept(candidate, projection)``.

    ``max_rank`` (the number of distinguishable fresh values per gap /
    token group) is the number of attribute slots — enough to realize
    any order type the slots can exhibit.  ``pruner`` (see
    :class:`GroundRules`) cuts branches whose partial assignment
    already violates a dependency.  Raises :class:`ReductionError` if
    the canonical graph exceeds ``max_nodes``, or if ``max_candidates``
    leaves are examined without covering the space.
    """
    if canonical.num_nodes > max_nodes:
        raise ReductionError(
            f"small-model search limited to {max_nodes} canonical nodes, "
            f"got {canonical.num_nodes}"
        )
    stats = stats if stats is not None else SearchStats()
    for quotient, projection in quotient_graphs(canonical):
        stats.partitions += 1
        slots: list[Slot] = [
            (node_id, attr)
            for node_id in sorted(quotient.node_ids)
            for attr in space.attributes
        ]
        max_rank = max(1, len(slots))
        values = space.slot_values(max_rank)
        ground = pruner.bind(quotient) if pruner is not None else None

        assignment: dict[Slot, object] = {}  # slot -> concrete value / ABSENT

        def lookup(node_id: str, attr: str):
            slot = (node_id, attr)
            if slot in assignment:
                return True, assignment[slot]
            if attr not in space.attributes or not quotient.has_node(node_id):
                # Attributes outside the space never exist on candidates.
                return True, ABSENT
            return False, None

        def recurse(index: int) -> Graph | None:
            if index == len(slots):
                stats.candidates += 1
                if max_candidates is not None and stats.candidates > max_candidates:
                    raise ReductionError(
                        f"small-model search exceeded {max_candidates} candidates"
                    )
                candidate = _materialize(quotient, assignment)
                if accept(candidate, projection):
                    stats.nodes_in_witness = candidate.num_nodes
                    return candidate
                return None
            slot = slots[index]
            tokens_used = max(
                (
                    v[1] + 1  # type: ignore[index]
                    for v in raw_assignment.values()
                    if isinstance(v, tuple) and v and v[0] == "token"
                ),
                default=0,
            )
            for value in values:
                if value[0] == "token" and value[1] > tokens_used:
                    continue  # restricted growth: kill token symmetry
                raw_assignment[slot] = value
                assignment[slot] = (
                    ABSENT if value == ABSENT else space.concretize(value, max_rank)
                )
                if ground is not None and ground.dead(lookup):
                    stats.pruned += 1
                else:
                    found = recurse(index + 1)
                    if found is not None:
                        return found
                del assignment[slot]
                del raw_assignment[slot]
            return None

        raw_assignment: dict[Slot, tuple] = {}
        witness = recurse(0)
        if witness is not None:
            return witness
    return None


def _materialize(quotient: Graph, assignment: dict[Slot, object]) -> Graph:
    graph = Graph()
    for node in quotient.nodes:
        attrs = {}
        for (node_id, attr), value in assignment.items():
            if node_id != node.id or value is ABSENT:
                continue
            attrs[attr] = value
        graph.add_node(node.id, node.label, attrs)
    for edge in quotient.edges:
        graph.add_edge(*edge)
    return graph


# ----------------------------------------------------------------------
# Three-valued literal evaluators (shared by the GDC / GED∨ pruners)
# ----------------------------------------------------------------------


def ged_literal_eval(literal, match, lookup):
    """GED literals over a partial assignment (True/False/None)."""
    from repro.deps.literals import ConstantLiteral, FALSE, IdLiteral, VariableLiteral

    if literal is FALSE:
        return FALSE_
    if isinstance(literal, IdLiteral):
        return match[literal.var1] == match[literal.var2]
    if isinstance(literal, ConstantLiteral):
        decided, value = lookup(match[literal.var], literal.attr)
        if not decided:
            return UNDECIDED
        return value is not ABSENT and value == literal.const
    if isinstance(literal, VariableLiteral):
        d1, v1 = lookup(match[literal.var1], literal.attr1)
        d2, v2 = lookup(match[literal.var2], literal.attr2)
        if not d1 or not d2:
            return UNDECIDED
        if v1 is ABSENT or v2 is ABSENT:
            return FALSE_
        return v1 == v2
    raise TypeError(f"unknown GED literal {literal!r}")


def gdc_literal_eval(literal, match, lookup):
    """GDC literals over a partial assignment (True/False/None)."""
    from repro.deps.literals import FALSE, IdLiteral
    from repro.extensions.gdc import ComparisonLiteral, VariableComparisonLiteral
    from repro.extensions.predicates import evaluate

    if literal is FALSE:
        return FALSE_
    if isinstance(literal, IdLiteral):
        return match[literal.var1] == match[literal.var2]
    if isinstance(literal, ComparisonLiteral):
        decided, value = lookup(match[literal.var], literal.attr)
        if not decided:
            return UNDECIDED
        if value is ABSENT:
            return FALSE_
        return evaluate(value, literal.op, literal.const)
    if isinstance(literal, VariableComparisonLiteral):
        d1, v1 = lookup(match[literal.var1], literal.attr1)
        d2, v2 = lookup(match[literal.var2], literal.attr2)
        if not d1 or not d2:
            return UNDECIDED
        if v1 is ABSENT or v2 is ABSENT:
            return FALSE_
        return evaluate(v1, literal.op, v2)
    raise TypeError(f"unknown GDC literal {literal!r}")
