"""Extensions of GEDs: built-in predicates (GDCs) and disjunction (GED∨s).

Section 7 of the paper; Theorems 8 and 9.
"""

from repro.extensions.gdc import (
    GDC,
    ComparisonLiteral,
    VariableComparisonLiteral,
    from_ged_literal,
    gdc_literal_holds,
    ged_as_gdc,
)
from repro.extensions.gdc_reasoning import (
    GDCViolation,
    domain_constraint_gdc,
    gdc_find_violations,
    gdc_implies,
    gdc_satisfiable,
    gdc_validates,
)
from repro.extensions.gedvee import GEDVee, ged_to_gedvees
from repro.extensions.gedvee_reasoning import (
    DisjunctiveChaseStats,
    VeeViolation,
    disjunctive_chase_satisfiable,
    domain_constraint_vee,
    vee_find_violations,
    vee_implies,
    vee_satisfiable_smallmodel,
    vee_validates,
)
from repro.extensions.orderconstraints import (
    Const,
    Constraint,
    OrderSolver,
    solve_constraints,
)
from repro.extensions.predicates import FLIP, NEGATE, OPERATORS, evaluate
from repro.extensions.io import (
    dependencies_from_json,
    dependencies_to_json,
    dependency_from_dict,
    dependency_to_dict,
)
from repro.extensions.tgd import (
    GraphTGD,
    TgdChaseResult,
    UnsatisfiedBody,
    attribute_existence_as_tgd,
    chase_with_tgds,
    tgd_find_unsatisfied,
    tgd_validates,
    weakly_acyclic,
)
from repro.extensions.smallmodel import (
    GroundRules,
    SearchSpace,
    SearchStats,
    gdc_literal_eval,
    ged_literal_eval,
    search_small_model,
)

__all__ = [
    "dependencies_from_json",
    "dependencies_to_json",
    "dependency_from_dict",
    "dependency_to_dict",
    "GraphTGD",
    "TgdChaseResult",
    "UnsatisfiedBody",
    "attribute_existence_as_tgd",
    "chase_with_tgds",
    "tgd_find_unsatisfied",
    "tgd_validates",
    "weakly_acyclic",
    "Const",
    "Constraint",
    "ComparisonLiteral",
    "DisjunctiveChaseStats",
    "FLIP",
    "GDC",
    "GDCViolation",
    "GEDVee",
    "GroundRules",
    "gdc_literal_eval",
    "ged_literal_eval",
    "NEGATE",
    "OPERATORS",
    "OrderSolver",
    "SearchSpace",
    "SearchStats",
    "VariableComparisonLiteral",
    "VeeViolation",
    "disjunctive_chase_satisfiable",
    "domain_constraint_gdc",
    "domain_constraint_vee",
    "evaluate",
    "from_ged_literal",
    "gdc_find_violations",
    "gdc_implies",
    "gdc_literal_holds",
    "gdc_satisfiable",
    "gdc_validates",
    "ged_as_gdc",
    "ged_to_gedvees",
    "search_small_model",
    "solve_constraints",
    "vee_find_violations",
    "vee_implies",
    "vee_satisfiable_smallmodel",
    "vee_validates",
]
