"""GEDs with disjunction — GED∨s (Section 7.2).

A GED∨ ψ has the same syntactic form Q[x̄](X → Y) as a GED, but Y is
interpreted *disjunctively*: a match satisfying X must satisfy at least
one literal of Y.  An empty Y is the empty disjunction, i.e. ``false``
(so forbidding constraints need no sugar here).

Every GED Q(X → Y) is expressible as the set {Q(X → {l}) | l ∈ Y} of
GED∨s; the converse fails — e.g. the Example 10 domain constraint
``Q_e[x](∅ → x.A = 0 ∨ x.A = 1)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.deps.ged import GED
from repro.deps.literals import FALSE, Literal, check_literal
from repro.errors import DependencyError
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.reasoning.validation import literal_holds


class GEDVee:
    """A GED with disjunctive Y: Q[x̄](⋀X → ⋁Y)."""

    def __init__(
        self,
        pattern: Pattern,
        X: Iterable[Literal] = (),
        Y: Iterable[Literal] = (),
        name: str | None = None,
    ):
        self.pattern = pattern
        self.X = frozenset(X)
        self.Y = frozenset(Y)
        self.name = name
        for literal in self.X | self.Y:
            check_literal(literal, pattern.variables)
        if FALSE in self.X:
            raise DependencyError("'false' may only appear in Y")
        if FALSE in self.Y and len(self.Y) > 1:
            # false is absorbed by any disjunction; normalize it away.
            self.Y = self.Y - {FALSE}

    @property
    def is_forbidding(self) -> bool:
        """Empty Y (or Y = {false}): the empty disjunction."""
        return not self.Y or self.Y == frozenset({FALSE})

    def satisfied_by(self, graph: Graph, match: Mapping[str, str]) -> bool:
        """h(x̄) |= X → ⋁Y on a concrete graph."""
        if not all(literal_holds(graph, l, match) for l in self.X):
            return True
        return any(literal_holds(graph, l, match) for l in self.Y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GEDVee):
            return NotImplemented
        return self.pattern == other.pattern and self.X == other.X and self.Y == other.Y

    def __hash__(self) -> int:
        return hash(("vee", self.pattern, self.X, self.Y))

    def __str__(self) -> str:
        x = " ∧ ".join(sorted(str(l) for l in self.X)) or "∅"
        y = " ∨ ".join(sorted(str(l) for l in self.Y)) or "false"
        return f"{self.name or 'GED∨'}: Q[{', '.join(self.pattern.variables)}]({x} → {y})"


def ged_to_gedvees(ged: GED) -> list[GEDVee]:
    """The GED Q(X → Y) as the equivalent set {Q(X → {l})}.

    A forbidding GED maps to the single empty-disjunction GED∨.
    """
    if not ged.Y or ged.is_forbidding:
        return [GEDVee(ged.pattern, ged.X, [], name=ged.name)]
    return [
        GEDVee(ged.pattern, ged.X, [l], name=ged.name)
        for l in sorted(ged.Y, key=str)
        if l is not FALSE
    ]
