"""Graph denial constraints — GDCs (Section 7.1).

A GDC φ = Q[x̄](X → Y) generalizes a GED by allowing literals

* ``x.A ⊕ c``  and  ``x.A ⊕ y.B``  for ⊕ ∈ {=, ≠, <, >, ≤, ≥}, plus
* ``x.id = y.id``  (ids still compare only by equality), plus
* ``false`` in Y (so denial constraints of [3] are expressible).

GEDs are the special case where every ⊕ is ``=``.  Validation semantics
extends Section 3 pointwise: a comparison literal holds iff both
attributes exist and the predicate evaluates to true.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Union

from repro.deps.ged import GED
from repro.deps.literals import (
    FALSE,
    ConstantLiteral,
    IdLiteral,
    Literal,
    VariableLiteral,
)
from repro.errors import DependencyError, LiteralError
from repro.extensions.predicates import NEGATE, check_operator, evaluate
from repro.graph.graph import ID_ATTRIBUTE, Graph, Value
from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class ComparisonLiteral:
    """``x.A ⊕ c`` — a constant comparison with a built-in predicate."""

    var: str
    attr: str
    op: str
    const: Value

    def __post_init__(self) -> None:
        check_operator(self.op)
        if self.attr == ID_ATTRIBUTE:
            raise LiteralError("comparison literals may not use the 'id' attribute")

    @property
    def variables(self) -> frozenset[str]:
        return frozenset({self.var})

    def negated(self) -> "ComparisonLiteral":
        return ComparisonLiteral(self.var, self.attr, NEGATE[self.op], self.const)

    def __str__(self) -> str:
        return f"{self.var}.{self.attr} {self.op} {self.const!r}"


@dataclass(frozen=True)
class VariableComparisonLiteral:
    """``x.A ⊕ y.B`` — an attribute comparison with a built-in predicate."""

    var1: str
    attr1: str
    op: str
    var2: str
    attr2: str

    def __post_init__(self) -> None:
        check_operator(self.op)
        if ID_ATTRIBUTE in (self.attr1, self.attr2):
            raise LiteralError("comparison literals may not use the 'id' attribute")

    @property
    def variables(self) -> frozenset[str]:
        return frozenset({self.var1, self.var2})

    def negated(self) -> "VariableComparisonLiteral":
        return VariableComparisonLiteral(
            self.var1, self.attr1, NEGATE[self.op], self.var2, self.attr2
        )

    def __str__(self) -> str:
        return f"{self.var1}.{self.attr1} {self.op} {self.var2}.{self.attr2}"


GDCLiteral = Union[
    ComparisonLiteral, VariableComparisonLiteral, ConstantLiteral,
    VariableLiteral, IdLiteral, type(FALSE),
]


def from_ged_literal(literal: Literal):
    """View a GED literal as a GDC comparison literal (⊕ = '=')."""
    if isinstance(literal, ConstantLiteral):
        return ComparisonLiteral(literal.var, literal.attr, "=", literal.const)
    if isinstance(literal, VariableLiteral):
        return VariableComparisonLiteral(
            literal.var1, literal.attr1, "=", literal.var2, literal.attr2
        )
    return literal  # id literals and FALSE are shared


class GDC:
    """A graph denial constraint Q[x̄](X → Y) with built-in predicates."""

    def __init__(
        self,
        pattern: Pattern,
        X: Iterable = (),
        Y: Iterable = (),
        name: str | None = None,
    ):
        self.pattern = pattern
        self.X = frozenset(from_ged_literal(l) for l in X)
        self.Y = frozenset(from_ged_literal(l) for l in Y)
        self.name = name
        for literal in self.X | self.Y:
            self._check(literal)
        if FALSE in self.X:
            raise DependencyError("'false' may only appear in Y")

    def _check(self, literal) -> None:
        if literal is FALSE:
            return
        if not isinstance(
            literal, (ComparisonLiteral, VariableComparisonLiteral, IdLiteral)
        ):
            raise LiteralError(f"not a GDC literal: {literal!r}")
        unknown = literal.variables - set(self.pattern.variables)
        if unknown:
            raise LiteralError(
                f"literal {literal} uses variables {sorted(unknown)} not in the pattern"
            )

    @property
    def is_forbidding(self) -> bool:
        return FALSE in self.Y

    @property
    def uses_order_predicates(self) -> bool:
        """Whether any literal uses a non-equality predicate."""
        for literal in self.X | self.Y:
            op = getattr(literal, "op", "=")
            if op != "=":
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GDC):
            return NotImplemented
        return self.pattern == other.pattern and self.X == other.X and self.Y == other.Y

    def __hash__(self) -> int:
        return hash((self.pattern, self.X, self.Y))

    def __str__(self) -> str:
        x = " ∧ ".join(sorted(str(l) for l in self.X)) or "∅"
        y = " ∧ ".join(sorted(str(l) for l in self.Y)) or "∅"
        return f"{self.name or 'GDC'}: Q[{', '.join(self.pattern.variables)}]({x} → {y})"


def ged_as_gdc(ged: GED) -> GDC:
    """Every GED is a GDC (⊕ restricted to '=')."""
    return GDC(ged.pattern, ged.X, ged.Y, name=ged.name)


def gdc_literal_holds(graph: Graph, literal, match: Mapping[str, str]) -> bool:
    """h(x̄) |= l for GDC literals on a concrete graph."""
    if literal is FALSE:
        return False
    if isinstance(literal, IdLiteral):
        return match[literal.var1] == match[literal.var2]
    if isinstance(literal, ComparisonLiteral):
        node = graph.node(match[literal.var])
        if not node.has_attribute(literal.attr):
            return False
        return evaluate(node.get(literal.attr), literal.op, literal.const)
    if isinstance(literal, VariableComparisonLiteral):
        node1 = graph.node(match[literal.var1])
        node2 = graph.node(match[literal.var2])
        if not node1.has_attribute(literal.attr1) or not node2.has_attribute(literal.attr2):
            return False
        return evaluate(
            node1.get(literal.attr1), literal.op, node2.get(literal.attr2)
        )
    raise LiteralError(f"unknown GDC literal {literal!r}")
