"""Built-in predicates for GDCs (Section 7.1).

GDC literals compare attribute terms and constants with
``=, ≠, <, >, ≤, ≥``.  Comparisons are evaluated over a totally ordered
dense domain; we use Python's numeric ordering for numbers and
lexicographic ordering for strings, refusing (evaluating to False) the
order predicates across incomparable types — equality and inequality
are defined for every pair of values, as in SQL three-valued practice
collapsed to two values.
"""

from __future__ import annotations

from repro.errors import ConstraintError

#: The built-in predicates of Section 7.1.
OPERATORS = ("=", "!=", "<", ">", "<=", ">=")

#: op -> flipped op (for normalizing ``c ⊕ x.A`` to ``x.A ⊕' c``).
FLIP = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}

#: op -> negated op (for branching on "this literal is violated").
NEGATE = {"=": "!=", "!=": "=", "<": ">=", ">": "<=", "<=": ">", ">=": "<"}


def check_operator(op: str) -> None:
    if op not in OPERATORS:
        raise ConstraintError(f"unknown built-in predicate {op!r}")


def comparable(a: object, b: object) -> bool:
    """Whether the *order* predicates are defined between two values."""
    numeric = (int, float)
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, numeric) and isinstance(b, numeric):
        return True
    return type(a) is type(b) and isinstance(a, str)


def evaluate(a: object, op: str, b: object) -> bool:
    """``a ⊕ b`` on concrete values."""
    check_operator(op)
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    if not comparable(a, b):
        return False
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    return a >= b
