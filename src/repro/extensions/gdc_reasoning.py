"""Reasoning about GDCs (Theorem 8).

* **Validation** is coNP-complete, same as GEDs: enumerate matches,
  evaluate the built-in predicates — :func:`gdc_find_violations`.
* **Satisfiability** is Σp2-complete; :func:`gdc_satisfiable` runs the
  small-model search of :mod:`repro.extensions.smallmodel` over the
  quotients of G_Σ (models of size ≤ 4·|Σ|³ suffice; quotients of G_Σ
  with normalized values realize them — see the module docstrings).
  Strong satisfiability's "every pattern matches" half holds for every
  quotient by construction, so the acceptance test is validation alone.
* **Implication** is Πp2-complete; :func:`gdc_implies` searches for a
  small counterexample: a quotient of G_Q satisfying Σ in which φ's
  projection match satisfies X but violates Y.

The searches also power the Theorem 8 benchmarks: ``SearchStats``
counts candidates, making the Σp2 blowup measurable against the
flat-cost validation column of Table 1.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.chase.canonical import canonical_graph, canonical_graph_of_sigma
from repro.extensions.gdc import (
    GDC,
    ComparisonLiteral,
    VariableComparisonLiteral,
    gdc_literal_holds,
)
from repro.extensions.smallmodel import (
    GroundRules,
    SearchSpace,
    SearchStats,
    gdc_literal_eval,
    search_small_model,
)
from repro.deps.literals import FALSE
from repro.graph.graph import Graph
from repro.matching.homomorphism import find_homomorphisms


@dataclass(frozen=True)
class GDCViolation:
    gdc: GDC
    match: tuple[tuple[str, str], ...]
    failed: tuple

    @property
    def assignment(self) -> dict[str, str]:
        return dict(self.match)


def gdc_find_violations(
    graph: Graph, sigma: Iterable[GDC], limit: int | None = None
) -> list[GDCViolation]:
    """All (up to ``limit``) violations of a GDC set in a graph."""
    violations: list[GDCViolation] = []
    for gdc in sigma:
        for match in find_homomorphisms(gdc.pattern, graph):
            if not all(gdc_literal_holds(graph, l, match) for l in gdc.X):
                continue
            failed = tuple(
                l for l in sorted(gdc.Y, key=str) if not gdc_literal_holds(graph, l, match)
            )
            if failed:
                violations.append(GDCViolation(gdc, tuple(sorted(match.items())), failed))
                if limit is not None and len(violations) >= limit:
                    return violations
    return violations


def gdc_validates(graph: Graph, sigma: Iterable[GDC]) -> bool:
    """G |= Σ for GDCs — the (coNP) validation problem of Theorem 8."""
    return not gdc_find_violations(graph, sigma, limit=1)


def _search_space(sigma: Sequence[GDC], extra: Sequence[GDC] = ()) -> SearchSpace:
    attributes: set[str] = set()
    constants: set[object] = set()
    for gdc in list(sigma) + list(extra):
        for literal in gdc.X | gdc.Y:
            if isinstance(literal, ComparisonLiteral):
                attributes.add(literal.attr)
                constants.add(literal.const)
            elif isinstance(literal, VariableComparisonLiteral):
                attributes.add(literal.attr1)
                attributes.add(literal.attr2)
    return SearchSpace(sorted(attributes), sorted(constants, key=repr))


def gdc_satisfiable(
    sigma: Sequence[GDC],
    max_nodes: int = 7,
    max_candidates: int | None = None,
    stats: SearchStats | None = None,
) -> tuple[bool, Graph | None]:
    """Σp2 satisfiability by small-model search.

    Returns ``(satisfiable, witness_model_or_None)``.
    """
    sigma = list(sigma)
    if not sigma:
        g = Graph()
        g.add_node("n0", "anything")
        return True, g
    canonical, _ = canonical_graph_of_sigma(_as_geds_for_canonical(sigma))
    space = _search_space(sigma)
    witness = search_small_model(
        canonical,
        space,
        accept=lambda candidate, _proj: gdc_validates(candidate, sigma),
        max_nodes=max_nodes,
        max_candidates=max_candidates,
        stats=stats,
        pruner=GroundRules(sigma, gdc_literal_eval, disjunctive=False),
    )
    return witness is not None, witness


def gdc_implies(
    sigma: Sequence[GDC],
    phi: GDC,
    max_nodes: int = 7,
    max_candidates: int | None = None,
    stats: SearchStats | None = None,
) -> tuple[bool, Graph | None]:
    """Πp2 implication by counterexample search.

    Returns ``(implied, counterexample_or_None)`` — the counterexample
    satisfies Σ but violates φ.
    """
    sigma = list(sigma)
    canonical = canonical_graph(phi.pattern)
    space = _search_space(sigma, extra=[phi])

    def is_counterexample(candidate: Graph, _projection) -> bool:
        if not gdc_validates(candidate, sigma):
            return False
        return not gdc_validates(candidate, [phi])

    counterexample = search_small_model(
        canonical,
        space,
        accept=is_counterexample,
        max_nodes=max_nodes,
        max_candidates=max_candidates,
        stats=stats,
        pruner=GroundRules(sigma, gdc_literal_eval, disjunctive=False),
    )
    return counterexample is None, counterexample


def _as_geds_for_canonical(sigma: Sequence[GDC]):
    """Adapter: canonical_graph_of_sigma only reads ``.pattern``."""

    class _PatternOnly:
        def __init__(self, pattern):
            self.pattern = pattern

    return [_PatternOnly(gdc.pattern) for gdc in sigma]


def domain_constraint_gdc(label: str, attr: str, values: Sequence[object]) -> list[GDC]:
    """Example 9: enforce ``attr ∈ values`` on every ``label`` node.

    φ1 (a GED): every node has the attribute; φ2: any other value is
    forbidden.
    """
    from repro.patterns.pattern import Pattern

    pattern = Pattern({"x": label})
    phi1 = GDC(
        pattern,
        [],
        [VariableComparisonLiteral("x", attr, "=", "x", attr)],
        name=f"{label}.{attr} exists",
    )
    phi2 = GDC(
        pattern,
        [ComparisonLiteral("x", attr, "!=", v) for v in values],
        [FALSE],
        name=f"{label}.{attr} in {list(values)}",
    )
    return [phi1, phi2]
