"""Graph tuple-generating dependencies (GTGDs).

Section 9 of the paper names TGDs as the next practical form of graph
dependency to study; Section 3 already notes that GEDs express a
*limited* TGD flavor (attribute generation via ``Q[x](∅ → x.A = x.A)``).
This module implements the full edge/node-generating form:

    σ = Q[x̄], X  ⟶  ∃ z̄ (H[x̄, z̄], Y)

* **body**: a pattern Q[x̄] plus a condition X (literals of x̄ — the same
  shape as a GED body);
* **head**: fresh existential variables z̄ with labels, head edges over
  x̄ ∪ z̄, and head literals Y over x̄ ∪ z̄.

G |= σ iff every match h of Q with h |= X extends to a homomorphism h'
on x̄ ∪ z̄ such that every head edge is in G and h' |= Y.

Reasoning about unrestricted TGDs is undecidable (the paper cites
[8, 26]); what *is* implementable and useful is

* :func:`tgd_validates` — the validation check (model checking is
  decidable; for relational TGDs it is Πp2-complete [36], and the same
  certificate structure — a body match plus a head-extension search —
  drives our implementation);
* :func:`weakly_acyclic` — the classical syntactic termination
  condition, adapted to graph labels as positions: the restricted
  chase with a weakly acyclic set terminates on every input;
* :func:`chase_with_tgds` — the restricted chase interleaving TGD
  steps (create missing head structure, inventing labeled-null nodes)
  with the Section 4 GED chase (merge/equalize), the standard
  EGD+TGD interaction from data exchange [17].
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.chase.engine import chase
from repro.deps.ged import GED
from repro.deps.literals import (
    ConstantLiteral,
    IdLiteral,
    Literal,
    VariableLiteral,
    check_literal,
)
from repro.errors import DependencyError
from repro.graph.graph import Graph
from repro.matching.homomorphism import find_homomorphisms
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern
from repro.reasoning.validation import literal_holds


class GraphTGD:
    """A graph tuple-generating dependency.

    Parameters
    ----------
    body:
        the pattern Q[x̄] (topological scope, as for GEDs).
    X:
        body condition literals over x̄.
    head_nodes:
        ``fresh variable -> label`` for the existential variables z̄
        (labels may not be wildcard: a created node needs a concrete
        label).  Must be disjoint from x̄.
    head_edges:
        edges over x̄ ∪ z̄ that the head asserts (labels may not be
        wildcard — the chase must know what to create).
    Y:
        head literals over x̄ ∪ z̄ (id literals over z̄ are disallowed:
        equating an invented node with anything is the GED chase's
        job, not the head's).
    """

    def __init__(
        self,
        body: Pattern,
        X: Iterable[Literal] = (),
        head_nodes: Mapping[str, str] | None = None,
        head_edges: Iterable[tuple[str, str, str]] = (),
        Y: Iterable[Literal] = (),
        name: str | None = None,
    ):
        self.body = body
        self.X: frozenset[Literal] = frozenset(X)
        self.head_nodes: dict[str, str] = dict(head_nodes or {})
        self.head_edges: tuple[tuple[str, str, str], ...] = tuple(head_edges)
        self.Y: frozenset[Literal] = frozenset(Y)
        self.name = name

        for literal in self.X:
            check_literal(literal, body.variables)
        overlap = set(self.head_nodes) & set(body.variables)
        if overlap:
            raise DependencyError(
                f"existential variables must be fresh; {sorted(overlap)} are body variables"
            )
        for variable, label in self.head_nodes.items():
            if label == WILDCARD:
                raise DependencyError(
                    f"existential variable {variable!r} needs a concrete label"
                )
        scope = set(body.variables) | set(self.head_nodes)
        for source, label, target in self.head_edges:
            if source not in scope or target not in scope:
                raise DependencyError(
                    f"head edge ({source}, {label}, {target}) uses unknown variables"
                )
            if label == WILDCARD:
                raise DependencyError("head edge labels may not be wildcard")
        for literal in self.Y:
            check_literal(literal, scope)
            if isinstance(literal, IdLiteral):
                raise DependencyError(
                    "id literals are not allowed in TGD heads; use a GED"
                )
        if not self.head_nodes and not self.head_edges and not self.Y:
            raise DependencyError("a TGD must have a non-empty head")

    @property
    def existential_variables(self) -> tuple[str, ...]:
        return tuple(self.head_nodes)

    @property
    def is_full(self) -> bool:
        """A *full* TGD has no existential variables (always terminating)."""
        return not self.head_nodes

    def head_pattern(self) -> Pattern:
        """The head as a pattern over x̄ ∪ z̄ (body labels on body
        variables, head labels on fresh ones; body edges are *not*
        included — the head asserts only its own structure)."""
        nodes = {v: self.body.label_of(v) for v in self.body.variables}
        nodes.update(self.head_nodes)
        return Pattern(nodes, self.head_edges, variables=list(nodes))

    def __str__(self) -> str:
        x = " ∧ ".join(sorted(str(l) for l in self.X)) or "∅"
        parts = [f"({s})-[{l}]->({t})" for s, l, t in self.head_edges]
        parts += sorted(str(l) for l in self.Y)
        z = ", ".join(self.head_nodes)
        head = (f"∃{z} " if z else "") + (" ∧ ".join(parts) or "∅")
        return f"{self.name or 'GTGD'}: Q[{', '.join(self.body.variables)}]({x} → {head})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self}>"


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UnsatisfiedBody:
    """A body match with no head extension — a TGD violation witness."""

    tgd: GraphTGD
    match: tuple[tuple[str, str], ...]

    @property
    def assignment(self) -> dict[str, str]:
        return dict(self.match)


def _head_extension(
    graph: Graph, tgd: GraphTGD, body_match: Mapping[str, str]
) -> dict[str, str] | None:
    """An extension of ``body_match`` witnessing the head, or None."""
    head = tgd.head_pattern()
    fixed = {v: body_match[v] for v in tgd.body.variables}
    for match in find_homomorphisms(head, graph, fixed=fixed):
        if all(literal_holds(graph, literal, match) for literal in tgd.Y):
            return dict(match)
    return None


def tgd_find_unsatisfied(
    graph: Graph, tgds: Sequence[GraphTGD], limit: int | None = None
) -> list[UnsatisfiedBody]:
    """All (up to ``limit``) body matches lacking a head extension."""
    witnesses: list[UnsatisfiedBody] = []
    for tgd in tgds:
        for match in find_homomorphisms(tgd.body, graph):
            if not all(literal_holds(graph, l, match) for l in tgd.X):
                continue
            if _head_extension(graph, tgd, match) is None:
                witnesses.append(UnsatisfiedBody(tgd, tuple(sorted(match.items()))))
                if limit is not None and len(witnesses) >= limit:
                    return witnesses
    return witnesses


def tgd_validates(graph: Graph, tgds: Sequence[GraphTGD]) -> bool:
    """G |= every TGD in the set."""
    return not tgd_find_unsatisfied(graph, tgds, limit=1)


# ----------------------------------------------------------------------
# Weak acyclicity (termination of the restricted chase)
# ----------------------------------------------------------------------
def weakly_acyclic(tgds: Sequence[GraphTGD]) -> bool:
    """The classical weak-acyclicity test with node labels as positions.

    Build a graph on labels: for every TGD, for every body variable x
    (position = its label) that also appears in the head,

    * add a normal edge from x's label to the label of every head
      position where x occurs (here: x keeps its own label — identity
      edge, irrelevant), and
    * add a **special** edge from x's label to the label of every
      existential variable in the same head.

    The set is weakly acyclic iff no cycle goes through a special edge;
    then every restricted-chase sequence terminates on every input.
    Wildcard body labels depend on every label, so they conservatively
    count as predecessors of all labels appearing in the rule set.
    """
    labels: set[str] = set()
    for tgd in tgds:
        labels |= set(tgd.body.labels.values())
        labels |= set(tgd.head_nodes.values())
    labels.discard(WILDCARD)

    normal: set[tuple[str, str]] = set()
    special: set[tuple[str, str]] = set()
    for tgd in tgds:
        body_labels = set(tgd.body.labels.values())
        sources = labels if WILDCARD in body_labels else body_labels
        head_labels = set(tgd.head_nodes.values())
        for source in sources:
            for target in body_labels - {WILDCARD}:
                normal.add((source, target))
            for target in head_labels:
                special.add((source, target))

    # A cycle through a special edge exists iff some special edge (u, v)
    # has a path v ->* u in the combined graph.
    combined: dict[str, set[str]] = {label: set() for label in labels}
    for source, target in normal | special:
        combined.setdefault(source, set()).add(target)

    def reachable(start: str, goal: str) -> bool:
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            if current == goal:
                return True
            for nxt in combined.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    return not any(reachable(target, source) for source, target in special)


# ----------------------------------------------------------------------
# The restricted chase with TGDs (+ optional GEDs)
# ----------------------------------------------------------------------
@dataclass
class TgdChaseResult:
    """Result of the TGD (+GED) chase.

    ``terminated`` — a fixpoint was reached within the round budget.
    ``consistent`` — the interleaved GED chase never hit a conflict
    (vacuously true without GEDs).  ``graph`` — the final instance,
    containing labeled-null nodes named ``_null<N>`` for invented
    entities.
    """

    terminated: bool
    consistent: bool
    graph: Graph
    invented_nodes: list[str] = field(default_factory=list)
    rounds: int = 0
    reason: str | None = None

    def __bool__(self) -> bool:
        return self.terminated and self.consistent


def chase_with_tgds(
    graph: Graph,
    tgds: Sequence[GraphTGD],
    geds: Sequence[GED] = (),
    max_rounds: int = 100,
) -> TgdChaseResult:
    """The restricted chase: repair unsatisfied TGD bodies by creating
    head structure, then enforce GEDs (Section 4 chase), until fixpoint.

    The chase is *restricted*: a TGD fires only for body matches with
    no existing head extension, so satisfied bodies never generate
    duplicates.  With ``weakly_acyclic(tgds)`` the loop provably
    reaches a fixpoint; otherwise ``max_rounds`` bounds it and a
    non-terminating run is reported with ``terminated=False``.
    """
    current = graph.copy()
    invented: list[str] = []
    null_counter = itertools.count(
        sum(1 for n in graph.node_ids if n.startswith("_null"))
    )

    for round_index in range(1, max_rounds + 1):
        unsatisfied = tgd_find_unsatisfied(current, tgds)
        if not unsatisfied:
            return TgdChaseResult(True, True, current, invented, round_index - 1)
        for witness in unsatisfied:
            match = witness.assignment
            # Re-check: earlier firings this round may have satisfied it.
            if _head_extension(current, witness.tgd, match) is not None:
                continue
            _fire(current, witness.tgd, match, invented, null_counter)
        if geds:
            result = chase(current, list(geds))
            if not result.consistent:
                return TgdChaseResult(
                    False, False, current, invented, round_index, result.reason
                )
            current = result.graph
    still_unsatisfied = bool(tgd_find_unsatisfied(current, tgds, limit=1))
    return TgdChaseResult(
        not still_unsatisfied, True, current, invented, max_rounds,
        "round budget exhausted" if still_unsatisfied else None,
    )


def _fire(
    graph: Graph,
    tgd: GraphTGD,
    match: dict[str, str],
    invented: list[str],
    null_counter,
) -> None:
    """One TGD firing: invent nulls for z̄, add head edges, enforce Y."""
    extension = dict(match)
    for variable, label in tgd.head_nodes.items():
        node_id = f"_null{next(null_counter)}"
        graph.add_node(node_id, label)
        extension[variable] = node_id
        invented.append(node_id)
    for source, label, target in tgd.head_edges:
        graph.add_edge(extension[source], label, extension[target])
    for literal in sorted(tgd.Y, key=str):
        _enforce_head_literal(graph, literal, extension)


def _enforce_head_literal(
    graph: Graph, literal: Literal, extension: Mapping[str, str]
) -> None:
    if isinstance(literal, ConstantLiteral):
        graph.set_attribute(extension[literal.var], literal.attr, literal.const)
        return
    if isinstance(literal, VariableLiteral):
        node1, node2 = extension[literal.var1], extension[literal.var2]
        n1, n2 = graph.node(node1), graph.node(node2)
        if n1.has_attribute(literal.attr1):
            graph.set_attribute(node2, literal.attr2, n1.get(literal.attr1))
        elif n2.has_attribute(literal.attr2):
            graph.set_attribute(node1, literal.attr1, n2.get(literal.attr2))
        else:
            # Labeled null value: both attributes exist and agree.
            placeholder = f"_nullv_{literal.attr1}_{node1}"
            graph.set_attribute(node1, literal.attr1, placeholder)
            graph.set_attribute(node2, literal.attr2, placeholder)
        return
    raise DependencyError(f"unsupported head literal {literal!r}")


def attribute_existence_as_tgd(label: str, attr: str, variable: str = "x") -> GraphTGD:
    """The Section 3 observation as an explicit TGD: every ``label``
    node has an ``attr`` attribute (GEDs express this as
    ``Q[x](∅ → x.A = x.A)``; as a TGD the head literal is the same
    self-equality)."""
    body = Pattern({variable: label})
    return GraphTGD(
        body,
        Y=[VariableLiteral(variable, attr, variable, attr)],
        name=f"exists-{label}.{attr}",
    )


__all__ = [
    "GraphTGD",
    "TgdChaseResult",
    "UnsatisfiedBody",
    "attribute_existence_as_tgd",
    "chase_with_tgds",
    "tgd_find_unsatisfied",
    "tgd_validates",
    "weakly_acyclic",
]
