"""A point-algebra solver for conjunctions of order constraints.

The Σp2 upper bounds of Theorems 8/9 rest on *attribute value
normalization*: whether a conjunction of constraints

    t1 ⊕ t2      (⊕ ∈ {=, ≠, <, >, ≤, ≥})

over variables (attribute terms) and rational constants is satisfiable
depends only on the order type of the constants, not on their exact
values.  This module decides such conjunctions — and produces witness
values — over a **dense unbounded** ordered domain (the rationals;
witness values are floats):

1. normalize ``>``/``≥`` to ``<``/``≤`` and fold ``=`` into a
   union-find; reject immediately contradictory constant facts;
2. collapse the strongly connected components of the ≤-graph (everything
   in a ≤-cycle is equal); a strict edge inside an SCC is UNSAT;
3. propagate constant bounds through the condensation: each class gets
   an interval [lo, hi] with open/closed ends; an empty interval is
   UNSAT; a point interval pins the class to that constant (iterate,
   since pinning can create new constant facts);
4. finally check ≠: two pinned-equal classes, a class ≠-ing itself, or a
   ≠ between classes forced equal are UNSAT.  Over a dense domain,
   everything else is realizable: assign values along a topological
   order, nudging within open intervals to keep ≠-pairs apart.

This is complete for the point algebra with constants over dense orders
(the classic result for PA + ≠; the test suite cross-checks against a
brute-force grid search).
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro.chase.unionfind import UnionFind
from repro.errors import ConstraintError
from repro.extensions.predicates import FLIP, check_operator

Term = Hashable  # variables are arbitrary hashables; constants are numbers


@dataclass(frozen=True)
class Constraint:
    """``lhs ⊕ rhs`` where each side is a variable term or a constant.

    Constants must be wrapped as ``Const(value)`` so that numeric-valued
    variable names cannot collide with constants.
    """

    lhs: Term
    op: str
    rhs: Term


@dataclass(frozen=True)
class Const:
    value: float

    def __post_init__(self) -> None:
        if isinstance(self.value, bool) or not isinstance(self.value, (int, float)):
            raise ConstraintError(f"order constants must be numeric, got {self.value!r}")


def _is_const(term: Term) -> bool:
    return isinstance(term, Const)


class OrderSolver:
    """Decide a conjunction of point-algebra constraints; build a witness."""

    def __init__(self, constraints: Iterable[Constraint]):
        self.constraints = list(constraints)
        for c in self.constraints:
            check_operator(c.op)

    # ------------------------------------------------------------------
    def solve(self) -> dict[Term, float] | None:
        """A satisfying assignment ``variable -> float`` or None (UNSAT).

        Constants are included in the assignment (mapped to themselves)
        for convenience.
        """
        uf = UnionFind()
        le_edges: set[tuple[Term, Term]] = set()  # a ≤ b
        lt_edges: set[tuple[Term, Term]] = set()  # a < b
        ne_pairs: set[tuple[Term, Term]] = set()
        terms: set[Term] = set()

        for c in self.constraints:
            lhs, op, rhs = c.lhs, c.op, c.rhs
            if _is_const(lhs) and not _is_const(rhs):
                lhs, rhs, op = rhs, lhs, FLIP[op]
            terms.add(lhs)
            terms.add(rhs)
            if _is_const(lhs) and _is_const(rhs):
                from repro.extensions.predicates import evaluate

                if not evaluate(lhs.value, op, rhs.value):
                    return None
                continue
            if op == "=":
                uf.union(lhs, rhs)
            elif op == "!=":
                ne_pairs.add((lhs, rhs))
            elif op == "<":
                lt_edges.add((lhs, rhs))
            elif op == "<=":
                le_edges.add((lhs, rhs))
            elif op == ">":
                lt_edges.add((rhs, lhs))
            else:  # >=
                le_edges.add((rhs, lhs))

        for term in terms:
            uf.add(term)

        # Distinct constants must stay distinct.
        constants = [t for t in terms if _is_const(t)]
        for a, b in itertools.combinations(constants, 2):
            if a.value != b.value and uf.same(a, b):
                return None

        # Iterate: collapse ≤-SCCs, propagate constant bounds, pin point
        # intervals, until fixpoint or contradiction.
        for _ in range(len(terms) + len(self.constraints) + 2):
            changed, ok = self._collapse_and_pin(uf, le_edges, lt_edges, terms)
            if not ok:
                return None
            if not changed:
                break

        # ≠ checks on the final classes.
        for a, b in ne_pairs:
            if uf.same(a, b):
                return None
        for a, b in itertools.combinations(constants, 2):
            if a.value != b.value and uf.same(a, b):
                return None

        return self._witness(uf, le_edges, lt_edges, ne_pairs, terms)

    def satisfiable(self) -> bool:
        return self.solve() is not None

    # ------------------------------------------------------------------
    def _collapse_and_pin(self, uf, le_edges, lt_edges, terms) -> tuple[bool, bool]:
        """One round of SCC collapse + interval propagation.

        Returns (changed, consistent).
        """
        changed = False
        # Build the ≤-graph over class representatives.
        adjacency: dict[Term, set[Term]] = {}
        strict: set[tuple[Term, Term]] = set()
        for a, b in le_edges | lt_edges:
            ra, rb = uf.find(a), uf.find(b)
            adjacency.setdefault(ra, set()).add(rb)
            adjacency.setdefault(rb, set())
            if (a, b) in lt_edges:
                strict.add((ra, rb))
        for t in terms:
            adjacency.setdefault(uf.find(t), set())

        sccs = _tarjan(adjacency)
        comp_of: dict[Term, int] = {}
        for index, component in enumerate(sccs):
            for node in component:
                comp_of[node] = index
        # Everything in a ≤-cycle is equal; a strict edge inside: UNSAT.
        for a, b in strict:
            if comp_of[a] == comp_of[b]:
                return changed, False
        for component in sccs:
            component = sorted(component, key=repr)
            for other in component[1:]:
                if uf.union(component[0], other) is not None:
                    changed = True

        # Distinct constants merged by the collapse: UNSAT.
        const_of: dict[Term, float] = {}
        for t in terms:
            if _is_const(t):
                root = uf.find(t)
                if root in const_of and const_of[root] != t.value:
                    return changed, False
                const_of[root] = t.value

        # Interval propagation through the (now acyclic) condensation.
        roots = {uf.find(t) for t in terms}
        lo: dict[Term, tuple[float, bool]] = {}  # value, strict?
        hi: dict[Term, tuple[float, bool]] = {}
        for root in roots:
            if root in const_of:
                lo[root] = (const_of[root], False)
                hi[root] = (const_of[root], False)
        edges = [(uf.find(a), uf.find(b), (a, b) in lt_edges) for a, b in le_edges | lt_edges]

        def tighter_lo(candidate, current) -> bool:
            # A lower bound is tighter when larger; at equal value,
            # strict beats non-strict.
            return current is None or candidate > current

        def tighter_hi(candidate, current) -> bool:
            # An upper bound is tighter when *smaller*; at equal value,
            # strict beats non-strict.
            if current is None:
                return True
            (cv, cs), (ov, os) = candidate, current
            return cv < ov or (cv == ov and cs and not os)

        for _ in range(len(roots) + 1):
            moved = False
            for a, b, is_strict in edges:
                a, b = uf.find(a), uf.find(b)
                if a == b:
                    continue
                if a in lo:
                    v, s = lo[a]
                    candidate = (v, s or is_strict)
                    if tighter_lo(candidate, lo.get(b)):
                        lo[b] = candidate
                        moved = True
                if b in hi:
                    v, s = hi[b]
                    candidate = (v, s or is_strict)
                    if tighter_hi(candidate, hi.get(a)):
                        hi[a] = candidate
                        moved = True
            if not moved:
                break
        for root in roots:
            if root in lo and root in hi:
                (lv, ls), (hv, hs) = lo[root], hi[root]
                if lv > hv or (lv == hv and (ls or hs)):
                    return changed, False
                if lv == hv and root not in const_of:
                    # Pinned to a constant: merge with that constant term.
                    pin = Const(lv)
                    if pin in {t for t in terms if _is_const(t)}:
                        if uf.union(root, pin) is not None:
                            changed = True
        return changed, True

    # ------------------------------------------------------------------
    def _witness(self, uf, le_edges, lt_edges, ne_pairs, terms):
        """Concrete values: topological assignment over the condensation."""
        roots = sorted({uf.find(t) for t in terms}, key=repr)
        successors: dict[Term, set[tuple[Term, bool]]] = {r: set() for r in roots}
        indegree: dict[Term, int] = {r: 0 for r in roots}
        seen_edges = set()
        for a, b in le_edges | lt_edges:
            ra, rb = uf.find(a), uf.find(b)
            if ra == rb or (ra, rb) in seen_edges:
                continue
            seen_edges.add((ra, rb))
            successors[ra].add((rb, (a, b) in lt_edges))
            indegree[rb] += 1

        const_of = {}
        for t in terms:
            if _is_const(t):
                const_of[uf.find(t)] = float(t.value)

        # Kahn topological order (the graph is acyclic after collapsing).
        order: list[Term] = []
        frontier = sorted((r for r in roots if indegree[r] == 0), key=repr)
        indeg = dict(indegree)
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for succ, _ in sorted(successors[node], key=repr):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    frontier.append(succ)
            frontier.sort(key=repr)

        values: dict[Term, float] = {}
        ne_roots = {(uf.find(a), uf.find(b)) for a, b in ne_pairs}

        def conflicts(root: Term, value: float) -> bool:
            # ≠-partners already assigned, and *every* constant class —
            # a free variable must never collide with a constant it is
            # required to differ from, even if that constant class is
            # assigned later in the topological order.
            for a, b in ne_roots:
                other = b if a == root else (a if b == root else None)
                if other is None:
                    continue
                if other in values and values[other] == value:
                    return True
                if other in const_of and const_of[other] == value:
                    return True
            return False

        # Constants are immovable: pre-assign every constant class.
        for root, constant in const_of.items():
            values[root] = constant

        for root in order:
            if root in const_of:
                continue  # already assigned, never nudged
            lower = None  # (value, strict)
            for pred in order:
                for succ, is_strict in successors.get(pred, ()):
                    if succ == root and pred in values:
                        candidate = (values[pred], is_strict)
                        if lower is None or candidate > lower:
                            lower = candidate
            upper = self._upper_bound(root, successors, const_of, uf)
            if lower is None:
                value = 0.0 if upper is None else upper - 1.0
            elif lower[1]:
                # Strict lower bound: stay below any constant upper bound
                # (the domain is dense, so the midpoint always exists).
                value = lower[0] + 1.0 if upper is None else lower[0] + (upper - lower[0]) / 2.0
            else:
                value = lower[0]
            # Keep ≠-pairs apart: nudge upward by halves toward the
            # tightest upper bound, or by whole steps when unbounded.
            attempts = 0
            while conflicts(root, value) and attempts < 100:
                attempts += 1
                if upper is None:
                    value += 1.0
                else:
                    value = value + (upper - value) / 2.0
            values[root] = value

        assignment: dict[Term, float] = {}
        for t in terms:
            assignment[t] = values[uf.find(t)]
        return assignment

    def _upper_bound(self, root, successors, const_of, uf):
        """The nearest constant upper bound reachable from ``root``."""
        best = None
        frontier = [root]
        seen = {root}
        while frontier:
            node = frontier.pop()
            for succ, _ in successors.get(node, ()):
                if succ in const_of:
                    bound = const_of[succ]
                    if best is None or bound < best:
                        best = bound
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return best


def _tarjan(adjacency: dict[Term, set[Term]]) -> list[list[Term]]:
    """Tarjan's SCC algorithm (iterative, deterministic order)."""
    index_counter = itertools.count()
    stack: list[Term] = []
    lowlink: dict[Term, int] = {}
    index: dict[Term, int] = {}
    on_stack: set[Term] = set()
    result: list[list[Term]] = []

    for start in sorted(adjacency, key=repr):
        if start in index:
            continue
        work = [(start, iter(sorted(adjacency[start], key=repr)))]
        index[start] = lowlink[start] = next(index_counter)
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = next(index_counter)
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adjacency[succ], key=repr))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def solve_constraints(constraints: Iterable[Constraint]) -> dict[Term, float] | None:
    """Convenience wrapper: solve a conjunction, None if UNSAT."""
    return OrderSolver(constraints).solve()
