"""Reasoning about GED∨s (Theorem 9).

* **Validation** — coNP, pointwise disjunctive check
  (:func:`vee_find_violations`).
* **Satisfiability** — Σp2.  Two procedures are provided and
  cross-checked in the tests:

  1. the **disjunctive chase** (:func:`disjunctive_chase_satisfiable`):
     a chase state owes, for every match whose X is entailed, at least
     one entailed Y-disjunct; the engine branches over the choice.
     Σ is satisfiable iff some branch reaches a consistent fixpoint
     (a model guides the choices, and a consistent fixpoint concretizes
     to a model exactly as in Theorem 2);
  2. the **small-model search** (:func:`vee_satisfiable_smallmodel`)
     over quotients of G_Σ — slower but directly mirrors the Theorem 9
     proof, and shares its work counters with the benchmarks.

* **Implication** — Πp2, by small-model counterexample search
  (:func:`vee_implies`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.chase.canonical import (
    apply_literal,
    canonical_graph,
    canonical_graph_of_sigma,
    literal_entailed,
)
from repro.chase.coercion import coerce
from repro.chase.eqrel import EquivalenceRelation
from repro.deps.literals import ConstantLiteral, FALSE, Literal, VariableLiteral
from repro.extensions.gedvee import GEDVee
from repro.extensions.smallmodel import (
    GroundRules,
    SearchSpace,
    SearchStats,
    ged_literal_eval,
    search_small_model,
)
from repro.graph.graph import Graph
from repro.matching.homomorphism import find_homomorphisms
from repro.reasoning.validation import literal_holds


@dataclass(frozen=True)
class VeeViolation:
    dependency: GEDVee
    match: tuple[tuple[str, str], ...]

    @property
    def assignment(self) -> dict[str, str]:
        return dict(self.match)


def vee_find_violations(
    graph: Graph, sigma: Iterable[GEDVee], limit: int | None = None
) -> list[VeeViolation]:
    """Matches satisfying X but *no* disjunct of Y."""
    violations: list[VeeViolation] = []
    for dep in sigma:
        for match in find_homomorphisms(dep.pattern, graph):
            if not all(literal_holds(graph, l, match) for l in dep.X):
                continue
            if any(literal_holds(graph, l, match) for l in dep.Y if l is not FALSE):
                continue
            violations.append(VeeViolation(dep, tuple(sorted(match.items()))))
            if limit is not None and len(violations) >= limit:
                return violations
    return violations


def vee_validates(graph: Graph, sigma: Iterable[GEDVee]) -> bool:
    """G |= Σ for GED∨s — the coNP validation problem of Theorem 9."""
    return not vee_find_violations(graph, sigma, limit=1)


# ----------------------------------------------------------------------
# The disjunctive chase
# ----------------------------------------------------------------------


@dataclass
class DisjunctiveChaseStats:
    """Work counters: how many branches the chase explored."""

    branches: int = 0
    max_depth: int = 0
    ground_steps: int = 0


def disjunctive_chase_satisfiable(
    sigma: Sequence[GEDVee],
    max_branches: int = 100_000,
    stats: DisjunctiveChaseStats | None = None,
) -> tuple[bool, Graph | None]:
    """Satisfiability of a GED∨ set by the branching chase over G_Σ.

    Returns ``(satisfiable, witness)`` where the witness is the
    concretized coercion of a valid terminal branch.
    """
    sigma = list(sigma)
    if not sigma:
        g = Graph()
        g.add_node("n0", "anything")
        return True, g
    canonical, _ = canonical_graph_of_sigma(_patterns_only(sigma))
    stats = stats if stats is not None else DisjunctiveChaseStats()

    # A branch is a list of ground literal applications
    # (literal, assignment); the relation is rebuilt per branch —
    # branches share no mutable state, which keeps backtracking trivial.
    def rebuild(grounds: list[tuple[Literal, dict[str, str]]]) -> EquivalenceRelation:
        eq = EquivalenceRelation(canonical)
        for literal, assignment in grounds:
            apply_literal(eq, literal, assignment)
            if not eq.is_consistent:
                break
        return eq

    def explore(grounds, depth: int):
        stats.branches += 1
        stats.max_depth = max(stats.max_depth, depth)
        if stats.branches > max_branches:
            raise RuntimeError(f"disjunctive chase exceeded {max_branches} branches")
        eq = rebuild(grounds)
        if not eq.is_consistent:
            return None
        while True:
            coerced = coerce(eq)
            obligation = _first_obligation(sigma, coerced, eq)
            if obligation is None:
                return eq
            dep, match = obligation
            disjuncts = sorted((l for l in dep.Y if l is not FALSE), key=str)
            if not disjuncts:
                return None  # forbidding GED∨: this branch dies
            if len(disjuncts) == 1:
                # Deterministic obligation: apply in place, no branching.
                stats.ground_steps += 1
                grounds = grounds + [(disjuncts[0], dict(match))]
                apply_literal(eq, disjuncts[0], match)
                if not eq.is_consistent:
                    return None
                continue
            for literal in disjuncts:
                result = explore(grounds + [(literal, dict(match))], depth + 1)
                if result is not None:
                    return result
            return None

    eq = explore([], 0)
    if eq is None:
        return False, None
    witness = _concretize_vee(eq, sigma)
    return True, witness


def _first_obligation(sigma, coerced, eq):
    """The first (dependency, match) whose X is entailed but no
    Y-disjunct is, or None at a valid fixpoint."""
    for dep in sigma:
        for match in find_homomorphisms(dep.pattern, coerced):
            if not all(literal_entailed(eq, l, match) for l in dep.X):
                continue
            if any(
                literal_entailed(eq, l, match) for l in dep.Y if l is not FALSE
            ):
                continue
            return dep, match
    return None


def _concretize_vee(eq: EquivalenceRelation, sigma: Sequence[GEDVee]) -> Graph:
    """Concretize a valid disjunctive-chase fixpoint (as in Theorem 2)."""
    from repro.chase.engine import ChaseResult
    from repro.deps.ged import GED
    from repro.reasoning.satisfiability import concretize

    result = ChaseResult(True, eq, coerce(eq))
    # concretize() only reads labels/constants from Σ; adapt the GED∨s.
    adapted = [GED(dep.pattern, dep.X, [l for l in dep.Y if l is not FALSE]) for dep in sigma]
    return concretize(result, adapted)


def _patterns_only(sigma):
    class _PatternOnly:
        def __init__(self, pattern):
            self.pattern = pattern

    return [_PatternOnly(dep.pattern) for dep in sigma]


# ----------------------------------------------------------------------
# Small-model search (the Theorem 9 proof shape)
# ----------------------------------------------------------------------


def _vee_space(sigma: Sequence[GEDVee], extra: Sequence[GEDVee] = ()) -> SearchSpace:
    attributes: set[str] = set()
    constants: set[object] = set()
    for dep in list(sigma) + list(extra):
        for literal in dep.X | dep.Y:
            if isinstance(literal, ConstantLiteral):
                attributes.add(literal.attr)
                constants.add(literal.const)
            elif isinstance(literal, VariableLiteral):
                attributes.add(literal.attr1)
                attributes.add(literal.attr2)
    return SearchSpace(sorted(attributes), sorted(constants, key=repr))


def vee_satisfiable_smallmodel(
    sigma: Sequence[GEDVee],
    max_nodes: int = 7,
    max_candidates: int | None = None,
    stats: SearchStats | None = None,
) -> tuple[bool, Graph | None]:
    """Σp2 satisfiability by small-model search over quotients of G_Σ."""
    sigma = list(sigma)
    if not sigma:
        g = Graph()
        g.add_node("n0", "anything")
        return True, g
    canonical, _ = canonical_graph_of_sigma(_patterns_only(sigma))
    witness = search_small_model(
        canonical,
        _vee_space(sigma),
        accept=lambda candidate, _proj: vee_validates(candidate, sigma),
        max_nodes=max_nodes,
        max_candidates=max_candidates,
        stats=stats,
        pruner=GroundRules(sigma, ged_literal_eval, disjunctive=True),
    )
    return witness is not None, witness


def vee_implies(
    sigma: Sequence[GEDVee],
    phi: GEDVee,
    max_nodes: int = 7,
    max_candidates: int | None = None,
    stats: SearchStats | None = None,
) -> tuple[bool, Graph | None]:
    """Πp2 implication by counterexample search over quotients of G_Q."""
    sigma = list(sigma)
    canonical = canonical_graph(phi.pattern)

    def is_counterexample(candidate: Graph, _projection) -> bool:
        if not vee_validates(candidate, sigma):
            return False
        return not vee_validates(candidate, [phi])

    counterexample = search_small_model(
        canonical,
        _vee_space(sigma, extra=[phi]),
        accept=is_counterexample,
        max_nodes=max_nodes,
        max_candidates=max_candidates,
        stats=stats,
        pruner=GroundRules(sigma, ged_literal_eval, disjunctive=True),
    )
    return counterexample is None, counterexample


def domain_constraint_vee(label: str, attr: str, values: Sequence[object]) -> GEDVee:
    """Example 10: ψ = Q_e[x](∅ → ⋁ x.A = v) — existence + finite domain
    in a single GED∨."""
    from repro.patterns.pattern import Pattern

    return GEDVee(
        Pattern({"x": label}),
        [],
        [ConstantLiteral("x", attr, v) for v in values],
        name=f"{label}.{attr} ∈ {list(values)}",
    )
