"""JSON (de)serialization for the extension dependency classes.

Extends the :mod:`repro.deps.io` literal vocabulary with

* ``{"kind": "cmp", ...}`` — GDC constant comparisons ``x.A ⊕ c``;
* ``{"kind": "vcmp", ...}`` — GDC attribute comparisons ``x.A ⊕ y.B``;

and adds document formats for :class:`~repro.extensions.gdc.GDC`,
:class:`~repro.extensions.gedvee.GEDVee` and
:class:`~repro.extensions.tgd.GraphTGD` (each carries a ``"type"`` tag
so mixed rule files can be loaded with :func:`dependency_from_dict`).
GEDs written by :mod:`repro.deps.io` remain loadable here: a missing
``"type"`` tag means a plain GED.
"""

from __future__ import annotations

import json
from typing import Any

from repro.deps.ged import GED
from repro.deps.io import ged_from_dict, ged_to_dict, literal_from_dict, literal_to_dict
from repro.errors import DependencyError
from repro.extensions.gdc import GDC, ComparisonLiteral, VariableComparisonLiteral
from repro.extensions.gedvee import GEDVee
from repro.extensions.tgd import GraphTGD
from repro.patterns.io import pattern_from_dict, pattern_to_dict


# ----------------------------------------------------------------------
# GDC literals
# ----------------------------------------------------------------------
def gdc_literal_to_dict(literal) -> dict[str, Any]:
    if isinstance(literal, ComparisonLiteral):
        return {
            "kind": "cmp",
            "var": literal.var,
            "attr": literal.attr,
            "op": literal.op,
            "value": literal.const,
        }
    if isinstance(literal, VariableComparisonLiteral):
        return {
            "kind": "vcmp",
            "var1": literal.var1,
            "attr1": literal.attr1,
            "op": literal.op,
            "var2": literal.var2,
            "attr2": literal.attr2,
        }
    return literal_to_dict(literal)


def gdc_literal_from_dict(data: dict[str, Any]):
    kind = data.get("kind")
    if kind == "cmp":
        return ComparisonLiteral(data["var"], data["attr"], data["op"], data["value"])
    if kind == "vcmp":
        return VariableComparisonLiteral(
            data["var1"], data["attr1"], data["op"], data["var2"], data["attr2"]
        )
    return literal_from_dict(data)


# ----------------------------------------------------------------------
# Dependency documents
# ----------------------------------------------------------------------
def gdc_to_dict(gdc: GDC) -> dict[str, Any]:
    return {
        "type": "gdc",
        "name": gdc.name,
        "pattern": pattern_to_dict(gdc.pattern),
        "X": [gdc_literal_to_dict(l) for l in sorted(gdc.X, key=str)],
        "Y": [gdc_literal_to_dict(l) for l in sorted(gdc.Y, key=str)],
    }


def gdc_from_dict(data: dict[str, Any]) -> GDC:
    return GDC(
        pattern_from_dict(data["pattern"]),
        [gdc_literal_from_dict(l) for l in data.get("X", [])],
        [gdc_literal_from_dict(l) for l in data.get("Y", [])],
        name=data.get("name"),
    )


def gedvee_to_dict(vee: GEDVee) -> dict[str, Any]:
    return {
        "type": "gedvee",
        "name": vee.name,
        "pattern": pattern_to_dict(vee.pattern),
        "X": [literal_to_dict(l) for l in sorted(vee.X, key=str)],
        "Y": [literal_to_dict(l) for l in sorted(vee.Y, key=str)],
    }


def gedvee_from_dict(data: dict[str, Any]) -> GEDVee:
    return GEDVee(
        pattern_from_dict(data["pattern"]),
        [literal_from_dict(l) for l in data.get("X", [])],
        [literal_from_dict(l) for l in data.get("Y", [])],
        name=data.get("name"),
    )


def tgd_to_dict(tgd: GraphTGD) -> dict[str, Any]:
    return {
        "type": "tgd",
        "name": tgd.name,
        "body": pattern_to_dict(tgd.body),
        "X": [literal_to_dict(l) for l in sorted(tgd.X, key=str)],
        "head_nodes": dict(tgd.head_nodes),
        "head_edges": [list(e) for e in tgd.head_edges],
        "Y": [literal_to_dict(l) for l in sorted(tgd.Y, key=str)],
    }


def tgd_from_dict(data: dict[str, Any]) -> GraphTGD:
    return GraphTGD(
        pattern_from_dict(data["body"]),
        X=[literal_from_dict(l) for l in data.get("X", [])],
        head_nodes=data.get("head_nodes") or {},
        head_edges=[tuple(e) for e in data.get("head_edges", [])],
        Y=[literal_from_dict(l) for l in data.get("Y", [])],
        name=data.get("name"),
    )


# ----------------------------------------------------------------------
# Mixed documents
# ----------------------------------------------------------------------
def dependency_to_dict(dep) -> dict[str, Any]:
    """Serialize any supported dependency, tagged by type."""
    if isinstance(dep, GDC):
        return gdc_to_dict(dep)
    if isinstance(dep, GEDVee):
        return gedvee_to_dict(dep)
    if isinstance(dep, GraphTGD):
        return tgd_to_dict(dep)
    if isinstance(dep, GED):
        payload = ged_to_dict(dep)
        payload["type"] = "ged"
        return payload
    raise DependencyError(f"cannot serialize dependency {dep!r}")


def dependency_from_dict(data: dict[str, Any]):
    """Load any supported dependency; untagged documents are GEDs."""
    kind = data.get("type", "ged")
    if kind == "gdc":
        return gdc_from_dict(data)
    if kind == "gedvee":
        return gedvee_from_dict(data)
    if kind == "tgd":
        return tgd_from_dict(data)
    if kind == "ged":
        return ged_from_dict({k: v for k, v in data.items() if k != "type"})
    raise DependencyError(f"unknown dependency type {kind!r}")


def dependencies_to_json(deps, indent: int | None = None) -> str:
    return json.dumps([dependency_to_dict(d) for d in deps], indent=indent, sort_keys=True)


def dependencies_from_json(text: str) -> list:
    data = json.loads(text)
    if isinstance(data, dict):
        data = [data]
    return [dependency_from_dict(entry) for entry in data]


__all__ = [
    "dependencies_from_json",
    "dependencies_to_json",
    "dependency_from_dict",
    "dependency_to_dict",
    "gdc_from_dict",
    "gdc_literal_from_dict",
    "gdc_literal_to_dict",
    "gdc_to_dict",
    "gedvee_from_dict",
    "gedvee_to_dict",
    "tgd_from_dict",
    "tgd_to_dict",
]
