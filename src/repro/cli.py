"""Command-line interface for the GED toolchain.

Operates on JSON files in the formats of :mod:`repro.graph.io` and
:mod:`repro.deps.io`::

    python -m repro.cli validate --graph kb.json --rules rules.json
    python -m repro.cli validate --graph kb.json --rules rules.json --index
    python -m repro.cli satisfiable --rules rules.json
    python -m repro.cli implies --rules rules.json --phi target.json
    python -m repro.cli chase --graph kb.json --rules keys.json -o out.json
    python -m repro.cli repair --graph kb.json --rules rules.json -o clean.json
    python -m repro.cli discover --graph kb.json --min-support 3 -o rules.json
    python -m repro.cli cover --rules rules.json -o cover.json
    python -m repro.cli pvalidate --graph kb.json --rules rules.json --workers 4
    python -m repro.cli pvalidate --graph kb.json --rules rules.json --backend fragment
    python -m repro.cli partition --graph kb.json --fragments 4 --mode greedy
    python -m repro.cli index --graph kb.json [--rules rules.json]
    python -m repro.cli explain --graph kb.json --rules rules.json --index
    python -m repro.cli engine --graph kb.json --rules rules.json --workers 4
    python -m repro.cli stream --log updates.jsonl --rules rules.json --index
    python -m repro.cli serve --log updates.jsonl --rules rules.json --graph kb.json
    python -m repro.cli subscribe --port 4200 --label city --rule one-capital
    python -m repro.cli stats --graph kb.json --rules rules.json --backend fragment
    python -m repro.cli pvalidate --graph kb.json --rules rules.json \
        --backend engine --telemetry ndjson:run.ndjson
    python -m repro.cli trace run.ndjson

Rule files contain either a single GED dictionary or a list of them.
Exit status: 0 for "yes/clean", 1 for "no/violations", 2 for usage or
input errors — scriptable in data-quality pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.chase.engine import chase
from repro.deps.io import ged_from_dict
from repro.errors import ReproError
from repro.graph.io import graph_from_json, graph_to_json
from repro.reasoning.implication import check_implication
from repro.reasoning.satisfiability import check_satisfiability
from repro.reasoning.validation import find_violations


def load_rules(path: str):
    """Load a JSON rule file (one GED dict or a list of them)."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        data = [data]
    return [ged_from_dict(entry) for entry in data]


def load_graph(path: str):
    """Load a JSON graph file (repro.graph.io format)."""
    return graph_from_json(Path(path).read_text())


def cmd_validate(args: argparse.Namespace) -> int:
    """`validate`: list violations of Σ in G; exit 1 when dirty."""
    graph = load_graph(args.graph)
    rules = load_rules(args.rules)
    if getattr(args, "index", False):
        from repro.indexing import attach_index

        attach_index(graph)
    violations = find_violations(graph, rules, limit=args.limit)
    print(f"{len(violations)} violation(s)")
    for violation in violations:
        print(f"  {violation}")
    return 0 if not violations else 1


def cmd_satisfiable(args: argparse.Namespace) -> int:
    """`satisfiable`: the Theorem 2 check; exit 1 when unsatisfiable."""
    rules = load_rules(args.rules)
    outcome = check_satisfiability(rules)
    print("satisfiable" if outcome.satisfiable else f"unsatisfiable: {outcome.reason}")
    return 0 if outcome.satisfiable else 1


def cmd_implies(args: argparse.Namespace) -> int:
    """`implies`: the Theorem 4 check; exit 1 when not implied."""
    rules = load_rules(args.rules)
    (phi,) = load_rules(args.phi)
    outcome = check_implication(rules, phi)
    if outcome.implied:
        print(f"implied ({outcome.mode})")
        return 0
    missing = ", ".join(str(l) for l in outcome.missing)
    print(f"not implied; underivable literals: {missing}")
    return 1


def cmd_chase(args: argparse.Namespace) -> int:
    """`chase`: chase G by Σ, optionally writing the coercion."""
    graph = load_graph(args.graph)
    rules = load_rules(args.rules)
    result = chase(graph, rules)
    if not result.consistent:
        print(f"chase inconsistent: {result.reason}")
        return 1
    merged = sum(1 for c in result.eq.node_classes() if len(c) > 1)
    print(f"chase valid: {len(result.steps)} step(s), {merged} merged class(es)")
    if args.output:
        Path(args.output).write_text(graph_to_json(result.graph, indent=2))
        print(f"coerced graph written to {args.output}")
    return 0


def cmd_repair(args: argparse.Namespace) -> int:
    """`repair`: greedy violation-driven repair; exit 1 when dirty."""
    from repro.repair import CostModel, repair

    graph = load_graph(args.graph)
    rules = load_rules(args.rules)
    model = CostModel()
    report = repair(
        graph,
        rules,
        cost_model=model,
        max_operations=args.max_operations,
        allow_backward=not args.forward_only,
        suggest_workers=args.suggest_workers,
    )
    print(report.summary())
    if args.output:
        Path(args.output).write_text(graph_to_json(report.graph, indent=2))
        print(f"repaired graph written to {args.output}")
    return 0 if report.clean else 1


def cmd_discover(args: argparse.Namespace) -> int:
    """`discover`: mine GFDs from a graph; exit 1 when none found."""
    from repro.deps.io import ged_to_dict
    from repro.discovery import discover_gfds

    graph = load_graph(args.graph)
    rules = discover_gfds(
        graph,
        max_lhs=args.max_lhs,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        include_paths=args.paths,
        include_forks=args.forks,
        workers=args.workers,
    )
    print(f"{len(rules)} rule(s) discovered")
    for rule in rules:
        print(f"  {rule}")
    if args.output:
        payload = [ged_to_dict(rule.ged) for rule in rules]
        Path(args.output).write_text(json.dumps(payload, indent=2))
        print(f"rules written to {args.output}")
    return 0 if rules else 1


def cmd_cover(args: argparse.Namespace) -> int:
    """`cover`: minimize a rule set (structural dedup + implication)."""
    from repro.deps.io import ged_to_dict
    from repro.optimization import compute_cover

    rules = load_rules(args.rules)
    report = compute_cover(rules)
    print(
        f"cover: {len(rules)} -> {len(report.cover)} "
        f"({len(report.structural_duplicates)} duplicate(s), "
        f"{len(report.implied)} implied)"
    )
    if args.output:
        payload = [ged_to_dict(ged) for ged in report.cover]
        Path(args.output).write_text(json.dumps(payload, indent=2))
        print(f"cover written to {args.output}")
    return 0


def cmd_pvalidate(args: argparse.Namespace) -> int:
    """`pvalidate`: sharded validation; exit 1 when dirty."""
    from repro.parallel import parallel_find_violations

    graph = load_graph(args.graph)
    rules = load_rules(args.rules)
    if getattr(args, "index", False):
        from repro.indexing import attach_index

        attach_index(graph)
    report = parallel_find_violations(
        graph,
        rules,
        workers=args.workers,
        backend=args.backend,
        fragment_mode=getattr(args, "fragment_mode", "hash"),
    )
    print(
        f"{len(report.violations)} violation(s) "
        f"[{report.backend}, {report.workers} worker(s), "
        f"{report.total_matches()} matches, balance {report.balance():.2f}"
        f"{', indexed' if report.indexed else ''}]"
    )
    for violation in report.violations:
        print(f"  {violation}")
    return 0 if report.valid else 1


def cmd_engine(args: argparse.Namespace) -> int:
    """`engine`: snapshot/pool stats, then engine-pooled validation.

    Shows what the persistent runtime buys: the broadcast snapshot size
    versus naively pickling the graph, the scheduler's costed work
    queue, and — with ``--rules`` — cold-versus-warm wall clock for
    repeated validations on the same pool.
    """
    import pickle
    import time

    from repro.engine import get_pool, plan_tasks
    from repro.parallel import parallel_find_violations

    graph = load_graph(args.graph)
    pool = get_pool(graph, args.workers, ensure_index=not args.no_index)
    naive = len(pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL))
    compact = pool.broadcast_bytes
    print(
        f"snapshot: {compact} byte(s) broadcast once "
        f"(naive per-task graph pickle: {naive} byte(s), "
        f"{naive / compact:.1f}x larger)"
    )
    print(
        f"pool: {pool.workers} worker(s), graph version {pool.version}, "
        f"{'indexed' if pool.indexed else 'unindexed'}"
    )
    if not args.rules:
        return 0

    rules = load_rules(args.rules)
    units = plan_tasks(graph, rules, pool.workers)
    print(f"work queue ({len(units)} unit(s), largest estimated cost first):")
    for unit in units[:10]:
        print(f"  {unit}")
    if len(units) > 10:
        print(f"  ... {len(units) - 10} more")

    report = None
    for attempt in range(max(1, args.repeat)):
        started = time.perf_counter()
        report = parallel_find_violations(
            graph, rules, workers=pool.workers, backend="engine"
        )
        wall = time.perf_counter() - started
        label = "cold" if attempt == 0 else "warm"
        print(
            f"run {attempt + 1} ({label}): {wall * 1000:.1f} ms, "
            f"{len(report.violations)} violation(s), "
            f"{report.total_matches()} match(es)"
        )
    for violation in report.violations:
        print(f"  {violation}")
    return 0 if report.valid else 1


def cmd_partition(args: argparse.Namespace) -> int:
    """`partition`: edge-cut the graph, print fragment + broadcast stats.

    Shows what the fragmented core buys: per-fragment interior/border
    sizes, the cut and replication totals, partition balance, and the
    per-worker broadcast payloads versus the whole-graph snapshot
    (fragment-resident workers receive only their fragment).  With
    ``--rules``, also reports how much of each dependency's pivot work
    is locally decidable under the ball-completeness rule.
    """
    from repro.engine.snapshot import snapshot_fragments, snapshot_graph, snapshot_size
    from repro.graph.fragments import fragment_stats, partition_graph

    graph = load_graph(args.graph)
    fragmentation = partition_graph(graph, args.fragments, args.mode)
    stats = fragment_stats(fragmentation)
    print(
        f"partition: {stats['k']} fragment(s), mode {stats['mode']}, "
        f"{stats['cut_edges']} cut edge(s), {stats['replicated_nodes']} "
        f"border replica(s), balance {stats['balance']:.2f}"
    )
    whole_bytes = snapshot_size(snapshot_graph(graph))
    payload_sizes = [len(s.payload()) for s in snapshot_fragments(fragmentation)]
    for entry, payload in zip(stats["fragments"], payload_sizes):
        print(
            f"  fragment {entry['fragment']}: {entry['interior']} interior + "
            f"{entry['border']} border node(s), {entry['local_edges']} edge(s), "
            f"{payload} byte(s) broadcast"
        )
    largest = max(payload_sizes, default=0)
    print(
        f"broadcast: whole graph {whole_bytes} byte(s) per worker; "
        f"fragment-resident max {largest} byte(s) "
        f"({largest / whole_bytes:.2f}x) / total {sum(payload_sizes)} byte(s)"
    )
    if args.rules:
        from repro.parallel.validate import plan_fragment_pivots

        rules = load_rules(args.rules)
        print(f"ball-completeness over {len(rules)} rule(s):")
        for ged in rules:
            _, per_fragment, escalated = plan_fragment_pivots(graph, ged, fragmentation)
            local = sum(len(pivots) for _, pivots in per_fragment)
            total = local + len(escalated)
            percent = 100.0 * local / total if total else 100.0
            print(
                f"  {ged.name or 'GED'}: {local}/{total} pivot(s) fragment-local "
                f"({percent:.0f}%), {len(escalated)} escalated"
            )
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """`stream`: replay an update log, emit NDJSON violation deltas.

    One JSON line per event on stdout: a ``bootstrap`` line (the full
    validation of the base state), one ``delta`` line per batch
    (introduced / retired / updated violations), and a closing
    ``summary`` line.  The base graph comes from ``--graph`` or, when
    omitted, from the log's leading checkpoint.  Exit 1 when violations
    remain after the final batch.
    """
    from repro.graph.io import graph_from_arrays, scan_update_log, update_from_dict
    from repro.streaming import ViolationLedger, violation_to_dict

    rules = load_rules(args.rules)
    # Raw scan: checkpoint graphs are only decoded when they serve as
    # the base, and updates stream straight into the ledger — one delta
    # line out per record in, without materializing the log.
    records = scan_update_log(args.log)
    base_seq = 0
    if args.graph:
        graph = load_graph(args.graph)
    else:
        first = next(records, None)
        if first is None or first["type"] != "checkpoint":
            print(
                "error: no --graph given and the log does not start with a checkpoint",
                file=sys.stderr,
            )
            return 2
        graph = graph_from_arrays(first["arrays"])
        base_seq = first["seq"]
    if getattr(args, "index", False):
        from repro.indexing import attach_index

        attach_index(graph)
    with ViolationLedger(
        graph,
        rules,
        backend=args.backend,
        workers=args.workers,
        fragment_mode=getattr(args, "fragment_mode", "hash"),
    ) as ledger:
        initial = ledger.bootstrap()
        print(
            json.dumps(
                {
                    "type": "bootstrap",
                    "violations": len(initial),
                    "rules": len(rules),
                    "nodes": graph.num_nodes,
                    "edges": graph.num_edges,
                },
                sort_keys=True,
            ),
            flush=True,
        )
        batches = 0
        for record in records:
            if record["type"] != "update" or record["seq"] <= base_seq:
                continue
            delta = ledger.refresh(update_from_dict(record["update"]))
            batches += 1
            payload = {"type": "delta", "log_seq": record["seq"], **delta.to_dict()}
            print(json.dumps(payload, sort_keys=True), flush=True)
        remaining = ledger.violations()
        sample_size = 5 if args.limit is None else args.limit
        transport = ledger.transport_stats()
        print(
            json.dumps(
                {
                    "type": "summary",
                    "batches": batches,
                    "violations": len(remaining),
                    "routed_ops": transport["routed_ops"],
                    "full_ops": transport["full_ops"],
                    "escalated_nodes": transport["escalated_nodes"],
                    "sample": [violation_to_dict(v) for v in remaining[:sample_size]],
                },
                sort_keys=True,
            ),
            flush=True,
        )
        return 0 if not remaining else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """`serve`: run the violation-subscription push server.

    Serves one (log, Σ) pair over TCP (``docs/serve-protocol.md``): an
    existing log is replayed and seq numbering continues; a fresh log
    needs ``--graph`` for the base state.  The first stdout line is a
    ``listening`` NDJSON record carrying the bound address (port 0
    picks an ephemeral port — scripts read it from there); on shutdown
    a ``served`` record summarizes the run.  ``--max-batches`` bounds
    the run for smoke tests and demos; otherwise serve until SIGINT.
    """
    import asyncio

    from repro.serve import ViolationServer

    rules = load_rules(args.rules)
    base_graph = load_graph(args.graph) if args.graph else None

    async def serve() -> dict:
        server = ViolationServer.from_log(
            args.log,
            rules,
            base_graph=base_graph,
            backend=args.backend,
            workers=args.workers,
            fragment_mode=getattr(args, "fragment_mode", "hash"),
            checkpoint_every=args.checkpoint_every,
            queue_size=args.queue_size,
            host=args.host,
            port=args.port,
        )
        await server.start()
        print(
            json.dumps(
                {
                    "type": "listening",
                    "host": args.host,
                    "port": server.port,
                    "seq": server.seq,
                    "epoch": server.epoch,
                    "rules": len(rules),
                    "violations": len(server.ledger),
                },
                sort_keys=True,
            ),
            flush=True,
        )
        try:
            await server.run(max_batches=args.max_batches)
        finally:
            if not server._stopped.is_set():
                await server.stop()
        return server.stats()

    try:
        stats = asyncio.run(serve())
    except KeyboardInterrupt:
        return 0
    print(json.dumps({"type": "served", **stats}, sort_keys=True), flush=True)
    return 0


def cmd_subscribe(args: argparse.Namespace) -> int:
    """`subscribe`: attach to a running server, print pushed events.

    One NDJSON line per received frame (hello, bootstrap, then deltas /
    resyncs), so the stream composes with `jq` and friends.  The filter
    flags map onto the wire filter: ``--rule`` (name or Σ position),
    ``--node``, ``--label`` — repeatable, OR within a flag, AND across
    flags.  ``--max-events`` exits after that many pushed events
    (bootstrap included); otherwise read until the server says bye.
    """
    import asyncio

    from repro.serve import LINE_DELIMITED, ServeClient

    filter_payload: dict = {}
    if args.rule:
        filter_payload["rules"] = [
            int(entry) if entry.lstrip("-").isdigit() else entry for entry in args.rule
        ]
    if args.node:
        filter_payload["nodes"] = args.node
    if args.label:
        filter_payload["labels"] = args.label

    async def consume() -> int:
        framing = LINE_DELIMITED if args.lines else "length"
        client = await ServeClient.connect(args.host, args.port, framing=framing)
        try:
            bootstrap = await client.subscribe(filter_payload or None)
            print(json.dumps(client.hello, sort_keys=True), flush=True)
            print(json.dumps(bootstrap, sort_keys=True), flush=True)
            events = 1
            while args.max_events is None or events < args.max_events:
                event = await client.next_event()
                print(json.dumps(event, sort_keys=True), flush=True)
                if event.get("type") == "bye":
                    break
                events += 1
        finally:
            await client.close()
        return 0

    try:
        return asyncio.run(consume())
    except KeyboardInterrupt:
        return 0
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_explain(args: argparse.Namespace) -> int:
    """`explain`: print each rule's compiled match plan for a graph.

    Shows the plan-compiled matching core's decisions: the interned
    graph view the plan binds to, per-variable candidate pools, the
    cost-ordered step list (scan / extend with its edge checks and
    self-loop checks, estimated per-frame cost), and the attr-filter
    stage derived from the rule's X constant literals (applied through
    the attribute inverted index at match time when an index is
    attached).

    ``--sigma`` renders the whole rule set's shared Σ-DAG instead: the
    merged spine (one line per shared enumeration node, annotated with
    how many rules ride it) and the per-rule leaves hanging off it.
    With ``--observed`` the annotations carry the counters of the
    profiled validation run, which itself executes through the same
    cached Σ-DAG.
    """
    from repro.deps.literals import ConstantLiteral
    from repro.matching.plan import compile_plan

    graph = load_graph(args.graph)
    rules = load_rules(args.rules)
    if getattr(args, "index", False):
        from repro.indexing import attach_index

        attach_index(graph)
    observed = getattr(args, "observed", False)
    if observed:
        # One profiled validation run populates the per-step execution
        # counters the observed rendering annotates the plans with.
        # Multi-rule full scans run through the Σ-DAG, so with --sigma
        # the counters land on exactly the DAG rendered below.
        from repro import telemetry

        was_enabled = telemetry.enabled()
        telemetry.enable()
        try:
            find_violations(graph, rules)
        finally:
            if not was_enabled:
                telemetry.disable()
    if getattr(args, "sigma", False):
        from repro.matching.sigma_dag import compile_sigma

        dag = compile_sigma(graph, [ged.pattern for ged in rules])
        print(dag.explain(observed=observed))
        return 0
    for position, ged in enumerate(rules):
        if position:
            print()
        print(f"== {ged.name or 'GED'} ==")
        plan = compile_plan(graph, ged.pattern)
        print(plan.explain(observed=observed))
        filters = [l for l in ged.X if isinstance(l, ConstantLiteral)]
        for literal in filters:
            source = (
                "attribute inverted index" if plan.indexed else "no index — full pools"
            )
            print(f"  attr-filter {literal.var}: {literal}  [{source}]")
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    """`index`: build the repro.indexing bundle for a graph, print stats.

    With ``--rules``, also reports the per-dependency candidate-pool
    reduction the index buys on the matching hot path.
    """
    from repro.indexing import attach_index, index_stats
    from repro.matching.candidates import candidate_sets

    graph = load_graph(args.graph)
    index = attach_index(graph)
    print(index_stats(graph, index).summary())
    if args.rules:
        rules = load_rules(args.rules)
        print(f"candidate pruning over {len(rules)} rule(s):")
        for ged in rules:
            raw = candidate_sets(ged.pattern, graph, use_index=False)
            pruned = candidate_sets(ged.pattern, graph)
            raw_total = sum(len(pool) for pool in raw.values())
            pruned_total = sum(len(pool) for pool in pruned.values())
            saved = raw_total - pruned_total
            percent = (100.0 * saved / raw_total) if raw_total else 0.0
            print(
                f"  {ged.name or 'GED'}: {raw_total} -> {pruned_total} "
                f"candidate node(s) (-{percent:.0f}%)"
            )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """`stats`: one profiled validation run, then the telemetry report.

    Runs :func:`~repro.parallel.parallel_find_violations` on the chosen
    backend with telemetry enabled and renders the collected registry —
    as the human-readable derived report (``text``), the raw snapshot
    plus derived rates (``json``), or Prometheus text exposition format
    (``prom``).  Exit status follows the validation (0 clean, 1 dirty),
    so `stats` composes with pipelines exactly like `pvalidate`.
    """
    from repro import telemetry
    from repro.parallel import parallel_find_violations

    graph = load_graph(args.graph)
    rules = load_rules(args.rules)
    if getattr(args, "index", False):
        from repro.indexing import attach_index

        attach_index(graph)
    telemetry.reset()
    telemetry.clear_spans()
    telemetry.enable()
    try:
        report = parallel_find_violations(
            graph,
            rules,
            workers=args.workers,
            backend=args.backend,
            fragment_mode=getattr(args, "fragment_mode", "hash"),
        )
        snapshot = telemetry.snapshot()
    finally:
        telemetry.disable()
    if args.format == "json":
        print(
            json.dumps(
                {
                    "derived": telemetry.derived_stats(snapshot),
                    "snapshot": snapshot,
                    "violations": len(report.violations),
                    "backend": report.backend,
                    "workers": report.workers,
                },
                indent=2,
                sort_keys=True,
            )
        )
    elif args.format == "prom":
        sys.stdout.write(telemetry.render_prometheus(snapshot))
    else:
        print(
            f"stats: {len(report.violations)} violation(s) "
            f"[{report.backend}, {report.workers} worker(s), "
            f"{report.wall_seconds * 1000:.1f} ms]"
        )
        print(telemetry.format_text(snapshot))
    return 0 if report.valid else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """`trace`: render an exported telemetry NDJSON file as span trees.

    Reads the file a ``--telemetry ndjson:<path>`` run wrote (the serve
    flush path appends per batch, so a killed server's partial file
    renders fine), assembles one causal tree per trace id from the span
    records' ``trace_id``/``ref``/``parent_ref`` links, and prints each
    as an indented tree with per-span durations, cross-process markers,
    self-time attribution, and any slow-plan captures.  Exit 1 when the
    file holds no traced spans.
    """
    from repro import telemetry

    records = []
    with open(args.file, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    slow_plans = [r for r in records if r.get("type") == "slow_plan"]
    forests = telemetry.assemble_traces(records)
    if args.trace_id:
        forests = {
            trace_id: roots
            for trace_id, roots in forests.items()
            if trace_id.startswith(args.trace_id)
        }
    if not forests:
        wanted = f" matching {args.trace_id!r}" if args.trace_id else ""
        print(f"no traced spans{wanted} in {args.file}", file=sys.stderr)
        return 1
    # Oldest trace first: root start time orders the batches as applied.
    ordered = sorted(
        forests.items(),
        key=lambda item: min(
            (root.record.get("ts", 0.0) for root in item[1]), default=0.0
        ),
    )
    for position, (trace_id, roots) in enumerate(ordered):
        if position:
            print()
        plans = [p for p in slow_plans if p.get("trace_id") == trace_id]
        print(telemetry.format_trace(trace_id, roots, slow_plans=plans))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (one sub-command per pipeline stage)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Graph entity dependencies (Fan & Lu, PODS 2017)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="check G |= Σ, list violations")
    validate.add_argument("--graph", required=True)
    validate.add_argument("--rules", required=True)
    validate.add_argument("--limit", type=int, default=None)
    validate.add_argument(
        "--index",
        action="store_true",
        help="attach a repro.indexing index before validating",
    )
    validate.set_defaults(func=cmd_validate)

    satisfiable = sub.add_parser("satisfiable", help="Theorem 2 satisfiability check")
    satisfiable.add_argument("--rules", required=True)
    satisfiable.set_defaults(func=cmd_satisfiable)

    implies_cmd = sub.add_parser("implies", help="Theorem 4 implication check")
    implies_cmd.add_argument("--rules", required=True)
    implies_cmd.add_argument("--phi", required=True, help="file with the single target GED")
    implies_cmd.set_defaults(func=cmd_implies)

    chase_cmd = sub.add_parser("chase", help="chase a graph (entity resolution)")
    chase_cmd.add_argument("--graph", required=True)
    chase_cmd.add_argument("--rules", required=True)
    chase_cmd.add_argument("-o", "--output", default=None)
    chase_cmd.set_defaults(func=cmd_chase)

    repair_cmd = sub.add_parser("repair", help="greedy violation-driven repair")
    repair_cmd.add_argument("--graph", required=True)
    repair_cmd.add_argument("--rules", required=True)
    repair_cmd.add_argument("--max-operations", type=int, default=1000)
    repair_cmd.add_argument(
        "--forward-only",
        action="store_true",
        help="never retract attributes or delete edges/nodes",
    )
    repair_cmd.add_argument(
        "--suggest-workers",
        type=int,
        default=1,
        help="fan per-round repair suggestion out over the engine pool",
    )
    repair_cmd.add_argument("-o", "--output", default=None)
    repair_cmd.set_defaults(func=cmd_repair)

    discover_cmd = sub.add_parser("discover", help="mine GFDs from a data graph")
    discover_cmd.add_argument("--graph", required=True)
    discover_cmd.add_argument("--max-lhs", type=int, default=1)
    discover_cmd.add_argument("--min-support", type=int, default=2)
    discover_cmd.add_argument("--min-confidence", type=float, default=1.0)
    discover_cmd.add_argument("--paths", action="store_true", help="also profile 2-edge chains")
    discover_cmd.add_argument("--forks", action="store_true", help="also profile 2-edge forks")
    discover_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="count pattern supports on the engine worker pool",
    )
    discover_cmd.add_argument("-o", "--output", default=None)
    discover_cmd.set_defaults(func=cmd_discover)

    cover_cmd = sub.add_parser("cover", help="minimize a rule set (drop implied rules)")
    cover_cmd.add_argument("--rules", required=True)
    cover_cmd.add_argument("-o", "--output", default=None)
    cover_cmd.set_defaults(func=cmd_cover)

    pvalidate_cmd = sub.add_parser("pvalidate", help="sharded/parallel validation")
    pvalidate_cmd.add_argument("--graph", required=True)
    pvalidate_cmd.add_argument("--rules", required=True)
    pvalidate_cmd.add_argument("--workers", type=int, default=2)
    pvalidate_cmd.add_argument(
        "--backend",
        choices=["serial", "thread", "process", "engine", "fragment"],
        default="serial",
    )
    pvalidate_cmd.add_argument(
        "--fragment-mode",
        choices=["hash", "greedy"],
        default="hash",
        help="partitioner for --backend fragment (workers = fragment count)",
    )
    pvalidate_cmd.add_argument(
        "--index",
        action="store_true",
        help="attach a repro.indexing index shared by all in-process shards",
    )
    pvalidate_cmd.set_defaults(func=cmd_pvalidate)

    partition_cmd = sub.add_parser(
        "partition",
        help="edge-cut the graph into fragments, print partition/broadcast stats",
    )
    partition_cmd.add_argument("--graph", required=True)
    partition_cmd.add_argument(
        "--fragments", type=int, default=4, help="fragment count (default 4)"
    )
    partition_cmd.add_argument(
        "--mode",
        choices=["hash", "greedy"],
        default="greedy",
        help="edge-cut partitioner (default greedy)",
    )
    partition_cmd.add_argument(
        "--rules",
        default=None,
        help="also report per-rule fragment-local vs escalated pivot counts",
    )
    partition_cmd.set_defaults(func=cmd_partition)

    stream_cmd = sub.add_parser(
        "stream",
        help="replay a JSONL update log, emit NDJSON violation deltas per batch",
    )
    stream_cmd.add_argument("--log", required=True, help="JSONL update log (graph.io format)")
    stream_cmd.add_argument("--rules", required=True)
    stream_cmd.add_argument(
        "--graph",
        default=None,
        help="base graph JSON (default: restore the log's leading checkpoint)",
    )
    stream_cmd.add_argument(
        "--backend",
        choices=["serial", "engine", "fragment"],
        default="serial",
        help="delta path: in-process, sharded over a warm engine pool, "
        "or routed to fragment-resident replicas",
    )
    stream_cmd.add_argument(
        "--fragment-mode",
        choices=["hash", "greedy"],
        default="hash",
        help="partitioner for --backend fragment (workers = fragment count)",
    )
    stream_cmd.add_argument(
        "--workers", type=int, default=None, help="engine pool size (default: one per CPU)"
    )
    stream_cmd.add_argument(
        "--index",
        action="store_true",
        help="attach a repro.indexing index (maintained across every batch)",
    )
    stream_cmd.add_argument(
        "--limit", type=int, default=None, help="violations sampled into the summary line"
    )
    stream_cmd.set_defaults(func=cmd_stream)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the violation-subscription push server over a durable update log",
    )
    serve_cmd.add_argument(
        "--log", required=True, help="JSONL update log (replayed when it exists)"
    )
    serve_cmd.add_argument("--rules", required=True)
    serve_cmd.add_argument(
        "--graph",
        default=None,
        help="base graph JSON, required when the log does not exist yet",
    )
    serve_cmd.add_argument(
        "--backend",
        choices=["serial", "engine", "fragment"],
        default="serial",
        help="ledger delta path (same choices as `stream`)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=None, help="pool size / fragment count"
    )
    serve_cmd.add_argument(
        "--fragment-mode",
        choices=["hash", "greedy"],
        default="hash",
        help="partitioner for --backend fragment",
    )
    serve_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="write a log checkpoint every k batches (recovery stays O(tail))",
    )
    serve_cmd.add_argument(
        "--queue-size",
        type=int,
        default=256,
        help="per-subscriber outbound queue bound before drop-oldest + resync",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port (default)"
    )
    serve_cmd.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="stop after this many applied batches (bounded smoke mode)",
    )
    serve_cmd.set_defaults(func=cmd_serve)

    subscribe_cmd = sub.add_parser(
        "subscribe",
        help="attach to a running serve instance, print pushed events as NDJSON",
    )
    subscribe_cmd.add_argument("--host", default="127.0.0.1")
    subscribe_cmd.add_argument("--port", type=int, required=True)
    subscribe_cmd.add_argument(
        "--rule",
        action="append",
        default=None,
        help="filter: rule name or Σ position (repeatable)",
    )
    subscribe_cmd.add_argument(
        "--node", action="append", default=None, help="filter: node id (repeatable)"
    )
    subscribe_cmd.add_argument(
        "--label", action="append", default=None, help="filter: node label (repeatable)"
    )
    subscribe_cmd.add_argument(
        "--lines",
        action="store_true",
        help="speak the line-delimited framing instead of length-prefixed",
    )
    subscribe_cmd.add_argument(
        "--max-events",
        type=int,
        default=None,
        help="exit after this many pushed events (bootstrap counts as one)",
    )
    subscribe_cmd.set_defaults(func=cmd_subscribe)

    explain_cmd = sub.add_parser(
        "explain",
        help="print the compiled match plan (steps, pools, costs) for each rule",
    )
    explain_cmd.add_argument("--graph", required=True)
    explain_cmd.add_argument("--rules", required=True)
    explain_cmd.add_argument(
        "--index",
        action="store_true",
        help="attach a repro.indexing index before compiling (pruned pools, live attr filters)",
    )
    explain_cmd.add_argument(
        "--observed",
        action="store_true",
        help="run one profiled validation first and annotate each step "
        "with its observed frame/candidate/probe counts",
    )
    explain_cmd.add_argument(
        "--sigma",
        action="store_true",
        help="render the rule set's shared Σ-DAG (merged prefix spine "
        "with per-rule leaves) instead of per-rule plans",
    )
    explain_cmd.set_defaults(func=cmd_explain)

    index_cmd = sub.add_parser(
        "index", help="build graph indexes, print stats (and pruning with --rules)"
    )
    index_cmd.add_argument("--graph", required=True)
    index_cmd.add_argument("--rules", default=None)
    index_cmd.set_defaults(func=cmd_index)

    engine_cmd = sub.add_parser(
        "engine",
        help="persistent worker-pool runtime: snapshot/pool stats, "
        "costed work queue, engine-pooled validation",
    )
    engine_cmd.add_argument("--graph", required=True)
    engine_cmd.add_argument("--rules", default=None)
    engine_cmd.add_argument(
        "--workers", type=int, default=None, help="pool size (default: one per CPU)"
    )
    engine_cmd.add_argument(
        "--no-index",
        action="store_true",
        help="broadcast the graph without attaching an index first",
    )
    engine_cmd.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="validation runs on the same warm pool (default 2: cold then warm)",
    )
    engine_cmd.set_defaults(func=cmd_engine)

    stats_cmd = sub.add_parser(
        "stats",
        help="run one profiled validation, report the telemetry registry "
        "(text, json, or Prometheus exposition)",
    )
    stats_cmd.add_argument("--graph", required=True)
    stats_cmd.add_argument("--rules", required=True)
    stats_cmd.add_argument("--workers", type=int, default=2)
    stats_cmd.add_argument(
        "--backend",
        choices=["serial", "thread", "process", "engine", "fragment"],
        default="fragment",
    )
    stats_cmd.add_argument(
        "--fragment-mode",
        choices=["hash", "greedy"],
        default="hash",
        help="partitioner for --backend fragment (workers = fragment count)",
    )
    stats_cmd.add_argument(
        "--index",
        action="store_true",
        help="attach a repro.indexing index before validating",
    )
    stats_cmd.add_argument(
        "--format",
        choices=["text", "json", "prom"],
        default="text",
        help="report rendering (default text)",
    )
    stats_cmd.set_defaults(func=cmd_stats)

    trace_cmd = sub.add_parser(
        "trace",
        help="render an exported telemetry NDJSON file as causal span trees",
    )
    trace_cmd.add_argument("file", help="NDJSON file a --telemetry run wrote")
    trace_cmd.add_argument(
        "--trace-id",
        default=None,
        help="render only traces whose id starts with this prefix",
    )
    trace_cmd.set_defaults(func=cmd_trace)

    # NDJSON telemetry export rides along any of the heavy run commands;
    # main() enables the registry, wraps the run in a traced root span,
    # and appends spans incrementally to the given path (the serve loop
    # flushes per batch), closing with the final metrics snapshot.
    for runnable in (validate, pvalidate_cmd, stream_cmd, engine_cmd, serve_cmd):
        runnable.add_argument(
            "--telemetry",
            default=None,
            metavar="ndjson:PATH",
            help="collect metrics/spans during the run and export them "
            "as NDJSON to PATH",
        )
        runnable.add_argument(
            "--slow-plan-ms",
            type=float,
            default=None,
            metavar="MS",
            help="capture MatchPlan.explain(observed=True) for any "
            "validation shard slower than MS milliseconds "
            "(exported with --telemetry; env: REPRO_SLOW_PLAN_MS)",
        )
    return parser


def _telemetry_path(args: argparse.Namespace) -> str | None:
    """Parse the ``--telemetry ndjson:<path>`` spec (None when absent)."""
    spec = getattr(args, "telemetry", None)
    if spec is None:
        return None
    prefix, _, path = spec.partition(":")
    if prefix != "ndjson" or not path:
        raise ValueError(
            f"--telemetry expects 'ndjson:<path>', got {spec!r}"
        )
    return path


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse, dispatch, map library errors to exit 2."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        export_path = _telemetry_path(args)
        slow_ms = getattr(args, "slow_plan_ms", None)
        if export_path is None:
            if slow_ms is not None:
                from repro import telemetry

                telemetry.set_slow_plan_threshold(slow_ms / 1000.0)
            return args.func(args)
        from repro import telemetry

        telemetry.reset()
        telemetry.clear_spans()
        telemetry.clear_slow_plans()
        if slow_ms is not None:
            telemetry.set_slow_plan_threshold(slow_ms / 1000.0)
        telemetry.enable()
        # Incremental export: the file is open for the whole run and the
        # serve loop flushes after every batch, so a killed process still
        # leaves every completed batch's trace on disk.  close_export
        # appends whatever remains plus the final metrics snapshot — a
        # partial trace of a failed run is exactly when it matters most.
        telemetry.open_export(export_path)
        try:
            with telemetry.tracing(telemetry.start_trace()):
                with telemetry.span(f"cli.{args.command}"):
                    code = args.func(args)
        finally:
            lines = telemetry.close_export()
            telemetry.disable()
        print(
            f"telemetry: {lines} line(s) written to {export_path}",
            file=sys.stderr,
        )
        return code
    except (ReproError, OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
