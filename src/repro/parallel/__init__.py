"""Parallel scalable validation (Section 9's future-work direction).

The paper's conclusion calls for "parallel scalable algorithms for
reasoning about GEDs, to warrant speedup with the increase of
processors".  Validation (Theorem 6) is the reasoning task that runs
against *data* graphs, so it is the one worth parallelizing, and it is
embarrassingly parallel once the match space is sharded:

* :mod:`repro.parallel.partition` splits the candidate set of a pivot
  variable into k disjoint shards; the matches of a pattern are exactly
  the disjoint union over shards of matches with the pivot pinned into
  the shard, so sharded validation is **exact**, not approximate;
* :mod:`repro.parallel.validate` runs the shards on one of five
  backends — ``serial`` (the deterministic reference), ``thread``,
  ``process`` (a one-shot pool), ``engine`` (the warm persistent pool
  of :mod:`repro.engine`), or ``fragment`` (fragment-resident workers
  over a :mod:`repro.graph.fragments` partition) — merges violations
  deterministically, and reports per-shard work counters so the
  benchmark can separate algorithmic balance from pool overhead.

Every backend returns the identical report (asserted by
``tests/parallel/test_backend_determinism.py``); the perf gate holds
the warm engine's speedups on the committed reference workload.
"""

from repro.parallel.partition import ShardPlan, plan_shards
from repro.parallel.validate import (
    ParallelValidationReport,
    ShardStats,
    parallel_find_violations,
    parallel_validates,
)

__all__ = [
    "ParallelValidationReport",
    "ShardPlan",
    "ShardStats",
    "parallel_find_violations",
    "parallel_validates",
    "plan_shards",
]
