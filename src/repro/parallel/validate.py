"""Sharded (parallel) validation of GEDs on a data graph.

``parallel_find_violations`` distributes the work of
:func:`repro.reasoning.validation.find_violations` across shards of the
match space (see :mod:`repro.parallel.partition`) and merges the
results.  Three backends:

* ``"serial"`` — runs shards in-process, one after the other.  Zero
  overhead; the deterministic reference and the 1-worker baseline.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Python's GIL serializes the pure-Python matcher, so this measures
  pool overhead rather than speedup; kept because it exercises the
  same code path with true concurrency (thread-safety check) and
  because backends with C-level matchers would profit.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Real CPU parallelism; the graph and rules are pickled to each worker
  once per (dependency, shard) task.

All backends return identical, deterministically ordered violations —
a property the test suite asserts — because sharding by a pivot
variable partitions the match set exactly.

Index sharing: when a :mod:`repro.indexing` index is attached to the
graph, shard planning and every in-process shard (serial and thread
backends) consult the *same immutable* :class:`GraphIndexes` through
the weak registry — the index is built once, never per shard.  Process
workers unpickle a private graph copy with no registered index and
transparently fall back to unindexed matching; either way the
violation sets are identical because candidate pruning is purely a
necessary condition.  ``ParallelValidationReport.indexed`` records
whether the coordinating process had an index attached.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.indexing.registry import get_index
from repro.matching.homomorphism import find_homomorphisms
from repro.reasoning.validation import Violation, literal_holds
from repro.parallel.partition import plan_shards

_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ShardStats:
    """Work counters for one (dependency, shard) task."""

    ged_name: str
    shard_index: int
    candidates: int
    matches: int
    violations: int
    seconds: float


@dataclass
class ParallelValidationReport:
    """Merged violations plus per-shard accounting."""

    violations: list[Violation]
    stats: list[ShardStats] = field(default_factory=list)
    backend: str = "serial"
    workers: int = 1
    wall_seconds: float = 0.0
    indexed: bool = False

    @property
    def valid(self) -> bool:
        return not self.violations

    def total_matches(self) -> int:
        return sum(s.matches for s in self.stats)

    def max_shard_seconds(self) -> float:
        return max((s.seconds for s in self.stats), default=0.0)

    def balance(self) -> float:
        """Mean shard work / max shard work in matches (1.0 = perfectly
        balanced, → 0 = one shard did everything)."""
        works = [s.matches for s in self.stats]
        if not works or max(works) == 0:
            return 1.0
        return (sum(works) / len(works)) / max(works)


def _run_shard(
    graph: Graph,
    ged: GED,
    pivot: str,
    shard: tuple[str, ...],
    shard_index: int,
) -> tuple[list[Violation], ShardStats]:
    """Validate one dependency on one shard (top-level: picklable)."""
    started = time.perf_counter()
    violations: list[Violation] = []
    matches = 0
    for node_id in shard:
        for match in find_homomorphisms(ged.pattern, graph, fixed={pivot: node_id}):
            matches += 1
            if not all(literal_holds(graph, l, match) for l in ged.X):
                continue
            failed = tuple(
                l for l in sorted(ged.Y, key=str) if not literal_holds(graph, l, match)
            )
            if failed:
                violations.append(Violation(ged, tuple(sorted(match.items())), failed))
    elapsed = time.perf_counter() - started
    stats = ShardStats(
        ged.name or "GED", shard_index, len(shard), matches, len(violations), elapsed
    )
    return violations, stats


def parallel_find_violations(
    graph: Graph,
    sigma: Sequence[GED],
    workers: int = 2,
    backend: str = "serial",
) -> ParallelValidationReport:
    """Find all violations of Σ in G with sharded evaluation.

    The returned violations are sorted (by dependency name, then match)
    so every backend and worker count yields the identical report.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    sigma = list(sigma)
    started = time.perf_counter()

    tasks: list[tuple[GED, str, tuple[str, ...], int]] = []
    for ged in sigma:
        plan = plan_shards(ged.pattern, graph, workers)
        for index, shard in enumerate(plan.shards):
            tasks.append((ged, plan.pivot, shard, index))

    results: list[tuple[list[Violation], ShardStats]] = []
    in_process = backend != "process" or workers == 1 or not tasks
    if backend == "serial" or workers == 1 or not tasks:
        for ged, pivot, shard, index in tasks:
            results.append(_run_shard(graph, ged, pivot, shard, index))
    else:
        executor: Executor
        if backend == "thread":
            executor = ThreadPoolExecutor(max_workers=workers)
        else:
            executor = ProcessPoolExecutor(max_workers=workers)
        with executor:
            futures = [
                executor.submit(_run_shard, graph, ged, pivot, shard, index)
                for ged, pivot, shard, index in tasks
            ]
            results = [future.result() for future in futures]

    violations: list[Violation] = []
    stats: list[ShardStats] = []
    for shard_violations, shard_stats in results:
        violations.extend(shard_violations)
        stats.append(shard_stats)
    violations.sort(key=lambda v: (v.ged.name or "", str(v.ged), v.match))
    stats.sort(key=lambda s: (s.ged_name, s.shard_index))
    return ParallelValidationReport(
        violations,
        stats,
        backend,
        workers,
        time.perf_counter() - started,
        # Only in-process shards (serial/thread) consult the shared
        # index; process workers unpickle private graphs and fall back,
        # so a process-pool run must not be reported as indexed.
        indexed=in_process and get_index(graph) is not None,
    )


def parallel_validates(
    graph: Graph,
    sigma: Sequence[GED],
    workers: int = 2,
    backend: str = "serial",
) -> bool:
    """G |= Σ via sharded evaluation (Theorem 6's decision problem)."""
    return parallel_find_violations(graph, sigma, workers, backend).valid


__all__ = [
    "ParallelValidationReport",
    "ShardStats",
    "parallel_find_violations",
    "parallel_validates",
]
