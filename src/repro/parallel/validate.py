"""Sharded (parallel) validation of GEDs on a data graph.

``parallel_find_violations`` distributes the work of
:func:`repro.reasoning.validation.find_violations` across shards of the
match space (see :mod:`repro.parallel.partition`) and merges the
results.  Five backends:

* ``"serial"`` — runs shards in-process, one after the other.  Zero
  overhead; the deterministic reference and the 1-worker baseline.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Python's GIL serializes the pure-Python matcher, so this measures
  pool overhead rather than speedup; kept because it exercises the
  same code path with true concurrency (thread-safety check) and
  because backends with C-level matchers would profit.
* ``"process"`` — real CPU parallelism via the
  :mod:`repro.engine` runtime: the graph (and the coordinator's index
  decision) is broadcast **once** as a compact snapshot when the pool
  starts, workers rebuild graph+index, and shards stream to them by
  reference.  The pool is torn down when the call returns.
* ``"engine"`` — the same runtime, but the pool is kept **warm** in
  the engine's graph-keyed registry: repeated validations of the same
  (unmutated) graph pay the broadcast exactly once.  This is the
  backend for serving workloads that revalidate after every batch.
* ``"fragment"`` — the data itself is partitioned: the graph is
  edge-cut into ``workers`` fragments (:mod:`repro.graph.fragments`)
  and each dependency runs fragment-locally wherever the
  ball-completeness rule guarantees exactness, with cut-crossing
  pivots escalated to one whole-graph residual pass.  In-process and
  deterministic; :class:`repro.engine.pool.FragmentPool` is the
  fragment-*resident* process variant whose per-worker broadcast is
  O(|G|/k + borders) instead of O(|G|).

All backends return identical, deterministically ordered violations —
a property the test suite asserts — because sharding by a pivot
variable partitions the match set exactly.

Index sharing: when a :mod:`repro.indexing` index is attached to the
graph, in-process shards (serial and thread backends) consult the
*same immutable* :class:`GraphIndexes` through the weak registry, and
the engine-backed backends broadcast the attachment decision so every
worker rebuilds and consults its own copy.  Either way the violation
sets are identical because candidate pruning is purely a necessary
condition.  ``ParallelValidationReport.indexed`` records whether the
shards (local or remote) ran indexed.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.deps.ged import GED
from repro.graph.fragments import Fragmentation, get_fragments
from repro.graph.graph import Graph
from repro.indexing.registry import get_index
from repro.matching.homomorphism import find_homomorphisms
from repro.matching.locality import pivot_radius, split_local_pivots
from repro.reasoning.validation import Violation, evaluate_match, x_literal_restrictions
from repro.telemetry import metrics as _metrics
from repro.telemetry import slowlog as _slowlog
from repro.telemetry.spans import span
from repro.parallel.partition import plan_pivot, plan_shards

_BACKENDS = ("serial", "thread", "process", "engine", "fragment")


@dataclass(frozen=True)
class ShardStats:
    """Work counters for one (dependency, shard) task."""

    ged_name: str
    shard_index: int
    candidates: int
    matches: int
    violations: int
    seconds: float


@dataclass
class ParallelValidationReport:
    """Merged violations plus per-shard accounting."""

    violations: list[Violation]
    stats: list[ShardStats] = field(default_factory=list)
    backend: str = "serial"
    workers: int = 1
    wall_seconds: float = 0.0
    indexed: bool = False

    @property
    def valid(self) -> bool:
        return not self.violations

    def total_matches(self) -> int:
        return sum(s.matches for s in self.stats)

    def max_shard_seconds(self) -> float:
        return max((s.seconds for s in self.stats), default=0.0)

    def balance(self) -> float:
        """Mean shard work / max shard work in matches (1.0 = perfectly
        balanced, → 0 = one shard did everything)."""
        works = [s.matches for s in self.stats]
        if not works or max(works) == 0:
            return 1.0
        return (sum(works) / len(works)) / max(works)


def run_shard(
    graph: Graph,
    ged: GED,
    pivot: str,
    shard: tuple[str, ...],
    shard_index: int,
) -> tuple[list[Violation], ShardStats]:
    """Validate one dependency on one shard (top-level: picklable).

    This is the kernel every backend shares — in-process shards call it
    directly, engine workers call it against their rebuilt graph.  The
    shard is enforced by *restricting* the pivot's candidate pool to
    the shard's ids in a single matcher invocation, which executes the
    pattern's compiled :class:`~repro.matching.plan.MatchPlan` — cached
    on the graph's view, so in-process shards and a warm worker's later
    shards all reuse one compilation (engine workers may even start
    with it pre-installed from the snapshot broadcast).  With an index
    attached the pools are additionally restricted to nodes that can
    satisfy X's constant literals (a necessary condition, so the
    violation set is unchanged — see
    :func:`~repro.reasoning.validation.x_literal_restrictions`).

    With telemetry enabled and a slow-plan threshold configured
    (:mod:`repro.telemetry.slowlog`), a shard that exceeds the
    threshold captures the executed plan's
    ``MatchPlan.explain(observed=True)`` into the slow-plan ring
    buffer — the plan is view-cached, so re-compiling to explain it is
    a lookup, and the observed frame counts are the ones this very
    workload accumulated.
    """
    started = time.perf_counter()
    restrict: dict[str, set[str]] = dict(x_literal_restrictions(graph, ged) or {})
    shard_pool = set(shard)
    restrict[pivot] = restrict[pivot] & shard_pool if pivot in restrict else shard_pool
    violations: list[Violation] = []
    matches = 0
    for match in find_homomorphisms(ged.pattern, graph, restrict=restrict):
        matches += 1
        failed = evaluate_match(graph, ged, match)
        if failed:
            violations.append(Violation(ged, tuple(sorted(match.items())), failed))
    elapsed = time.perf_counter() - started
    if _metrics.sink().enabled:
        threshold = _slowlog.slow_plan_threshold()
        if threshold is not None and elapsed >= threshold:
            from repro.matching.plan import compile_plan

            # The plan is cached on the graph's view — this is a lookup,
            # not a re-compilation — and its observed totals are the
            # ones this shard's execution just accumulated.
            plan = compile_plan(graph, ged.pattern)
            _slowlog.record_slow_plan(
                ged.name or "GED",
                elapsed,
                plan.explain(observed=True),
                pivot=pivot,
                shard_index=shard_index,
                shard_nodes=len(shard),
                matches=matches,
            )
    stats = ShardStats(
        ged.name or "GED", shard_index, len(shard), matches, len(violations), elapsed
    )
    return violations, stats


# Backwards-compatible private alias (the engine's worker entry point
# imports the public name; older call sites used the underscore form).
_run_shard = run_shard


def _run_sigma_batch(
    graph: Graph, sigma: "list[GED]"
) -> list[tuple[list[Violation], ShardStats]]:
    """The 1-worker serial kernel as one Σ-DAG pass.

    Semantically identical to running :func:`run_shard` once per rule
    over its full (single-shard) pivot pool: at one shard the pivot
    restriction is the rule's whole candidate pool, so the effective
    pools — and therefore the match stream — equal the X-restricted
    solo run the shared DAG reproduces leaf for leaf.  Accounting
    differences: every rule's ``ShardStats.seconds`` is the *batch's*
    shared wall clock (shared frames cannot be attributed to one rule),
    and the slow-plan hook does not fire (no per-rule elapsed exists).
    Rules whose pattern cannot match keep getting no stats row, exactly
    like the zero-shard plans they replace.
    """
    from repro.matching.sigma_dag import SigmaQuery, compile_sigma

    started = time.perf_counter()
    dag = compile_sigma(graph, [ged.pattern for ged in sigma])
    # Rules grouped by (pattern, restriction) share one query — and,
    # when no restriction applies, the DAG's cached whole-set trie.
    group_index: dict = {}
    queries: list[SigmaQuery] = []
    members: list[list[int]] = []
    for position, ged in enumerate(sigma):
        restrict = x_literal_restrictions(graph, ged)
        key = (
            ged.pattern,
            None
            if restrict is None
            else frozenset((var, frozenset(pool)) for var, pool in restrict.items()),
        )
        group = group_index.get(key)
        if group is None:
            group = group_index[key] = len(queries)
            queries.append(SigmaQuery(ged.pattern, restrict=restrict))
            members.append([])
        members[group].append(position)
    buckets: list[list[Violation]] = [[] for _ in sigma]
    match_counts = [0] * len(sigma)
    for group, match in dag.iter_matches(queries):
        items = None
        for position in members[group]:
            match_counts[position] += 1
            ged = sigma[position]
            failed = evaluate_match(graph, ged, match)
            if failed:
                if items is None:
                    items = tuple(sorted(match.items()))
                buckets[position].append(Violation(ged, items, failed))
    elapsed = time.perf_counter() - started
    results: list[tuple[list[Violation], ShardStats]] = []
    for position, ged in enumerate(sigma):
        _, pool = plan_pivot(ged.pattern, graph)
        if not pool:
            continue
        results.append(
            (
                buckets[position],
                ShardStats(
                    ged.name or "GED",
                    0,
                    len(pool),
                    match_counts[position],
                    len(buckets[position]),
                    elapsed,
                ),
            )
        )
    return results


def plan_fragment_pivots(
    graph: Graph, ged: GED, fragmentation: Fragmentation
) -> tuple[str, list[tuple[int, list[str]]], list[str]]:
    """Fragment-resident work for one dependency: the pivot variable,
    per-fragment locally decidable pivot lists, and the escalated rest.

    The pivot and its candidate pool come from the compiled
    :class:`~repro.matching.plan.MatchPlan` (the same choice
    :func:`~repro.parallel.partition.plan_shards` makes); ownership
    partitions the pool exactly, and within each fragment the
    ball-completeness rule (:func:`~repro.matching.locality.split_local_pivots`)
    keeps only pivots whose pattern-radius ball closes inside
    interior ∪ border — the rest ship back for a coordinator-side
    whole-graph pass.
    """
    pattern = ged.pattern
    pivot, pool = plan_pivot(pattern, graph)
    if not pool:
        return pivot, [], []
    radius = pivot_radius(pattern, pivot)
    # One pass over the pool via the owner map (not one pool scan per
    # fragment); the pool is ascending, so buckets stay sorted.
    by_fragment: dict[int, list[str]] = {}
    owner = fragmentation.owner
    for node_id in pool:
        by_fragment.setdefault(owner[node_id], []).append(node_id)
    per_fragment: list[tuple[int, list[str]]] = []
    escalated: list[str] = []
    for fragment_index in sorted(by_fragment):
        fragment = fragmentation.fragments[fragment_index]
        local, shipped = split_local_pivots(
            fragment.graph, fragment.interior, by_fragment[fragment_index], radius
        )
        if local:
            per_fragment.append((fragment.index, local))
        escalated.extend(shipped)
    return pivot, per_fragment, sorted(escalated)


def run_fragment_validation(
    graph: Graph,
    sigma: Sequence[GED],
    fragmentation: Fragmentation,
) -> list[tuple[list[Violation], ShardStats]]:
    """Validate Σ fragment-locally, escalating cut-crossing pivots.

    Each fragment-local call is the ordinary :func:`run_shard` kernel on
    the fragment's induced subgraph — the PR 4 plan executor unchanged,
    compiling (and caching) one plan per (fragment, pattern).  The
    escalation pass runs the same kernel once per dependency on the
    whole graph, restricted to the residual pivot set; the merged
    violations are exactly the serial backend's because ownership plus
    the ball-completeness rule partition the match space.
    """
    k = fragmentation.k
    sink = _metrics.sink()
    results: list[tuple[list[Violation], ShardStats]] = []
    for ged in sigma:
        pivot, per_fragment, escalated = plan_fragment_pivots(graph, ged, fragmentation)
        for fragment_index, pivots in per_fragment:
            fragment = fragmentation.fragments[fragment_index]
            sink.incr("fragment.pivots.local", len(pivots))
            frames_before = sink.counter_value("plan.frames_expanded")
            results.append(
                run_shard(fragment.graph, ged, pivot, tuple(pivots), fragment_index)
            )
            if sink.enabled:
                sink.incr(
                    f"fragment.frames_expanded.fragment{fragment_index}",
                    sink.counter_value("plan.frames_expanded") - frames_before,
                )
        if escalated:
            sink.incr("fragment.pivots.escalated", len(escalated))
            frames_before = sink.counter_value("plan.frames_expanded")
            # Shard index k = "the coordinator's escalation shard".
            results.append(run_shard(graph, ged, pivot, tuple(escalated), k))
            if sink.enabled:
                sink.incr(
                    "fragment.frames_expanded.coordinator",
                    sink.counter_value("plan.frames_expanded") - frames_before,
                )
    return results


def parallel_find_violations(
    graph: Graph,
    sigma: Sequence[GED],
    workers: int | None = None,
    backend: str = "serial",
    *,
    fragmentation: Fragmentation | None = None,
    fragment_mode: str = "hash",
) -> ParallelValidationReport:
    """Find all violations of Σ in G with sharded evaluation.

    ``workers=None`` defaults to one worker per available CPU (capped
    at ``os.cpu_count()``); explicit counts must be positive integers —
    zero or negative counts raise :class:`ValueError`.

    For the ``"fragment"`` backend ``workers`` doubles as the fragment
    count: the graph is edge-cut partitioned (``fragment_mode`` picks
    the partitioner; a prebuilt ``fragmentation`` overrides both) and
    each dependency is validated fragment-locally where the
    ball-completeness rule allows, with cut-crossing pivots escalated
    to one whole-graph residual pass.

    The returned violations are sorted (by dependency name, then match)
    so every backend and worker count yields the identical report.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    from repro.engine.pool import resolve_workers

    workers = resolve_workers(workers)
    sigma = list(sigma)
    started = time.perf_counter()

    with span("pvalidate", backend=backend, workers=workers, rules=len(sigma)):
        report = _dispatch_backend(graph, sigma, workers, backend, fragmentation, fragment_mode)
    report.wall_seconds = time.perf_counter() - started
    sink = _metrics.sink()
    if sink.enabled:
        sink.incr("validate.runs")
        sink.observe(
            "validate.wall_seconds", report.wall_seconds, _metrics.SECONDS_BOUNDS
        )
    return report


def _dispatch_backend(
    graph: Graph,
    sigma: list[GED],
    workers: int,
    backend: str,
    fragmentation: Fragmentation | None,
    fragment_mode: str,
) -> ParallelValidationReport:
    engine_backed = backend in ("process", "engine") and workers > 1 and bool(sigma)
    results: list[tuple[list[Violation], ShardStats]] = []
    indexed = False

    if backend == "fragment":
        if fragmentation is None:
            fragmentation = get_fragments(graph, workers, fragment_mode)
        elif fragmentation.source_version != graph.version:
            # Same guard FragmentPool.validate applies: fragment-local
            # shards on a stale partition merged with escalations on the
            # fresh graph would be neither pre- nor post-mutation.
            raise ValueError(
                f"fragmentation is stale: graph version {graph.version} != "
                f"partitioned version {fragmentation.source_version} "
                "(repartition, or drop the fragmentation= argument)"
            )
        results = run_fragment_validation(graph, sigma, fragmentation)
        indexed = get_index(graph) is not None
    elif engine_backed and backend == "engine":
        from repro.engine.pool import get_pool

        pool = get_pool(graph, workers, patterns=[ged.pattern for ged in sigma])
        units = pool.plan_validation(graph, sigma)
        if units:
            results = pool.validate_units(units)
        indexed = pool.indexed
    elif engine_backed:
        # "process" is one-shot *and private*: it builds its own pool
        # (cold broadcast) and closes it, never touching — or silently
        # reusing — a warm "engine" pool registered for this graph.
        from repro.engine.pool import EnginePool
        from repro.engine.scheduler import plan_tasks
        from repro.engine.snapshot import snapshot_graph

        units = plan_tasks(graph, sigma, workers)
        if units:
            pool = EnginePool(
                snapshot_graph(graph, patterns=[ged.pattern for ged in sigma]), workers
            )
            try:
                results = pool.validate_units(units)
                indexed = pool.indexed
            finally:
                pool.close()
        else:
            indexed = get_index(graph) is not None
    elif backend == "serial" and workers == 1 and len(sigma) > 1:
        # One worker, many rules: there is nothing to shard, so the
        # whole Σ runs as a single shared-prefix DAG pass instead of
        # one plan execution per rule (identical violations; each
        # rule's ShardStats carries the batch's shared wall clock).
        results = _run_sigma_batch(graph, sigma)
        indexed = get_index(graph) is not None
    else:
        tasks: list[tuple[GED, str, tuple[str, ...], int]] = []
        for ged in sigma:
            plan = plan_shards(ged.pattern, graph, workers)
            for index, shard in enumerate(plan.shards):
                tasks.append((ged, plan.pivot, shard, index))
        if backend == "thread" and workers > 1 and tasks:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                futures = [
                    executor.submit(run_shard, graph, ged, pivot, shard, index)
                    for ged, pivot, shard, index in tasks
                ]
                results = [future.result() for future in futures]
        else:
            for ged, pivot, shard, index in tasks:
                results.append(run_shard(graph, ged, pivot, shard, index))
        indexed = get_index(graph) is not None

    violations: list[Violation] = []
    stats: list[ShardStats] = []
    for shard_violations, shard_stats in results:
        violations.extend(shard_violations)
        stats.append(shard_stats)
    violations.sort(key=lambda v: (v.ged.name or "", str(v.ged), v.match))
    stats.sort(key=lambda s: (s.ged_name, s.shard_index))
    return ParallelValidationReport(
        violations,
        stats,
        backend,
        workers,
        0.0,  # stamped by the caller (wall includes the merge)
        indexed=indexed,
    )


def parallel_validates(
    graph: Graph,
    sigma: Sequence[GED],
    workers: int | None = None,
    backend: str = "serial",
) -> bool:
    """G |= Σ via sharded evaluation (Theorem 6's decision problem)."""
    return parallel_find_violations(graph, sigma, workers, backend).valid


__all__ = [
    "ParallelValidationReport",
    "ShardStats",
    "parallel_find_violations",
    "parallel_validates",
    "plan_fragment_pivots",
    "run_fragment_validation",
    "run_shard",
]
