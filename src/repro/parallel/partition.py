"""Sharding the match space of a pattern.

A match of Q[x̄] assigns the *pivot* variable one concrete node, so
partitioning the pivot's candidate set into k disjoint blocks partitions
the match set itself: every match lands in exactly one block (the one
holding its pivot image).  Enumerating each block independently with the
pivot pinned (the matcher's ``fixed`` parameter restricted to a shard's
candidates) and unioning results is therefore exact.

Pivot choice matters for balance: we pick the variable with the largest
candidate set, which yields the most granular partition (a pivot with 3
candidates cannot feed more than 3 workers).  Candidates are sorted and
dealt round-robin so shard sizes differ by at most one node; actual
match work per shard can still be skewed by the data — the per-shard
counters in :mod:`repro.parallel.validate` expose that skew.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.matching.plan import compile_plan
from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class ShardPlan:
    """How one pattern's match space is split across workers.

    ``pivot`` — the sharded variable; ``shards`` — disjoint candidate
    blocks whose union is the pivot's full candidate set.  Empty shards
    are dropped, so ``len(shards)`` ≤ the requested worker count.
    """

    pattern: Pattern
    pivot: str
    shards: tuple[tuple[str, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def total_candidates(self) -> int:
        return sum(len(shard) for shard in self.shards)


def plan_pivot(pattern: Pattern, graph: Graph) -> tuple[str, list[str]]:
    """The sharding pivot and its full candidate pool, in ascending id
    order — the single definition every shard planner uses (round-robin
    shards here, ownership partitions in the fragment planner).

    The pools come from the compiled MatchPlan — cached on the graph's
    view — so repeated shard planning (the scheduler per Σ rule, the
    fragment planner per fragment) never re-derives candidate sets.
    Canonical interning makes ascending slot order equal ascending id
    order, so no sort is paid.  When any variable's pool is empty the
    pattern cannot match: the returned pool is empty and the pivot is
    the (first) emptiest variable.
    """
    plan = compile_plan(graph, pattern)
    sizes = {variable: len(plan.pools_sorted[variable]) for variable in pattern.variables}
    if any(size == 0 for size in sizes.values()):
        return min(pattern.variables, key=lambda v: sizes[v]), []
    pivot = max(pattern.variables, key=lambda v: sizes[v])
    node_of = plan.view.node_of
    return pivot, [node_of[slot] for slot in plan.pools_sorted[pivot]]


def plan_shards(pattern: Pattern, graph: Graph, workers: int) -> ShardPlan:
    """Split ``pattern``'s match space in ``graph`` into ≤ ``workers`` shards.

    With an empty candidate set for the pivot (the pattern cannot match)
    the plan has zero shards and validation is trivially clean for this
    pattern.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    pivot, ordered = plan_pivot(pattern, graph)
    if not ordered:
        return ShardPlan(pattern, pivot, ())
    blocks: list[list[str]] = [[] for _ in range(min(workers, len(ordered)))]
    for index, node_id in enumerate(ordered):
        blocks[index % len(blocks)].append(node_id)
    return ShardPlan(pattern, pivot, tuple(tuple(block) for block in blocks))


__all__ = ["ShardPlan", "plan_pivot", "plan_shards"]
