"""Sharding the match space of a pattern.

A match of Q[x̄] assigns the *pivot* variable one concrete node, so
partitioning the pivot's candidate set into k disjoint blocks partitions
the match set itself: every match lands in exactly one block (the one
holding its pivot image).  Enumerating each block independently with the
pivot pinned (the matcher's ``fixed`` parameter restricted to a shard's
candidates) and unioning results is therefore exact.

Pivot choice matters for balance: we pick the variable with the largest
candidate set, which yields the most granular partition (a pivot with 3
candidates cannot feed more than 3 workers).  Candidates are sorted and
dealt round-robin so shard sizes differ by at most one node; actual
match work per shard can still be skewed by the data — the per-shard
counters in :mod:`repro.parallel.validate` expose that skew.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.matching.candidates import candidate_sets
from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class ShardPlan:
    """How one pattern's match space is split across workers.

    ``pivot`` — the sharded variable; ``shards`` — disjoint candidate
    blocks whose union is the pivot's full candidate set.  Empty shards
    are dropped, so ``len(shards)`` ≤ the requested worker count.
    """

    pattern: Pattern
    pivot: str
    shards: tuple[tuple[str, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def total_candidates(self) -> int:
        return sum(len(shard) for shard in self.shards)


def plan_shards(pattern: Pattern, graph: Graph, workers: int) -> ShardPlan:
    """Split ``pattern``'s match space in ``graph`` into ≤ ``workers`` shards.

    With an empty candidate set for the pivot (the pattern cannot match)
    the plan has zero shards and validation is trivially clean for this
    pattern.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    candidates = candidate_sets(pattern, graph)
    # Any variable with an empty candidate set kills all matches.
    if any(not pool for pool in candidates.values()):
        pivot = min(candidates, key=lambda v: len(candidates[v]))
        return ShardPlan(pattern, pivot, ())
    pivot = max(pattern.variables, key=lambda v: len(candidates[v]))
    ordered = sorted(candidates[pivot])
    blocks: list[list[str]] = [[] for _ in range(min(workers, len(ordered)))]
    for index, node_id in enumerate(ordered):
        blocks[index % len(blocks)].append(node_id)
    return ShardPlan(pattern, pivot, tuple(tuple(block) for block in blocks))


__all__ = ["ShardPlan", "plan_shards"]
