"""An exact, exponential satisfiability oracle by quotient enumeration.

Used as ground truth in tests (cross-checking the Theorem 2 chase
procedure) and as the reference semantics for the GDC / GED∨ search in
:mod:`repro.extensions.smallmodel`.

Why quotients suffice
---------------------
If Σ has a model M, fix one match h_i per pattern Q_i of Σ and restrict
M to the union of the images of the h_i, keeping only the *projected
pattern edges* ``(h_i(u), ι, h_i(u′))``.  Every h_i survives, and every
match of the restricted structure composes (via "class → common image")
into a match of M, so the restriction still satisfies Σ and still
matches every pattern — i.e. it is a model that is exactly a *quotient
of G_Σ*: a label-compatible partition of G_Σ's nodes with the pattern
edges projected onto class representatives, plus an attribute-value
assignment.  Attribute values can further be normalized: each value
either equals a constant of Σ or is "fresh", and only the equality
pattern among slots matters — so assignments range over
``ABSENT | constant-of-Σ | fresh-group-id``.

The search enumerates set partitions × normalized assignments and
validates each candidate with the ordinary validation procedure.  It is
doubly exponential-ish and intended for *tiny* inputs only (tests cap
|G_Σ| at ~5 nodes).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.chase.canonical import canonical_graph_of_sigma
from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, VariableLiteral
from repro.errors import ReductionError
from repro.graph.graph import Graph
from repro.patterns.labels import WILDCARD
from repro.reasoning.validation import validates

#: Marker for "this attribute slot is absent".
ABSENT = object()


def set_partitions(items: list) -> Iterator[list[list]]:
    """All set partitions of ``items`` (Bell-number many)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        for index in range(len(partition)):
            yield partition[:index] + [[first] + partition[index]] + partition[index + 1 :]
        yield [[first]] + partition


def _labels_compatible(labels: list[str]) -> bool:
    concrete = {l for l in labels if l != WILDCARD}
    return len(concrete) <= 1


def _quotient(canonical: Graph, partition: list[list[str]]) -> Graph | None:
    """The quotient graph of a partition, or None if labels conflict."""
    representative: dict[str, str] = {}
    quotient = Graph()
    for block in partition:
        labels = [canonical.node(n).label for n in block]
        if not _labels_compatible(labels):
            return None
        rep = min(block)
        concrete = {l for l in labels if l != WILDCARD}
        label = next(iter(concrete)) if concrete else WILDCARD
        quotient.add_node(rep, label)
        for member in block:
            representative[member] = rep
    for source, label, target in canonical.edges:
        quotient.add_edge(representative[source], label, representative[target])
    return quotient


def relevant_attributes(sigma: Sequence[GED]) -> list[str]:
    """Attribute names mentioned by any literal of Σ."""
    names: set[str] = set()
    for ged in sigma:
        for literal in ged.X | ged.Y:
            if isinstance(literal, ConstantLiteral):
                names.add(literal.attr)
            elif isinstance(literal, VariableLiteral):
                names.add(literal.attr1)
                names.add(literal.attr2)
    return sorted(names)


def sigma_constants(sigma: Sequence[GED]) -> list:
    values = set()
    for ged in sigma:
        for literal in ged.X | ged.Y:
            if isinstance(literal, ConstantLiteral):
                values.add(literal.const)
    return sorted(values, key=repr)


def _assignments(slots: list, constants: list) -> Iterator[dict]:
    """Normalized value assignments: ABSENT, a Σ-constant, or a fresh
    group id in restricted-growth form (group j may be used at slot i
    only if group j-1 was used before — kills symmetric duplicates)."""

    def recurse(index: int, current: dict, groups_used: int) -> Iterator[dict]:
        if index == len(slots):
            yield dict(current)
            return
        slot = slots[index]
        current[slot] = ABSENT
        yield from recurse(index + 1, current, groups_used)
        for value in constants:
            current[slot] = ("const", value)
            yield from recurse(index + 1, current, groups_used)
        for group in range(groups_used + 1):
            current[slot] = ("fresh", group)
            yield from recurse(index + 1, current, max(groups_used, group + 1))
        del current[slot]

    yield from recurse(0, {}, 0)


def _materialize(quotient: Graph, assignment: dict) -> Graph:
    """Attach the assigned values to a copy of the quotient graph."""
    graph = Graph()
    for node in quotient.nodes:
        attrs = {}
        for (node_id, attr), value in assignment.items():
            if node_id != node.id or value is ABSENT:
                continue
            kind, payload = value
            attrs[attr] = payload if kind == "const" else f"@fresh{payload}"
        graph.add_node(node.id, node.label, attrs)
    for edge in quotient.edges:
        graph.add_edge(*edge)
    return graph


def satisfiable_bruteforce(
    sigma: Sequence[GED], max_nodes: int = 6
) -> tuple[bool, Graph | None]:
    """Exact satisfiability by exhaustive quotient search.

    Returns ``(satisfiable, witness-model-or-None)``.  Raises
    :class:`ReductionError` if |G_Σ| exceeds ``max_nodes`` (the search
    is exponential; the cap prevents accidental blowups in tests).
    """
    sigma = list(sigma)
    if not sigma:
        g = Graph()
        g.add_node("n0", "anything")
        return True, g
    canonical, _ = canonical_graph_of_sigma(sigma)
    if canonical.num_nodes > max_nodes:
        raise ReductionError(
            f"brute-force oracle limited to {max_nodes} canonical nodes, "
            f"got {canonical.num_nodes}"
        )
    attrs = relevant_attributes(sigma)
    constants = sigma_constants(sigma)
    for partition in set_partitions(sorted(canonical.node_ids)):
        quotient = _quotient(canonical, partition)
        if quotient is None:
            continue
        slots = [(node_id, attr) for node_id in sorted(quotient.node_ids) for attr in attrs]
        for assignment in _assignments(slots, constants):
            candidate = _materialize(quotient, assignment)
            if validates(candidate, sigma):
                # Every pattern matches its own projection, so the model
                # condition (Section 5.1) holds by construction.
                return True, candidate
    return False, None
