"""The implication problem: Σ |= φ? (Section 5.2, Theorem 4).

Σ |= φ (for φ = Q[x̄](X → Y)) iff every finite graph satisfying Σ
satisfies φ.  Theorem 4 characterizes it via the chase of the canonical
graph G_Q of φ's pattern, started from Eq_X:

1. if ``chase(G_Q, Eq_X, Σ)`` is **inconsistent**, Σ |= φ — no match of
   Q in any graph satisfying Σ can satisfy X; or
2. if consistent, Σ |= φ iff every literal of **Y can be deduced** from
   the final relation: ``u = v`` is deduced when v ∈ [u] (including the
   id-literal semantics — merged nodes share attribute classes).

Implication is NP-complete for all five GED sub-classes (Theorem 5) —
even GFDxs, because checking deducibility requires enumerating
homomorphisms of Σ's patterns into G_Q.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.chase.canonical import canonical_graph, eq_from_literals, literal_entailed
from repro.chase.engine import ChaseResult, chase
from repro.deps.ged import GED
from repro.deps.literals import FALSE, Literal


@dataclass
class ImplicationResult:
    """Outcome of the Theorem 4 check, with the evidence."""

    implied: bool
    #: "inconsistent-X" (condition 1), "deduced" (condition 2), or
    #: "not-deduced".
    mode: str
    chase_result: ChaseResult | None = None
    missing: list[Literal] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.implied


def check_implication(sigma: Sequence[GED], phi: GED) -> ImplicationResult:
    """Theorem 4: chase G_Q from Eq_X by Σ, then deduce Y."""
    sigma = list(sigma)
    g_q = canonical_graph(phi.pattern)
    identity = {v: v for v in phi.pattern.variables}
    eq_x = eq_from_literals(g_q, sorted(phi.X, key=str), identity)
    if not eq_x.is_consistent:
        # Condition (1) with an inconsistent Eq_X to start with: no match
        # can satisfy X, so the implication holds vacuously.
        return ImplicationResult(True, "inconsistent-X")
    result = chase(g_q, sigma, initial_eq=eq_x)
    if not result.consistent:
        return ImplicationResult(True, "inconsistent-X", result)
    missing = [
        literal
        for literal in sorted(phi.Y, key=str)
        if not _deduced(result, literal, identity)
    ]
    if missing:
        return ImplicationResult(False, "not-deduced", result, missing)
    return ImplicationResult(True, "deduced", result)


def _deduced(result: ChaseResult, literal: Literal, identity) -> bool:
    if literal is FALSE:
        # false is deducible only from an inconsistent chase, handled above.
        return False
    return literal_entailed(result.eq, literal, identity)


def implies(sigma: Sequence[GED], phi: GED) -> bool:
    """Σ |= φ — the Theorem 5 decision problem."""
    return check_implication(sigma, phi).implied


def redundant_dependencies(sigma: Sequence[GED]) -> list[GED]:
    """Dependencies implied by the others — the paper's rule-optimization
    use case ("the implication analysis serves as an optimization
    strategy to get rid of redundant rules").

    Greedy: scan in order, keep a dependency only if not implied by the
    kept ones plus the not-yet-scanned ones.
    """
    sigma = list(sigma)
    redundant: list[GED] = []
    kept: list[GED] = []
    for index, ged in enumerate(sigma):
        context = kept + sigma[index + 1 :]
        if context and implies(context, ged):
            redundant.append(ged)
        else:
            kept.append(ged)
    return redundant


def minimal_cover(sigma: Sequence[GED]) -> list[GED]:
    """Σ minus its redundant dependencies (equivalent to Σ)."""
    drop = set(map(id, redundant_dependencies(sigma)))
    return [ged for ged in sigma if id(ged) not in drop]
