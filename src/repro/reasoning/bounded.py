"""The bounded-pattern-size tractable case (Section 5.3).

The satisfiability / implication / validation problems are intractable
in general, but become PTIME when every pattern has size at most a
predefined bound k: enumerating the matches of a k-bounded pattern in a
graph G costs O(|G|^k), polynomial for fixed k.  The paper motivates
the restriction empirically — 98% of real-life SPARQL patterns have ≤ 4
nodes and ≤ 5 edges.

This module is a thin, *checked* facade: each function verifies the
bound before delegating to the general procedure, so callers get a
typed guarantee that they are on the tractable fragment, and the
benchmarks (`bench_table1_validation`) can demonstrate the polynomial
scaling in |G| that Table 1 predicts for this case.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.deps.ged import GED
from repro.errors import DependencyError
from repro.graph.graph import Graph
from repro.reasoning.implication import check_implication
from repro.reasoning.satisfiability import check_satisfiability
from repro.reasoning.validation import Violation, find_violations

#: The paper's empirically-motivated default bound (Section 5.3).
DEFAULT_BOUND = 4


def check_bound(sigma: Iterable[GED], k: int) -> None:
    """Raise unless every pattern of Σ has size ≤ k."""
    for ged in sigma:
        if ged.pattern.size() > k:
            raise DependencyError(
                f"pattern of {ged.name or ged} has size {ged.pattern.size()} > bound {k}"
            )


def validate_bounded(
    graph: Graph, sigma: Sequence[GED], k: int = DEFAULT_BOUND, limit: int | None = None
) -> list[Violation]:
    """PTIME validation for k-bounded Σ (raises if the bound is violated)."""
    check_bound(sigma, k)
    return find_violations(graph, sigma, limit=limit)


def satisfiable_bounded(sigma: Sequence[GED], k: int = DEFAULT_BOUND) -> bool:
    """PTIME satisfiability for k-bounded Σ."""
    check_bound(sigma, k)
    return check_satisfiability(sigma).satisfiable


def implies_bounded(sigma: Sequence[GED], phi: GED, k: int = DEFAULT_BOUND) -> bool:
    """PTIME implication for k-bounded Σ and φ."""
    check_bound(list(sigma) + [phi], k)
    return check_implication(sigma, phi).implied
