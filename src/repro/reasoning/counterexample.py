"""Counterexample construction for failed implications.

Theorem 4's proof is constructive in both directions.  When
``chase(G_Q, Eq_X, Σ)`` is consistent but some literal of Y cannot be
deduced, the terminal chase state *is* a counterexample in the making:
concretizing its coercion graph (fresh label for wildcards, fresh
distinct values for constant-free attribute classes — exactly the
Theorem 2 model construction of
:func:`repro.reasoning.satisfiability.concretize`) yields a finite
graph G_h with

* G_h |= Σ — the chase ran to a fixpoint, so every GED of Σ holds
  (Theorem 1), and concretization cannot create new rule firings:
  fresh values are distinct from every constant of Σ and distinct
  across classes;
* G_h ̸|= φ — the identity match (pattern variable ↦ its Eq-class
  representative) satisfies X (loaded into Eq_X) but fails the
  underivable literals of Y: distinct attribute classes receive
  distinct values, and distinct node classes are distinct nodes.

This is the small-model witness behind the NP upper bound of Theorem 5
(the paper's Σp2 analogue for GDCs explicitly bounds |G_h| ≤
2·|φ|·(|φ|+|Σ|+1)²).  The construction is verified, not trusted:
:func:`find_counterexample` re-validates both bullets before returning.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.deps.ged import GED
from repro.deps.literals import FALSE, Literal
from repro.errors import ChaseError
from repro.graph.graph import Graph
from repro.reasoning.implication import ImplicationResult, check_implication
from repro.reasoning.satisfiability import concretize
from repro.reasoning.validation import literal_holds, validates


@dataclass
class Counterexample:
    """A verified witness that Σ does not imply φ.

    ``graph`` satisfies Σ but not φ; ``match`` is the violating match
    (pattern variable → node id) that satisfies X and fails ``failed``.
    """

    graph: Graph
    match: dict[str, str]
    failed: list[Literal]
    implication: ImplicationResult

    def size(self) -> int:
        return self.graph.size()


def find_counterexample(sigma: Sequence[GED], phi: GED) -> Counterexample | None:
    """A finite graph G with G |= Σ and G ̸|= φ, or None if Σ |= φ.

    The witness is built from the Theorem 4 chase and re-verified
    against the actual validation semantics; a verification failure
    (which would mean the chase and the semantics disagree) raises
    :class:`ChaseError` rather than returning a wrong answer.
    """
    sigma = list(sigma)
    outcome = check_implication(sigma, phi)
    if outcome.implied:
        return None
    assert outcome.chase_result is not None  # not-deduced implies a chase ran

    graph = concretize(outcome.chase_result, sigma + [phi])
    eq = outcome.chase_result.eq
    match = {v: eq.node_representative(v) for v in phi.pattern.variables}

    # -- verify: the witness match satisfies X and fails exactly the
    #    underivable literals --------------------------------------------
    for literal in phi.X:
        if not literal_holds(graph, literal, match):
            raise ChaseError(
                f"counterexample verification failed: X-literal {literal} "
                "does not hold on the concretized witness"
            )
    failed = [
        literal
        for literal in sorted(phi.Y, key=str)
        if literal is FALSE or not literal_holds(graph, literal, match)
    ]
    if not failed:
        raise ChaseError(
            "counterexample verification failed: every Y-literal holds "
            "on the concretized witness"
        )

    # -- verify: the witness is a model of Σ -----------------------------
    if not validates(graph, sigma):
        raise ChaseError(
            "counterexample verification failed: the witness violates Σ"
        )

    return Counterexample(graph, match, failed, outcome)


def implication_with_witness(
    sigma: Sequence[GED], phi: GED
) -> tuple[bool, Counterexample | None]:
    """Σ |= φ together with the disproving witness when it fails."""
    witness = find_counterexample(sigma, phi)
    return witness is None, witness


__all__ = ["Counterexample", "find_counterexample", "implication_with_witness"]
