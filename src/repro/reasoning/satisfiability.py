"""The satisfiability problem (Section 5.1, Theorem 2).

A *model* of Σ is a graph G with (a) G |= Σ and (b) a match for the
pattern of every dependency of Σ — the strong notion that ensures the
dependencies are jointly sensible before they are used as cleaning
rules.

Theorem 2: Σ is satisfiable iff ``chase(G_Σ, Σ)`` is consistent, where
G_Σ is the disjoint union of Σ's patterns.  Beyond the decision
procedure this module implements the model *construction* from the
theorem's proof: take the final coercion, replace the special label
``_`` with a label not occurring in Σ, give every constant-bearing
attribute class its constant, and give every remaining attribute class
a globally fresh value (distinct classes, distinct values, none equal
to any constant of Σ).  The resulting concrete graph is a model, which
the test suite verifies with the validation procedure.

Satisfiability is coNP-complete for GEDs / GFDs / GKeys / GEDxs and
O(1) for GFDxs (Theorem 3): without constant and id literals no chase
step can conflict, so :func:`is_satisfiable` short-circuits to True.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.chase.canonical import canonical_graph_of_sigma
from repro.chase.engine import ChaseResult, chase
from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral
from repro.graph.graph import Graph
from repro.patterns.labels import WILDCARD
from repro.utils.naming import NameSupply, fresh_value


@dataclass
class SatisfiabilityResult:
    """Outcome of the Theorem 2 check, with the evidence."""

    satisfiable: bool
    chase_result: ChaseResult | None
    canonical: Graph | None
    reason: str | None = None

    def __bool__(self) -> bool:
        return self.satisfiable


def gfdx_shortcut_applies(sigma: Sequence[GED]) -> bool:
    """Whether Σ is a set of GFDxs (satisfiability is O(1), Theorem 3)."""
    return all(ged.is_gfdx for ged in sigma)


def check_satisfiability(sigma: Sequence[GED], use_shortcut: bool = True) -> SatisfiabilityResult:
    """Theorem 2: chase the canonical graph G_Σ by Σ.

    ``use_shortcut=False`` disables the O(1) GFDx fast path (the
    benchmarks exercise both).
    """
    sigma = list(sigma)
    if not sigma:
        return SatisfiabilityResult(True, None, None, reason="empty Σ: any single node is a model")
    if use_shortcut and gfdx_shortcut_applies(sigma):
        return SatisfiabilityResult(True, None, None, reason="GFDx set: O(1) (Theorem 3)")
    canonical, _ = canonical_graph_of_sigma(sigma)
    result = chase(canonical, sigma)
    if result.consistent:
        return SatisfiabilityResult(True, result, canonical)
    return SatisfiabilityResult(False, result, canonical, reason=result.reason)


def is_satisfiable(sigma: Sequence[GED], use_shortcut: bool = True) -> bool:
    return check_satisfiability(sigma, use_shortcut=use_shortcut).satisfiable


def build_model(sigma: Sequence[GED]) -> Graph | None:
    """A concrete model of Σ, or None if Σ is unsatisfiable.

    Implements the model construction of the Theorem 2 proof (see the
    module docstring).  The returned graph satisfies Σ and matches every
    pattern of Σ — asserted by ``tests/reasoning/test_satisfiability``.
    """
    sigma = list(sigma)
    if not sigma:
        g = Graph()
        g.add_node("n0", "anything")
        return g
    outcome = check_satisfiability(sigma, use_shortcut=False)
    if not outcome.satisfiable:
        return None
    assert outcome.chase_result is not None
    return concretize(outcome.chase_result, sigma)


def concretize(chase_result: ChaseResult, sigma: Sequence[GED]) -> Graph:
    """Turn a valid chase result into a concrete graph.

    * ``_`` labels become one fresh label not occurring in Σ (pattern
      wildcards still match it; concrete pattern labels still do not);
    * every attribute class carrying a constant keeps the constant;
    * every generated attribute class without a constant receives a
      fresh value — one per class, distinct across classes, distinct
      from every constant of Σ (so no X-literal accidentally fires).
    """
    eq = chase_result.eq
    coerced = chase_result.graph
    labels_in_sigma: set[str] = set()
    constants_in_sigma: set[object] = set()
    for ged in sigma:
        labels_in_sigma.update(ged.pattern.labels.values())
        for literal in ged.X | ged.Y:
            if isinstance(literal, ConstantLiteral):
                constants_in_sigma.add(literal.const)
    fresh_label = NameSupply(labels_in_sigma, prefix="label_").fresh()

    class_values: dict[object, object] = {}
    next_index = 0
    result = Graph()
    for node in coerced.nodes:
        label = fresh_label if node.label == WILDCARD else node.label
        attrs = {}
        for attr_name, value in node.attributes.items():
            if value is not None:
                attrs[attr_name] = value
                continue
            class_id = eq.attr_class_id(node.id, attr_name)
            if class_id not in class_values:
                class_values[class_id] = fresh_value(constants_in_sigma, next_index)
                next_index += 1
            attrs[attr_name] = class_values[class_id]
        result.add_node(node.id, label, attrs)
    for source, edge_label, target in coerced.edges:
        result.add_edge(
            source,
            fresh_label if edge_label == WILDCARD else edge_label,
            target,
        )
    return result
