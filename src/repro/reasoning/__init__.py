"""Reasoning about GEDs: satisfiability, implication, validation (Section 5)."""

from repro.reasoning.bounded import (
    DEFAULT_BOUND,
    check_bound,
    implies_bounded,
    satisfiable_bounded,
    validate_bounded,
)
from repro.reasoning.bruteforce import satisfiable_bruteforce, set_partitions
from repro.reasoning.counterexample import (
    Counterexample,
    find_counterexample,
    implication_with_witness,
)
from repro.reasoning.implication import (
    ImplicationResult,
    check_implication,
    implies,
    minimal_cover,
    redundant_dependencies,
)
from repro.reasoning.satisfiability import (
    SatisfiabilityResult,
    build_model,
    check_satisfiability,
    concretize,
    is_satisfiable,
)
from repro.reasoning.validation import (
    Violation,
    evaluate_match,
    find_violations,
    is_model,
    literal_holds,
    matches_all_patterns,
    satisfies_ged,
    validates,
)

__all__ = [
    "Counterexample",
    "find_counterexample",
    "implication_with_witness",
    "DEFAULT_BOUND",
    "ImplicationResult",
    "SatisfiabilityResult",
    "Violation",
    "build_model",
    "check_bound",
    "check_implication",
    "check_satisfiability",
    "concretize",
    "evaluate_match",
    "find_violations",
    "implies",
    "implies_bounded",
    "is_model",
    "is_satisfiable",
    "literal_holds",
    "matches_all_patterns",
    "minimal_cover",
    "redundant_dependencies",
    "satisfiable_bounded",
    "satisfiable_bruteforce",
    "satisfies_ged",
    "set_partitions",
    "validate_bounded",
    "validates",
]
