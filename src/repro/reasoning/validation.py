"""The validation problem: does G |= Σ? (Section 5.3).

``G |= Q[x̄](X → Y)`` iff every match h of Q in G with h(x̄) |= X also
satisfies Y.  Literal satisfaction on a data graph follows Section 3:

* ``x.A = c`` — attribute A *exists* at h(x) and equals c;
* ``x.A = y.B`` — both attributes exist and their values agree;
* ``x.id = y.id`` — h(x) and h(y) are the same node;
* ``false`` — never satisfied.

Validation is coNP-complete in general (Theorem 6) because a pattern
can have exponentially many matches; for patterns of bounded size it is
PTIME (Section 5.3, wrapped by :mod:`repro.reasoning.bounded`).  Beyond
the decision problem, :func:`find_violations` returns *witnesses* —
(dependency, match, failed literals) triples — which is what the data
quality applications (Example 1) consume.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from functools import lru_cache

from repro.deps.ged import GED
from repro.deps.literals import (
    FALSE,
    ConstantLiteral,
    IdLiteral,
    Literal,
    VariableLiteral,
)
from repro.graph.graph import Graph
from repro.indexing.registry import get_index
from repro.matching.plan import compile_plan
from repro.matching.sigma_dag import SigmaQuery, compile_sigma
from repro.telemetry.spans import span


def literal_holds(graph: Graph, literal: Literal, match: Mapping[str, str]) -> bool:
    """h(x̄) |= l on a concrete data graph."""
    if isinstance(literal, ConstantLiteral):
        node = graph.node(match[literal.var])
        return node.has_attribute(literal.attr) and node.get(literal.attr) == literal.const
    if isinstance(literal, VariableLiteral):
        node1 = graph.node(match[literal.var1])
        node2 = graph.node(match[literal.var2])
        if not node1.has_attribute(literal.attr1) or not node2.has_attribute(literal.attr2):
            return False
        return node1.get(literal.attr1) == node2.get(literal.attr2)
    if isinstance(literal, IdLiteral):
        return match[literal.var1] == match[literal.var2]
    if literal is FALSE:
        return False
    raise TypeError(f"unknown literal {literal!r}")


def evaluate_match(
    graph: Graph, ged: GED, match: Mapping[str, str]
) -> tuple[Literal, ...] | None:
    """The violation verdict for one match: the (non-empty, sorted-by-
    ``str``) tuple of failed Y literals when h(x̄) |= X and some Y
    literal fails, else ``None``.

    Every violation-producing path — full validation, sharded shards,
    the one-shot incremental scan, the streaming delta kernel and the
    ledger's re-checks — funnels through this single evaluation, so the
    byte-identity guarantees between them (same failed sets, same
    ordering) rest on one definition.
    """
    if ged.X and not all(literal_holds(graph, l, match) for l in ged.X):
        return None
    failed = [l for l in _sorted_y(ged) if not literal_holds(graph, l, match)]
    return tuple(failed) if failed else None


@lru_cache(maxsize=4096)
def _sorted_y(ged: GED) -> tuple[Literal, ...]:
    """Y in report order, computed once per dependency: the sort is
    per-rule-constant, and ``evaluate_match`` runs once per candidate
    match — re-sorting there dominated dense-match validations."""
    return tuple(sorted(ged.Y, key=str))


@dataclass(frozen=True)
class Violation:
    """A witness that G does not satisfy a dependency.

    ``match`` satisfies the dependency's X but fails ``failed`` ⊆ Y.
    """

    ged: GED
    match: tuple[tuple[str, str], ...]
    failed: tuple[Literal, ...]

    @property
    def assignment(self) -> dict[str, str]:
        return dict(self.match)

    def __str__(self) -> str:
        failed = ", ".join(sorted(str(l) for l in self.failed))
        where = ", ".join(f"{v}->{n}" for v, n in self.match)
        return f"violation of {self.ged.name or 'GED'} at [{where}]: fails {failed}"


def x_literal_restrictions(graph: Graph, ged: GED) -> dict[str, set[str]] | None:
    """Candidate pools implied by Σ's precondition, via the index.

    A match is a violation only if every literal of X holds; for a
    constant literal ``x.A = c`` that means h(x) lies in the attribute
    inverted index's posting list for ``(A, c)``.  Restricting the
    search to those pools skips matches where X cannot hold — matches
    the violation scan would discard anyway — so the violation set is
    preserved exactly.  Returns ``None`` when no index is attached or no
    literal is indexable (unhashable-valued attributes report "unknown"
    and impose nothing).
    """
    index = get_index(graph)
    if index is None:
        return None
    restrict: dict[str, set[str]] = {}
    for literal in ged.X:
        if not isinstance(literal, ConstantLiteral):
            continue
        pool = index.nodes_with_attr_value(literal.attr, literal.const)
        if pool is None:
            continue
        current = restrict.get(literal.var)
        restrict[literal.var] = set(pool) if current is None else current & pool
    return restrict or None


def find_violations(
    graph: Graph,
    sigma: Iterable[GED],
    limit: int | None = None,
) -> list[Violation]:
    """All (up to ``limit``) violations of Σ in G.

    Plan-compiled: each dependency's pattern is compiled once per
    (graph version, index attachment) into a
    :class:`~repro.matching.plan.MatchPlan` — shared through the view
    registry with every other consumer of the same pattern, so repeated
    validations of an unmutated graph pay zero recompilation.  The
    X-literal restriction pools of :func:`x_literal_restrictions` enter
    the plan as its attr-filter stage.  Index-aware: with a
    :mod:`repro.indexing` index attached the compiled candidate pools
    are the pruner's and the attr filters actually bite; the returned
    violations are identical either way.

    Multi-rule full scans (``limit is None``, more than one dependency)
    run as **one Σ-DAG pass** (:func:`~repro.matching.sigma_dag.compile_sigma`):
    shared pattern prefixes across Σ are enumerated once and each
    emitted match is evaluated against its own rule's literals.  The
    per-dependency violation lists — and their concatenation order —
    are byte-identical to the per-rule loop.  Limited scans keep the
    per-rule loop: ``validates`` stops at the first violation, and a
    whole-Σ walk would do strictly more work than the solo plan.
    """
    sigma = list(sigma)
    if limit is None and len(sigma) > 1:
        return _sigma_find_violations(graph, sigma)
    violations: list[Violation] = []
    for position, ged in enumerate(sigma):
        with span("validate.dep", dep=ged.name or f"#{position}"):
            restrict = x_literal_restrictions(graph, ged)
            plan = compile_plan(graph, ged.pattern)
            for match in plan.matches(restrict=restrict):
                failed = evaluate_match(graph, ged, match)
                if failed:
                    violations.append(
                        Violation(ged, tuple(sorted(match.items())), failed)
                    )
                    if limit is not None and len(violations) >= limit:
                        return violations
    return violations


def _sigma_find_violations(graph: Graph, sigma: "list[GED]") -> list[Violation]:
    """The Σ-batched full scan: one shared-DAG walk, per-rule buckets.

    Rules are grouped by (pattern, restriction): literal variants over
    one skeleton share a *single* query — the DAG enumerates their
    common stream once and each emitted match is evaluated against
    every rule in the group.  (With no index attached every restriction
    is ``None``, so the query set collapses to the DAG's deduplicated
    pattern tuple and the walk reuses the cached whole-set trie.)
    Matches arrive interleaved across groups, so violations are
    bucketed per rule and concatenated in Σ order — the exact output of
    the per-rule loop, because each rule's match subsequence is its
    solo stream.
    """
    dag = compile_sigma(graph, [ged.pattern for ged in sigma])
    group_index: dict = {}
    queries: list[SigmaQuery] = []
    members: list[list[int]] = []  # query position -> rule positions
    for position, ged in enumerate(sigma):
        restrict = x_literal_restrictions(graph, ged)
        key = (
            ged.pattern,
            None
            if restrict is None
            else frozenset((var, frozenset(pool)) for var, pool in restrict.items()),
        )
        group = group_index.get(key)
        if group is None:
            group = group_index[key] = len(queries)
            queries.append(SigmaQuery(ged.pattern, restrict=restrict))
            members.append([])
        members[group].append(position)
    buckets: list[list[Violation]] = [[] for _ in sigma]
    with span("validate.sigma", rules=len(sigma)):
        for group, match in dag.iter_matches(queries):
            items = None
            for position in members[group]:
                ged = sigma[position]
                failed = evaluate_match(graph, ged, match)
                if failed:
                    if items is None:
                        items = tuple(sorted(match.items()))
                    buckets[position].append(Violation(ged, items, failed))
    return [violation for bucket in buckets for violation in bucket]


def validates(graph: Graph, sigma: Iterable[GED], **_ignored) -> bool:
    """G |= Σ — the Theorem 6 decision problem."""
    return not find_violations(graph, sigma, limit=1)


def satisfies_ged(graph: Graph, ged: GED) -> bool:
    """G |= φ for a single dependency."""
    return validates(graph, [ged])


def matches_all_patterns(graph: Graph, sigma: Iterable[GED]) -> bool:
    """Whether every pattern of Σ has a match in G — the second half of
    the *model* condition of Section 5.1 (strong satisfiability)."""
    from repro.matching.homomorphism import has_match

    return all(has_match(ged.pattern, graph) for ged in sigma)


def is_model(graph: Graph, sigma: Sequence[GED]) -> bool:
    """Whether G is a model of Σ: G |= Σ and every pattern matches."""
    return matches_all_patterns(graph, sigma) and validates(graph, sigma)
