"""Incremental validation under graph updates.

Validation is the workhorse of GED-based cleaning, and production
graphs change continuously.  Re-validating from scratch after every
update wastes the coNP-ish match enumeration on the unchanged part of
the graph; but a GED violation introduced by an update must involve a
*changed element* — a new/updated node or an endpoint of a new edge —
in the image of its match (matches that existed before and avoided the
changed elements evaluated exactly the same before the update, and the
update cannot change their literal values).

:func:`apply_update` applies a validated batch of node/edge/attribute
additions and deletions (see :mod:`repro.graph.update` for the batch
semantics); :func:`incremental_violations` then enumerates, per
dependency, only the matches that touch the changed nodes (by pinning
each pattern variable to each changed node in turn), deduplicates, and
evaluates X → Y on those.  The result equals "new violations introduced
by the update" (violations already present before may of course also
touch changed nodes and be re-reported; callers diff against their
ledger).  The delta argument extends to deletions: removing an edge or
node only destroys matches, and removing an attribute only changes
literal values at the touched node — so every *introduced* violation
still has a touched element in its image, and every *retired* one is
found by re-checking exactly the ledger entries whose embedding meets
the touched set.

This one-shot helper keeps the callers-diff contract; the maintained,
delta-emitting service built on the same argument — exact introduced
*and* retired sets per batch — is :class:`repro.streaming.ViolationLedger`.

This realizes the "practical special cases" direction of the paper's
conclusion in the engineering sense: same semantics, work proportional
to the update's neighborhood.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.graph.update import GraphUpdate
from repro.matching.homomorphism import find_homomorphisms
from repro.reasoning.validation import Violation, evaluate_match, literal_holds


def apply_update(graph: Graph, update: GraphUpdate) -> Graph:
    """Apply the update in place (returns the same graph for chaining).

    The whole batch is validated up front (see
    :func:`repro.graph.update.validate_update`): a bad element raises
    :class:`~repro.errors.GraphError` before anything mutates, so the
    graph is never left half-updated.  Index-aware: when a synced
    :mod:`repro.indexing` index is attached to the graph, the batch is
    routed through the index maintenance layer so the index is patched
    in place (dirty-region work proportional to the batch) instead of
    going stale.  Deletions (``del_nodes`` / ``del_edges`` /
    ``del_attrs``) are applied first, additions second — and either way
    the graph's mutation counter advances, retiring any warm
    :mod:`repro.engine` pool whose broadcast snapshot predates the
    batch.
    """
    from repro.indexing.maintenance import apply_update_indexed

    return apply_update_indexed(graph, update)


def incremental_violations(
    graph: Graph,
    sigma: Iterable[GED],
    update: GraphUpdate,
    limit: int | None = None,
) -> list[Violation]:
    """Violations whose match touches the update (post-application).

    ``graph`` must already have the update applied.  Sound and complete
    for *newly introduced* violations: any match that avoids all
    touched nodes existed, with identical literal values, before the
    update.
    """
    from repro.reasoning.validation import x_literal_restrictions

    touched = update.touched_nodes()
    violations: list[Violation] = []
    seen: set[tuple[int, tuple[tuple[str, str], ...]]] = set()
    for index, ged in enumerate(sigma):
        restrict = x_literal_restrictions(graph, ged)
        for variable in ged.pattern.variables:
            for node_id in touched:
                if not graph.has_node(node_id):
                    continue
                for match in find_homomorphisms(
                    ged.pattern, graph, fixed={variable: node_id}, restrict=restrict
                ):
                    key = (index, tuple(sorted(match.items())))
                    if key in seen:
                        continue
                    seen.add(key)
                    failed = evaluate_match(graph, ged, match)
                    if failed:
                        violations.append(
                            Violation(ged, tuple(sorted(match.items())), failed)
                        )
                        if limit is not None and len(violations) >= limit:
                            return violations
    return violations


@dataclass
class IncrementalLedger:
    """Tracks known violations across updates (the one-shot helper).

    ``refresh`` ingests newly detected violations and reports which are
    genuinely new; violations whose matches disappeared (e.g. an
    attribute overwrite fixed them) are retired lazily by re-checking
    their matches.  For the maintained, exact-delta service — retired
    and updated sets per batch, engine-pooled delta path, byte-identity
    with full revalidation — use
    :class:`repro.streaming.ViolationLedger` instead; this class keeps
    the simpler additive-era contract for callers that only need
    "what's new since my last refresh".
    """

    graph: Graph
    sigma: list[GED]
    known: set[Violation] = field(default_factory=set)

    def bootstrap(self) -> list[Violation]:
        from repro.reasoning.validation import find_violations

        initial = find_violations(self.graph, self.sigma)
        self.known = set(initial)
        return initial

    def refresh(self, update: GraphUpdate) -> list[Violation]:
        """Apply an update; return violations new since the last call."""
        apply_update(self.graph, update)
        self._retire_stale()
        fresh = incremental_violations(self.graph, self.sigma, update)
        new = [v for v in fresh if v not in self.known]
        self.known.update(new)
        return new

    def _retire_stale(self) -> None:
        still_valid: set[Violation] = set()
        for violation in self.known:
            match = violation.assignment
            if not all(self.graph.has_node(n) for n in match.values()):
                continue
            x_holds = all(literal_holds(self.graph, l, match) for l in violation.ged.X)
            failed = any(
                not literal_holds(self.graph, l, match)
                for l in violation.ged.Y
            )
            from repro.matching.homomorphism import is_homomorphism

            if x_holds and failed and is_homomorphism(violation.ged.pattern, self.graph, match):
                still_valid.add(violation)
        self.known = still_valid


#: Backwards-compatible alias — the class predates (and shares a name
#: with) the streaming subsystem's exact-delta ledger; new code should
#: say :class:`IncrementalLedger` or use
#: :class:`repro.streaming.ViolationLedger`.
ViolationLedger = IncrementalLedger
