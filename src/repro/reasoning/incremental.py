"""Incremental validation under graph updates.

Validation is the workhorse of GED-based cleaning, and production
graphs change continuously.  Re-validating from scratch after every
update wastes the coNP-ish match enumeration on the unchanged part of
the graph; but a GED violation introduced by an update must involve a
*changed element* — a new/updated node or an endpoint of a new edge —
in the image of its match (matches that existed before and avoided the
changed elements evaluated exactly the same before the update, and the
update cannot change their literal values).

:func:`apply_update` applies a batch of node/edge/attribute additions;
:func:`incremental_violations` then enumerates, per dependency, only
the matches that touch the changed nodes (by pinning each pattern
variable to each changed node in turn), deduplicates, and evaluates
X → Y on those.  The result equals "new violations introduced by the
update" (violations already present before may of course also touch
changed nodes and be re-reported; callers diff against their ledger).

This realizes the "practical special cases" direction of the paper's
conclusion in the engineering sense: same semantics, work proportional
to the update's neighborhood.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.deps.ged import GED
from repro.graph.graph import Graph, Value
from repro.matching.homomorphism import find_homomorphisms
from repro.reasoning.validation import Violation, literal_holds


@dataclass
class GraphUpdate:
    """A batch of additions/overwrites to apply to a graph.

    * ``nodes`` — (id, label, attrs) for new nodes;
    * ``edges`` — (source, label, target) for new edges;
    * ``attrs`` — (node id, attribute, value) for attribute writes.
    """

    nodes: Sequence[tuple[str, str, Mapping[str, Value]]] = ()
    edges: Sequence[tuple[str, str, str]] = ()
    attrs: Sequence[tuple[str, str, Value]] = ()

    def touched_nodes(self) -> set[str]:
        """Every node id whose presence, attributes or incident edges
        are affected by the update."""
        touched = {node_id for node_id, _, _ in self.nodes}
        touched |= {node_id for node_id, _, _ in self.attrs}
        for source, _, target in self.edges:
            touched.add(source)
            touched.add(target)
        return touched


def apply_update(graph: Graph, update: GraphUpdate) -> Graph:
    """Apply the update in place (returns the same graph for chaining).

    Index-aware: when a synced :mod:`repro.indexing` index is attached
    to the graph, the batch is routed through the index maintenance
    layer so the index is patched in place (dirty-region work
    proportional to the batch) instead of going stale.
    """
    from repro.indexing.maintenance import apply_update_indexed

    return apply_update_indexed(graph, update)


def incremental_violations(
    graph: Graph,
    sigma: Iterable[GED],
    update: GraphUpdate,
    limit: int | None = None,
) -> list[Violation]:
    """Violations whose match touches the update (post-application).

    ``graph`` must already have the update applied.  Sound and complete
    for *newly introduced* violations: any match that avoids all
    touched nodes existed, with identical literal values, before the
    update.
    """
    from repro.reasoning.validation import x_literal_restrictions

    touched = update.touched_nodes()
    violations: list[Violation] = []
    seen: set[tuple[int, tuple[tuple[str, str], ...]]] = set()
    for index, ged in enumerate(sigma):
        restrict = x_literal_restrictions(graph, ged)
        for variable in ged.pattern.variables:
            for node_id in touched:
                if not graph.has_node(node_id):
                    continue
                for match in find_homomorphisms(
                    ged.pattern, graph, fixed={variable: node_id}, restrict=restrict
                ):
                    key = (index, tuple(sorted(match.items())))
                    if key in seen:
                        continue
                    seen.add(key)
                    if not all(literal_holds(graph, l, match) for l in ged.X):
                        continue
                    failed = tuple(
                        l for l in sorted(ged.Y, key=str)
                        if not literal_holds(graph, l, match)
                    )
                    if failed:
                        violations.append(
                            Violation(ged, tuple(sorted(match.items())), failed)
                        )
                        if limit is not None and len(violations) >= limit:
                            return violations
    return violations


@dataclass
class ViolationLedger:
    """Tracks known violations across updates.

    ``refresh`` ingests newly detected violations and reports which are
    genuinely new; violations whose matches disappeared (e.g. an
    attribute overwrite fixed them) are retired lazily by re-checking
    their matches.
    """

    graph: Graph
    sigma: list[GED]
    known: set[Violation] = field(default_factory=set)

    def bootstrap(self) -> list[Violation]:
        from repro.reasoning.validation import find_violations

        initial = find_violations(self.graph, self.sigma)
        self.known = set(initial)
        return initial

    def refresh(self, update: GraphUpdate) -> list[Violation]:
        """Apply an update; return violations new since the last call."""
        apply_update(self.graph, update)
        self._retire_stale()
        fresh = incremental_violations(self.graph, self.sigma, update)
        new = [v for v in fresh if v not in self.known]
        self.known.update(new)
        return new

    def _retire_stale(self) -> None:
        still_valid: set[Violation] = set()
        for violation in self.known:
            match = violation.assignment
            if not all(self.graph.has_node(n) for n in match.values()):
                continue
            x_holds = all(literal_holds(self.graph, l, match) for l in violation.ged.X)
            failed = any(
                not literal_holds(self.graph, l, match)
                for l in violation.ged.Y
            )
            from repro.matching.homomorphism import is_homomorphism

            if x_holds and failed and is_homomorphism(violation.ged.pattern, self.graph, match):
                still_valid.add(violation)
        self.known = still_valid
