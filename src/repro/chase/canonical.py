"""Canonical graphs G_Q and G_Σ, and initial relations Eq_X (Section 5).

* The **canonical graph of a pattern** Q treats Q itself as a graph:
  one node per variable carrying the variable's label (possibly the
  special label ``_``), the pattern's edges, and an empty F_A.
* The **canonical graph of a set Σ** is the disjoint union of the
  canonical graphs of the patterns of Σ (node ids are prefixed per
  dependency to enforce disjointness).
* **Eq_X** extends the initial equivalence relation of a canonical
  graph with the literals of a set X (Section 5.2); Eq_X may already be
  inconsistent (e.g. X contains x.A = 1 and x.A = 2), in which case the
  chase starting from it is inconsistent.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.chase.eqrel import EquivalenceRelation
from repro.deps.ged import GED
from repro.deps.literals import (
    FALSE,
    ConstantLiteral,
    IdLiteral,
    Literal,
    VariableLiteral,
)
from repro.errors import ChaseError
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern


def canonical_graph(pattern: Pattern, prefix: str = "") -> Graph:
    """G_Q: the pattern viewed as a graph with empty F_A.

    ``prefix`` is prepended to node ids (used for disjoint unions).
    """
    g = Graph()
    for variable in pattern.variables:
        g.add_node(prefix + variable, pattern.label_of(variable))
    for source, label, target in pattern.edges:
        g.add_edge(prefix + source, label, prefix + target)
    return g


def canonical_graph_of_sigma(
    sigma: Iterable[GED],
) -> tuple[Graph, list[dict[str, str]]]:
    """G_Σ: the disjoint union of the patterns of Σ.

    Returns the graph and, per dependency (in input order), the mapping
    ``pattern variable -> node id of G_Σ``.
    """
    g = Graph()
    var_maps: list[dict[str, str]] = []
    for index, ged in enumerate(sigma):
        prefix = f"g{index}:"
        pattern = ged.pattern
        for variable in pattern.variables:
            g.add_node(prefix + variable, pattern.label_of(variable))
        for source, label, target in pattern.edges:
            g.add_edge(prefix + source, label, prefix + target)
        var_maps.append({v: prefix + v for v in pattern.variables})
    return g, var_maps


def apply_literal(
    eq: EquivalenceRelation,
    literal: Literal,
    assignment: Mapping[str, str],
) -> bool:
    """Enforce one literal on Eq under a variable-to-node assignment.

    Implements the three chase-step cases of Section 4.1 (including
    attribute generation).  Returns True if Eq changed.  ``FALSE`` is
    not enforceable — the caller must treat it as an immediate
    inconsistency; passing it here raises.
    """
    if isinstance(literal, ConstantLiteral):
        return eq.set_attr_constant(assignment[literal.var], literal.attr, literal.const)
    if isinstance(literal, VariableLiteral):
        return eq.merge_attrs(
            assignment[literal.var1], literal.attr1,
            assignment[literal.var2], literal.attr2,
        )
    if isinstance(literal, IdLiteral):
        return eq.merge_nodes(assignment[literal.var1], assignment[literal.var2])
    if literal is FALSE:
        raise ChaseError("false cannot be enforced on Eq; handle it as an invalid step")
    raise ChaseError(f"unknown literal {literal!r}")


def literal_entailed(
    eq: EquivalenceRelation,
    literal: Literal,
    assignment: Mapping[str, str],
) -> bool:
    """Whether Eq already entails ``h(literal)`` (Section 3 semantics).

    A constant/variable literal requires the attribute classes to exist
    (attribute existence is part of satisfaction); ``FALSE`` is never
    entailed.
    """
    if isinstance(literal, ConstantLiteral):
        return eq.attr_has_constant(assignment[literal.var], literal.attr, literal.const)
    if isinstance(literal, VariableLiteral):
        return eq.attrs_equal(
            assignment[literal.var1], literal.attr1,
            assignment[literal.var2], literal.attr2,
        )
    if isinstance(literal, IdLiteral):
        return eq.nodes_equal(assignment[literal.var1], assignment[literal.var2])
    if literal is FALSE:
        return False
    raise ChaseError(f"unknown literal {literal!r}")


def eq_from_literals(
    graph: Graph,
    literals: Iterable[Literal],
    assignment: Mapping[str, str] | None = None,
) -> EquivalenceRelation:
    """Eq_X: the initial relation of ``graph`` extended with literals.

    ``assignment`` maps the literals' variables to node ids; by default
    variables are assumed to *be* node ids (the canonical-graph case
    with an empty prefix).  The result may be inconsistent.
    """
    eq = EquivalenceRelation(graph)
    if assignment is None:
        assignment = {v: v for v in graph.node_ids}
    for literal in literals:
        if literal is FALSE:
            eq.inconsistent_reason = "X contains false"
            continue
        apply_literal(eq, literal, assignment)
    return eq
