"""A union-find (disjoint-set) structure with lazy element creation.

The chase's equivalence relations Eq are built from two coupled
union-finds (one over nodes, one over attribute terms and constants);
this module provides the shared machinery: path compression, union by
size, deterministic class enumeration, and an element count used for
the Theorem 1 size bound |Eq| ≤ 4·|G|·|Σ|.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator


class UnionFind:
    """Disjoint sets over arbitrary hashable elements."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}

    def add(self, element: Hashable) -> bool:
        """Register an element as a singleton class; False if known."""
        if element in self._parent:
            return False
        self._parent[element] = element
        self._size[element] = 1
        return True

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def find(self, element: Hashable) -> Hashable:
        """The class representative (with path compression).

        The element is registered on first use.
        """
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> tuple[Hashable, Hashable] | None:
        """Merge the classes of ``a`` and ``b``.

        Returns ``(winner_root, loser_root)`` if a merge happened (so
        callers can merge class payloads), or ``None`` if the elements
        were already equivalent.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return None
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra, rb

    def same(self, a: Hashable, b: Hashable) -> bool:
        """Whether two elements are in one class (registers both)."""
        return self.find(a) == self.find(b)

    def class_of(self, element: Hashable) -> set[Hashable]:
        """All members of the element's class (O(n) — for inspection)."""
        root = self.find(element)
        return {e for e in self._parent if self.find(e) == root}

    def classes(self) -> Iterator[set[Hashable]]:
        """All classes, each as a set of members."""
        by_root: dict[Hashable, set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        yield from by_root.values()

    @property
    def num_elements(self) -> int:
        return len(self._parent)

    @property
    def num_classes(self) -> int:
        return sum(1 for e, p in self._parent.items() if self.find(e) == e)

    def copy(self) -> "UnionFind":
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._size = dict(self._size)
        return clone
