"""Equivalence relations Eq over nodes and attribute terms (Section 4.1).

The chase maintains an equivalence relation with two kinds of classes:

* ``[x]`` — nodes identified with x (by id literals), and
* ``[x.A]`` — attribute terms ``y.B`` and constants ``c`` identified
  with ``x.A`` (by variable / constant literals).

The relation satisfies the paper's closure rules (a)-(d); in particular
rule (d): *if node y ∈ [x], then for every attribute B present on either,
[x.B] = [y.B]* — merging two nodes merges all their attribute classes.
This is what gives id literals their strong semantics ("same node, hence
same attributes").

**Consistency** (Section 4.1): Eq is inconsistent in G iff

* some node class contains two nodes with incompatible labels — two
  distinct non-wildcard labels (*label conflict*; ``≼`` is used in both
  directions, so the wildcard ``_`` of a canonical graph is compatible
  with anything), or
* some attribute class contains two distinct constants (*attribute
  conflict*).

Inconsistency is monotone: once detected the relation stays inconsistent
(the chase result is then ⊥).  The class records the first reason for
error reporting.

Implementation notes: node classes carry a payload (their non-wildcard
labels and an attribute registry ``name -> attribute-term``); attribute
classes carry their set of constants.  Payloads are keyed by the current
union-find root and merged on union.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.chase.unionfind import UnionFind
from repro.graph.graph import Graph, Value
from repro.patterns.labels import WILDCARD

#: Attribute terms are ("attr", node, attribute); constants ("const", value).
AttrTerm = tuple[str, str, str]
ConstTerm = tuple[str, Value]


def attr_term(node_id: str, attr: str) -> AttrTerm:
    return ("attr", node_id, attr)


def const_term(value: Value) -> ConstTerm:
    return ("const", value)


class _NodePayload:
    __slots__ = ("labels", "attrs")

    def __init__(self) -> None:
        self.labels: set[str] = set()  # distinct non-wildcard labels seen
        self.attrs: dict[str, AttrTerm] = {}  # attr name -> registered term


class _AttrPayload:
    __slots__ = ("constants",)

    def __init__(self) -> None:
        self.constants: set[Value] = set()


class EquivalenceRelation:
    """The chase's Eq: coupled node and attribute-term equivalences."""

    def __init__(self, graph: Graph):
        self._graph = graph
        self._nodes = UnionFind()
        self._attrs = UnionFind()
        self._node_payload: dict[Hashable, _NodePayload] = {}
        self._attr_payload: dict[Hashable, _AttrPayload] = {}
        self.inconsistent_reason: str | None = None
        # Eq0: [x] = {x} for every node; [x.A] = {x.A, a} per attribute.
        for node in graph.nodes:
            self._register_node(node.id, node.label)
        for node in graph.nodes:
            for attr, value in node.attributes.items():
                self.set_attr_constant(node.id, attr, value)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register_node(self, node_id: str, label: str) -> None:
        if self._nodes.add(node_id):
            payload = _NodePayload()
            if label != WILDCARD:
                payload.labels.add(label)
            self._node_payload[node_id] = payload

    def _node_data(self, node_id: str) -> _NodePayload:
        return self._node_payload[self._nodes.find(node_id)]

    def _attr_data(self, term: AttrTerm | ConstTerm) -> _AttrPayload:
        root = self._attrs.find(term)
        payload = self._attr_payload.get(root)
        if payload is None:
            payload = _AttrPayload()
            if term[0] == "const":
                payload.constants.add(term[1])
            self._attr_payload[root] = payload
        return payload

    def register_attr(self, node_id: str, attr: str) -> AttrTerm:
        """Ensure ``node_id.A`` has an attribute class ("attribute
        generation", cases (1)/(2) of the chase step definition).

        Returns a term in the class.  If any node equivalent to
        ``node_id`` already has an A-class, the new term joins it
        (closure rule (d)).
        """
        term = attr_term(node_id, attr)
        data = self._node_data(node_id)
        existing = data.attrs.get(attr)
        if existing is None:
            self._attrs.add(term)
            self._attr_data(term)
            data.attrs[attr] = term
        elif existing != term and not self._attrs.same(existing, term):
            self._merge_attr_terms(existing, term)
        return term

    # ------------------------------------------------------------------
    # Mutation (chase-step primitives)
    # ------------------------------------------------------------------
    def set_attr_constant(self, node_id: str, attr: str, value: Value) -> bool:
        """Enforce ``node.A = c``; True if Eq changed."""
        term = self.register_attr(node_id, attr)
        c = const_term(value)
        self._attrs.add(c)
        self._attr_data(c)
        return self._merge_attr_terms(term, c)

    def merge_attrs(self, node1: str, attr1: str, node2: str, attr2: str) -> bool:
        """Enforce ``node1.A = node2.B``; True if Eq changed."""
        t1 = self.register_attr(node1, attr1)
        t2 = self.register_attr(node2, attr2)
        return self._merge_attr_terms(t1, t2)

    def _merge_attr_terms(self, t1, t2) -> bool:
        d1, d2 = self._attr_data(t1), self._attr_data(t2)
        merged = self._attrs.union(t1, t2)
        if merged is None:
            return False
        winner, loser = merged
        payload = self._attr_payload.pop(loser, _AttrPayload())
        target = self._attr_payload.setdefault(winner, _AttrPayload())
        if target is not payload:
            target.constants |= payload.constants
        # Re-attach payloads computed before the union (d1/d2 roots may
        # both differ from `winner` after path compression).
        for stale in (d1, d2):
            if stale is not target:
                target.constants |= stale.constants
        if len(target.constants) > 1 and self.inconsistent_reason is None:
            values = sorted(map(repr, target.constants))
            self.inconsistent_reason = f"attribute conflict: constants {values} identified"
        return True

    def merge_nodes(self, node1: str, node2: str) -> bool:
        """Enforce ``node1.id = node2.id``; True if Eq changed.

        Applies closure rule (d): the attribute registries of the two
        classes are merged, unioning per-name attribute classes.
        """
        r1, r2 = self._nodes.find(node1), self._nodes.find(node2)
        if r1 == r2:
            return False
        p1, p2 = self._node_payload[r1], self._node_payload[r2]
        merged = self._nodes.union(r1, r2)
        assert merged is not None
        winner, loser = merged
        keep = self._node_payload[winner]
        drop = self._node_payload.pop(loser)
        keep.labels |= drop.labels
        if len(keep.labels) > 1 and self.inconsistent_reason is None:
            self.inconsistent_reason = (
                f"label conflict: labels {sorted(keep.labels)} identified"
            )
        # Rule (d): union attribute classes name-by-name.
        for attr, term in drop.attrs.items():
            existing = keep.attrs.get(attr)
            if existing is None:
                keep.attrs[attr] = term
            else:
                self._merge_attr_terms(existing, term)
        # Guard against stale payload refs (p1/p2 may alias keep/drop).
        for stale in (p1, p2):
            if stale is not keep and stale is not drop:  # pragma: no cover
                keep.labels |= stale.labels
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def is_consistent(self) -> bool:
        return self.inconsistent_reason is None

    def nodes_equal(self, node1: str, node2: str) -> bool:
        return self._nodes.same(node1, node2)

    def attr_exists(self, node_id: str, attr: str) -> bool:
        """Whether ``node.A`` has a class (original or generated)."""
        return attr in self._node_data(node_id).attrs

    def attrs_equal(self, node1: str, attr1: str, node2: str, attr2: str) -> bool:
        d1, d2 = self._node_data(node1), self._node_data(node2)
        t1, t2 = d1.attrs.get(attr1), d2.attrs.get(attr2)
        if t1 is None or t2 is None:
            return False
        return self._attrs.same(t1, t2)

    def attr_constant(self, node_id: str, attr: str) -> Value | None:
        """The constant of ``[node.A]`` if one exists (None otherwise)."""
        term = self._node_data(node_id).attrs.get(attr)
        if term is None:
            return None
        constants = self._attr_data(term).constants
        if not constants:
            return None
        if len(constants) == 1:
            return next(iter(constants))
        return sorted(map(repr, constants))[0]  # inconsistent state: stable pick

    def attr_has_constant(self, node_id: str, attr: str, value: Value) -> bool:
        term = self._node_data(node_id).attrs.get(attr)
        if term is None:
            return False
        return value in self._attr_data(term).constants

    def node_class(self, node_id: str) -> set[str]:
        return {n for n in self._nodes.class_of(node_id)}

    def node_representative(self, node_id: str) -> str:
        """Deterministic class representative: the smallest member id.

        Using the minimum (not the union-find root) makes coercion
        graphs independent of the merge order — needed to *observe* the
        Church-Rosser property in tests.
        """
        return min(self._nodes.class_of(node_id))

    def node_classes(self) -> list[set[str]]:
        return sorted((set(c) for c in self._nodes.classes()), key=lambda c: min(c))

    def class_labels(self, node_id: str) -> set[str]:
        """The non-wildcard labels present in the node's class."""
        return set(self._node_data(node_id).labels)

    def class_attr_names(self, node_id: str) -> set[str]:
        return set(self._node_data(node_id).attrs)

    def attr_class_id(self, node_id: str, attr: str) -> Hashable | None:
        """An opaque, stable identifier of ``[node.A]`` (or None).

        Stable across queries but not across mutations; used to group
        attribute terms when building models.
        """
        term = self._node_data(node_id).attrs.get(attr)
        if term is None:
            return None
        return self._attrs.find(term)

    def element_count(self) -> int:
        """Total elements in all classes — the |Eq| of Theorem 1."""
        return self._nodes.num_elements + self._attrs.num_elements

    # ------------------------------------------------------------------
    # Literal views (used by implication and proof synthesis)
    # ------------------------------------------------------------------
    def as_literals(self) -> list[tuple]:
        """Eq as a list of primitive equalities, deterministically ordered.

        Each entry is ``("id", u, v)``, ``("attr", (u, A), (v, B))`` or
        ``("const", (u, A), c)`` relating class members to their class's
        representative element.  Together the entries axiomatize Eq.
        """
        literals: list[tuple] = []
        for cls in self.node_classes():
            rep = min(cls)
            for member in sorted(cls):
                if member != rep:
                    literals.append(("id", rep, member))
        attr_classes: dict[Hashable, list] = {}
        for cls in self._attrs.classes():
            members = sorted(cls, key=repr)
            attr_classes[id(cls)] = members
        for members in sorted(attr_classes.values(), key=repr):
            attr_members = [m for m in members if m[0] == "attr"]
            const_members = [m for m in members if m[0] == "const"]
            if not attr_members:
                continue
            rep = attr_members[0]
            for member in attr_members[1:]:
                literals.append(("attr", (rep[1], rep[2]), (member[1], member[2])))
            for member in const_members:
                literals.append(("const", (rep[1], rep[2]), member[1]))
        return literals
