"""Coercion: enforcing a consistent Eq on a graph (Section 4.1).

The coercion ``G_Eq`` of a consistent equivalence relation Eq on G
merges every node class into one node, carrying

* every edge of every member (redirected to class representatives),
* the class's merged label — ``_`` only if *all* members are wildcard,
  otherwise the unique non-wildcard label (rule (c)), and
* the union of the members' attributes (rule (d)); an attribute whose
  class carries a constant gets that constant, an attribute whose class
  was *generated* by the chase but never bound to a constant is present
  with value ``None`` ("exists, value not yet known" — graphs are
  schemaless, so presence itself is information).

Class representatives are the minimum member id, so the coercion is
independent of the order in which merges happened — this is what lets
the test suite literally compare the results of differently-ordered
chase sequences (Church-Rosser, Theorem 1).
"""

from __future__ import annotations

from repro.chase.eqrel import EquivalenceRelation
from repro.errors import ChaseError
from repro.graph.graph import Graph
from repro.patterns.labels import WILDCARD


def coerce(eq: EquivalenceRelation) -> Graph:
    """Build the coercion G_Eq of ``eq`` on its underlying graph.

    Raises :class:`ChaseError` if Eq is inconsistent (G_Eq is undefined,
    Section 4.1).
    """
    if not eq.is_consistent:
        raise ChaseError(f"coercion of an inconsistent Eq is undefined: {eq.inconsistent_reason}")
    graph = eq.graph
    result = Graph()

    representative: dict[str, str] = {}
    for node_class in eq.node_classes():
        rep = min(node_class)
        for member in node_class:
            representative[member] = rep
        labels = eq.class_labels(rep)
        label = next(iter(labels)) if labels else WILDCARD
        attrs = {}
        for attr_name in sorted(eq.class_attr_names(rep)):
            attrs[attr_name] = eq.attr_constant(rep, attr_name)
        result.add_node(rep, label, attrs)

    for source, edge_label, target in graph.edges:
        result.add_edge(representative[source], edge_label, representative[target])
    return result


def representative_map(eq: EquivalenceRelation) -> dict[str, str]:
    """``original node id -> coerced node id`` for a consistent Eq."""
    mapping: dict[str, str] = {}
    for node_class in eq.node_classes():
        rep = min(node_class)
        for member in node_class:
            mapping[member] = rep
    return mapping
