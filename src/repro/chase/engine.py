"""The revised chase for GEDs (Section 4).

``chase(G, Σ)`` runs chase steps ``Eq ⇒_(φ,h) Eq'`` until no step
applies:

1. build the coercion G_Eq of the current (consistent) Eq;
2. for each GED φ = Q[x̄](X → Y) in Σ and each match h of Q in G_Eq
   with h(x̄) |= X (checked against Eq), enforce each literal of Y not
   yet entailed;
3. if enforcing a literal makes Eq inconsistent — a label conflict from
   an id literal, an attribute conflict from a constant literal, or an
   applicable forbidding constraint (Y = false) — the chase is
   **invalid** with result ⊥;
4. otherwise, when a full pass adds nothing, the sequence is terminal
   and **valid** with result (Eq, G_Eq).

Theorem 1 (reproduced by tests and `benchmarks/bench_thm1_chase_bounds`):
the chase is finite — |Eq| ≤ 4·|G|·|Σ| and every sequence has length
≤ 8·|G|·|Σ| — and Church-Rosser: every terminal sequence yields the
same result regardless of the order in which GEDs are applied.  The
engine therefore accepts an arbitrary application order (`rng`) and a
step `limit`; the deterministic default order is just a convenience.

An eager invalidity check is sound: inconsistency-producing steps stay
applicable-and-inconsistent as Eq grows (Eq only ever gains equalities,
and a superset of an inconsistent relation is inconsistent), so whether
the engine reports ⊥ at first sight or after exhausting valid steps,
the classification of the terminal result is the same — which is also
exactly what Church-Rosser asserts.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.chase.canonical import apply_literal, literal_entailed
from repro.chase.coercion import coerce
from repro.chase.eqrel import EquivalenceRelation
from repro.deps.ged import GED, sigma_size
from repro.deps.literals import FALSE, Literal
from repro.errors import ChaseError
from repro.graph.graph import Graph
from repro.matching.plan import compile_plan


@dataclass(frozen=True)
class ChaseStep:
    """One chase step: GED φ applied via match h, enforcing literal l.

    ``match`` maps pattern variables to *coerced* node ids, i.e. class
    representatives of the graph being chased — exactly the h of
    ``Eq ⇒_(φ,h) Eq'``.  Proof synthesis (Theorem 7 completeness)
    replays these records as GED6 applications.
    """

    ged: GED
    match: tuple[tuple[str, str], ...]
    literal: Literal

    @property
    def assignment(self) -> dict[str, str]:
        return dict(self.match)


@dataclass
class ChaseResult:
    """The result of chasing G by Σ.

    ``consistent`` — whether some (equivalently: every) terminal chasing
    sequence is valid.  If consistent, ``graph`` is the coercion G_Eq
    and ``eq`` the final relation; otherwise the result is ⊥ and
    ``graph``/``eq`` hold the last consistent state for diagnostics,
    with ``reason`` explaining the conflict.
    """

    consistent: bool
    eq: EquivalenceRelation
    graph: Graph
    steps: list[ChaseStep] = field(default_factory=list)
    reason: str | None = None
    rounds: int = 0

    def __bool__(self) -> bool:
        return self.consistent


def chase(
    graph: Graph,
    sigma: Sequence[GED],
    initial_eq: EquivalenceRelation | None = None,
    rng: random.Random | int | None = None,
    max_steps: int | None = None,
) -> ChaseResult:
    """Chase ``graph`` by the GEDs of ``sigma``.

    Parameters
    ----------
    initial_eq:
        start from this relation instead of Eq0 — used by the
        implication check, which chases G_Q starting from Eq_X.  It
        must have been built over ``graph``.  If it is already
        inconsistent the chase is immediately inconsistent (Section
        5.2).
    rng:
        if given, randomize the order in which (GED, match, literal)
        applications are attempted each round.  By Theorem 1 the result
        is the same; the test suite uses this to *verify* Church-Rosser.
    max_steps:
        safety limit on applied steps; defaults to the Theorem 1 bound
        8·|G|·|Σ| (+ slack).  Exceeding it raises :class:`ChaseError`,
        since that would falsify the theorem.
    """
    sigma = list(sigma)
    if initial_eq is None:
        eq = EquivalenceRelation(graph)
    else:
        if initial_eq.graph is not graph:
            raise ChaseError("initial_eq was built over a different graph")
        eq = initial_eq

    if rng is not None and not isinstance(rng, random.Random):
        rng = random.Random(rng)

    bound = 8 * max(1, graph.size()) * max(1, sigma_size(sigma)) + 8
    if max_steps is None:
        max_steps = bound

    steps: list[ChaseStep] = []

    if not eq.is_consistent:
        return ChaseResult(False, eq, graph.copy(), steps, reason=eq.inconsistent_reason)

    coerced = coerce(eq)
    rounds = 0
    while True:
        rounds += 1
        applications = list(_applicable(sigma, coerced, eq))
        if rng is not None:
            rng.shuffle(applications)
        progressed = False
        for ged, match, literal in applications:
            if literal is FALSE:
                # An applicable forbidding constraint invalidates the chase
                # (its Y desugars to two conflicting constants).  The step
                # is recorded so proof synthesis (Theorem 7) can replay it.
                if _satisfies(eq, ged.X, match):
                    steps.append(ChaseStep(ged, tuple(sorted(match.items())), FALSE))
                    reason = f"forbidding constraint applies: {ged}"
                    return ChaseResult(False, eq, coerced, steps, reason, rounds)
                continue
            # Re-check against the *current* Eq (earlier applications in
            # this round may have entailed or enabled this one).
            if not _satisfies(eq, ged.X, match):
                continue
            if literal_entailed(eq, literal, match):
                continue
            apply_literal(eq, literal, match)
            steps.append(ChaseStep(ged, tuple(sorted(match.items())), literal))
            progressed = True
            if not eq.is_consistent:
                return ChaseResult(False, eq, coerced, steps, eq.inconsistent_reason, rounds)
            if len(steps) > max_steps:
                raise ChaseError(
                    f"chase exceeded {max_steps} steps — Theorem 1 bound violated"
                )
        if not progressed:
            return ChaseResult(True, eq, coerced, steps, None, rounds)
        coerced = coerce(eq)


def _applicable(
    sigma: Iterable[GED], coerced: Graph, eq: EquivalenceRelation
):
    """All (GED, match, literal) triples whose X holds in the current Eq.

    Matches are enumerated on the coercion graph via compiled plans:
    the coercion is rebuilt once per round, so its view is interned
    once per round and every dependency's pattern compiles against it
    exactly once — dependencies sharing a pattern (GKeys and their
    copies) share the compilation.  Literal satisfaction is checked
    against Eq (so generated attributes are visible).  Literals already
    entailed are still yielded — the applying loop re-checks, because
    earlier applications within the same round can change entailment
    either way.
    """
    for ged in sigma:
        for match in compile_plan(coerced, ged.pattern).matches():
            if not _satisfies(eq, ged.X, match):
                continue
            for literal in sorted(ged.Y, key=str):
                yield ged, match, literal


def _satisfies(
    eq: EquivalenceRelation, literals: Iterable[Literal], match: Mapping[str, str]
) -> bool:
    return all(literal_entailed(eq, l, match) for l in literals)


def chase_sequence_lengths(result: ChaseResult) -> int:
    """Number of applied steps of a chase result (for bound checks)."""
    return len(result.steps)
