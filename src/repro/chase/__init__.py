"""The revised chase for GEDs (Section 4) and canonical graphs (Section 5)."""

from repro.chase.canonical import (
    apply_literal,
    canonical_graph,
    canonical_graph_of_sigma,
    eq_from_literals,
    literal_entailed,
)
from repro.chase.coercion import coerce, representative_map
from repro.chase.engine import ChaseResult, ChaseStep, chase
from repro.chase.eqrel import EquivalenceRelation, attr_term, const_term
from repro.chase.unionfind import UnionFind

__all__ = [
    "ChaseResult",
    "ChaseStep",
    "EquivalenceRelation",
    "UnionFind",
    "apply_literal",
    "attr_term",
    "canonical_graph",
    "canonical_graph_of_sigma",
    "chase",
    "coerce",
    "const_term",
    "eq_from_literals",
    "literal_entailed",
    "representative_map",
]
