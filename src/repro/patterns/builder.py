"""Fluent construction of patterns.

>>> q = (PatternBuilder()
...      .var("x", "person").var("y", "product")
...      .edge("x", "create", "y")
...      .build())
>>> q.variables
('x', 'y')
"""

from __future__ import annotations

from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern, PatternEdge


class PatternBuilder:
    """Chainable pattern construction; ``build()`` returns the pattern."""

    def __init__(self) -> None:
        self._nodes: dict[str, str] = {}
        self._edges: list[PatternEdge] = []

    def var(self, variable: str, label: str = WILDCARD) -> "PatternBuilder":
        self._nodes[variable] = label
        return self

    def vars(self, label: str, *variables: str) -> "PatternBuilder":
        """Declare several variables sharing one label."""
        for variable in variables:
            self._nodes[variable] = label
        return self

    def edge(self, source: str, label: str, target: str) -> "PatternBuilder":
        self._edges.append((source, label, target))
        return self

    def undirected_edge(self, a: str, label: str, b: str) -> "PatternBuilder":
        """Both orientations — for patterns over undirected encodings."""
        self._edges.append((a, label, b))
        self._edges.append((b, label, a))
        return self

    def build(self) -> Pattern:
        return Pattern(self._nodes, self._edges)
