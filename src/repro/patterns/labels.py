"""Label matching: the paper's ``≼`` relation and its uses.

Section 2 defines label matching asymmetrically:

    ι ≼ ι′  iff  (a) ι, ι′ ∈ Γ and ι = ι′,  or  (b) ι′ ∈ Γ and ι = '_'.

That is, the wildcard ``_`` (only ever written in *patterns*) matches any
label, while a concrete label matches only itself.  Section 4 reuses ``≼``
inside the chase, where canonical graphs G_Σ may themselves carry ``_`` as
a *special label*: there a class of merged nodes has a **label conflict**
iff it contains nodes x, y with L(x) ⋠ L(y) and L(y) ⋠ L(x) — i.e. two
distinct non-wildcard labels.
"""

from __future__ import annotations

from collections.abc import Iterable

#: The wildcard label ``_`` (usable on pattern nodes and pattern edges).
WILDCARD = "_"


def matches(pattern_label: str, target_label: str) -> bool:
    """The paper's ``ι ≼ ι′``: wildcard matches anything, else equality.

    Note the asymmetry: ``matches(WILDCARD, "x")`` is true but
    ``matches("x", WILDCARD)`` is false — a concrete pattern label does
    *not* match a wildcard-labeled node of a canonical graph.
    """
    return pattern_label == WILDCARD or pattern_label == target_label


def compatible(label_a: str, label_b: str) -> bool:
    """Whether two labels may coexist in one equivalence class.

    This is the negation of the Section 4 label-conflict condition:
    compatible iff ``a ≼ b`` or ``b ≼ a``, i.e. equal or at least one is
    the wildcard.
    """
    return label_a == label_b or label_a == WILDCARD or label_b == WILDCARD


def merged(labels: Iterable[str]) -> str:
    """The label of a coerced (merged) node: Section 4's rule (c).

    ``_`` if every label in the class is ``_``; otherwise the unique
    non-wildcard label.  The caller must have checked consistency; if two
    distinct non-wildcard labels are present a ``ValueError`` is raised
    to surface the broken invariant.
    """
    concrete: set[str] = {label for label in labels if label != WILDCARD}
    if not concrete:
        return WILDCARD
    if len(concrete) > 1:
        raise ValueError(f"label conflict in class: {sorted(concrete)}")
    return next(iter(concrete))
