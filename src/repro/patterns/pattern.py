"""Graph patterns Q[x̄] (Section 2).

A pattern is a directed graph ``Q[x̄] = (V_Q, E_Q, L_Q)`` whose nodes are
*variables*: ``x̄`` lists the variables, ``L_Q`` assigns each a label from
Γ ∪ {'_'} (``_`` = wildcard), and edges are labeled triples over the
variables (edge labels may also be ``_``).

Patterns are immutable after construction (dependencies share them), and
support the paper's *copy* operation: ``Q2[ȳ] is a copy of Q1[x̄] via a
bijection f : x̄ → ȳ`` — used to build GKeys, whose pattern is a pattern
composed with a disjoint renamed copy of itself.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import PatternError
from repro.patterns.labels import WILDCARD

PatternEdge = tuple[str, str, str]


class Pattern:
    """An immutable graph pattern over a list of variables.

    Parameters
    ----------
    nodes:
        mapping ``variable -> label`` (label may be :data:`WILDCARD`).
    edges:
        iterable of ``(source_var, edge_label, target_var)`` triples
        (edge label may be :data:`WILDCARD`).
    variables:
        optional explicit ordering of x̄; defaults to the ``nodes``
        insertion order.  The order matters only for presentation.
    """

    def __init__(
        self,
        nodes: Mapping[str, str],
        edges: Iterable[PatternEdge] = (),
        variables: Sequence[str] | None = None,
    ):
        if not nodes:
            raise PatternError("a pattern must have at least one variable")
        self._labels: dict[str, str] = {}
        for variable, label in nodes.items():
            if not isinstance(variable, str) or not variable:
                raise PatternError(f"pattern variable must be a non-empty string, got {variable!r}")
            if not isinstance(label, str) or not label:
                raise PatternError(f"pattern label must be a non-empty string, got {label!r}")
            self._labels[variable] = label
        self._edges: tuple[PatternEdge, ...] = tuple(dict.fromkeys(edges))
        for source, label, target in self._edges:
            if source not in self._labels:
                raise PatternError(f"edge source {source!r} is not a pattern variable")
            if target not in self._labels:
                raise PatternError(f"edge target {target!r} is not a pattern variable")
            if not isinstance(label, str) or not label:
                raise PatternError(f"edge label must be a non-empty string, got {label!r}")
        if variables is None:
            self._variables = tuple(self._labels)
        else:
            if set(variables) != set(self._labels) or len(set(variables)) != len(variables):
                raise PatternError("explicit variable list must be a permutation of the node keys")
            self._variables = tuple(variables)
        # Adjacency indexes for the matcher.
        self._out: dict[str, list[tuple[str, str]]] = {v: [] for v in self._labels}
        self._in: dict[str, list[tuple[str, str]]] = {v: [] for v in self._labels}
        for source, label, target in self._edges:
            self._out[source].append((label, target))
            self._in[target].append((label, source))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """x̄ — the pattern's variables, in declaration order."""
        return self._variables

    @property
    def edges(self) -> tuple[PatternEdge, ...]:
        return self._edges

    def label_of(self, variable: str) -> str:
        try:
            return self._labels[variable]
        except KeyError:
            raise PatternError(f"unknown pattern variable {variable!r}") from None

    def has_variable(self, variable: str) -> bool:
        return variable in self._labels

    @property
    def labels(self) -> dict[str, str]:
        """A copy of the variable -> label mapping."""
        return dict(self._labels)

    def out_edges(self, variable: str) -> list[tuple[str, str]]:
        """``(edge_label, target_var)`` pairs leaving ``variable``."""
        return list(self._out[variable])

    def in_edges(self, variable: str) -> list[tuple[str, str]]:
        """``(edge_label, source_var)`` pairs entering ``variable``."""
        return list(self._in[variable])

    def degree(self, variable: str) -> int:
        return len(self._out[variable]) + len(self._in[variable])

    @property
    def num_variables(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def size(self) -> int:
        """|Q| = number of variables + edges."""
        return len(self._labels) + len(self._edges)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def copy_with_bijection(self, bijection: Mapping[str, str]) -> "Pattern":
        """``Q2[ȳ]``, a copy of this pattern via ``f : x̄ → ȳ``.

        The bijection must be total on the variables and produce a
        *disjoint* variable set (the paper requires x̄ and ȳ disjoint).
        """
        if set(bijection) != set(self._labels):
            raise PatternError("bijection must be defined exactly on the pattern's variables")
        images = list(bijection.values())
        if len(set(images)) != len(images):
            raise PatternError("bijection must be injective")
        if set(images) & set(self._labels):
            raise PatternError("copy variables must be disjoint from the original variables")
        nodes = {bijection[v]: self._labels[v] for v in self._variables}
        edges = [(bijection[s], l, bijection[t]) for (s, l, t) in self._edges]
        return Pattern(nodes, edges, variables=[bijection[v] for v in self._variables])

    def renamed_copy(self, suffix: str = "_copy") -> tuple["Pattern", dict[str, str]]:
        """A disjoint copy with variables renamed by appending ``suffix``.

        Returns the copy and the bijection used.
        """
        bijection = {v: v + suffix for v in self._variables}
        return self.copy_with_bijection(bijection), bijection

    def compose(self, other: "Pattern") -> "Pattern":
        """The pattern composed of this pattern and a disjoint ``other``.

        This is how GKey patterns are formed: ``Q`` composed with a copy
        of ``Q`` (Section 3 (2)).
        """
        overlap = set(self._labels) & set(other._labels)
        if overlap:
            raise PatternError(f"cannot compose patterns sharing variables: {sorted(overlap)}")
        nodes = dict(self._labels)
        nodes.update(other._labels)
        edges = list(self._edges) + list(other._edges)
        return Pattern(nodes, edges, variables=list(self._variables) + list(other._variables))

    def is_copy_of(self, other: "Pattern", bijection: Mapping[str, str]) -> bool:
        """Check the paper's copy condition for an explicit bijection."""
        if set(bijection) != set(other._labels):
            return False
        if set(bijection.values()) != set(self._labels):
            return False
        if set(bijection.values()) & set(other._labels):
            return False
        for variable, label in other._labels.items():
            if self._labels[bijection[variable]] != label:
                return False
        mapped = {(bijection[s], l, bijection[t]) for (s, l, t) in other._edges}
        return mapped == set(self._edges)

    def connected_components(self) -> list[set[str]]:
        """Weakly connected components of the pattern's variables."""
        seen: set[str] = set()
        components: list[set[str]] = []
        for start in self._variables:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                neighbors = [t for _, t in self._out[current]] + [s for _, s in self._in[current]]
                for neighbor in neighbors:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            seen |= component
            components.append(component)
        return components

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return (
            self._labels == other._labels
            and set(self._edges) == set(other._edges)
            and self._variables == other._variables
        )

    def __hash__(self) -> int:
        # Memoized: patterns are immutable and every cache in the
        # matching stack (plan registries, Σ-DAG grouping, step caches)
        # keys on them, often once per enumerated match.
        cached = getattr(self, "_hash", None)
        if cached is None:
            cached = self._hash = hash(
                (tuple(sorted(self._labels.items())), frozenset(self._edges), self._variables)
            )
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern({list(self._variables)!r}, edges={len(self._edges)})"


def single_node_pattern(variable: str = "x", label: str = WILDCARD) -> Pattern:
    """The one-variable pattern used by domain/existence constraints."""
    return Pattern({variable: label})
