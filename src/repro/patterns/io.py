"""JSON (de)serialization for patterns."""

from __future__ import annotations

import json
from typing import Any

from repro.errors import PatternError
from repro.patterns.pattern import Pattern


def pattern_to_dict(q: Pattern) -> dict[str, Any]:
    """The pattern as a JSON-ready dictionary."""
    return {
        "variables": list(q.variables),
        "labels": q.labels,
        "edges": [list(e) for e in q.edges],
    }


def pattern_from_dict(data: dict[str, Any]) -> Pattern:
    """Rebuild a pattern from its dictionary form."""
    if not isinstance(data, dict) or "labels" not in data:
        raise PatternError("pattern dictionary must contain a 'labels' mapping")
    edges = [tuple(e) for e in data.get("edges", [])]
    return Pattern(data["labels"], edges, variables=data.get("variables"))


def pattern_to_json(q: Pattern, indent: int | None = None) -> str:
    """The pattern as a JSON string (sorted keys: stable diffs)."""
    return json.dumps(pattern_to_dict(q), indent=indent, sort_keys=True)


def pattern_from_json(text: str) -> Pattern:
    """Parse a pattern from its JSON string form."""
    return pattern_from_dict(json.loads(text))
