"""Graph patterns Q[x̄] with wildcard labels (Section 2)."""

from repro.patterns.builder import PatternBuilder
from repro.patterns.io import (
    pattern_from_dict,
    pattern_from_json,
    pattern_to_dict,
    pattern_to_json,
)
from repro.patterns.labels import WILDCARD, compatible, matches, merged
from repro.patterns.pattern import Pattern, PatternEdge, single_node_pattern

__all__ = [
    "WILDCARD",
    "Pattern",
    "PatternBuilder",
    "PatternEdge",
    "compatible",
    "matches",
    "merged",
    "pattern_from_dict",
    "pattern_from_json",
    "pattern_to_dict",
    "pattern_to_json",
    "single_node_pattern",
]
