"""Query and rule-set optimization with GEDs.

The paper motivates GEDs not only for cleaning but for *optimization*:

* "FDs and keys help us optimize queries that are costly on large
  graphs" (Section 1), and chasing "a graph representing Q" optimizes
  graph pattern queries (Section 4's use case (b));
* "The implication analysis serves as an optimization strategy to get
  rid of redundant rules" (Section 1, contribution 3).

This package implements both directions:

* :mod:`repro.optimization.containment` — homomorphism-based pattern
  containment and equivalence (the classic CQ-style check, adapted to
  the paper's ``≼`` wildcard semantics);
* :mod:`repro.optimization.minimize` — pattern **cores** (fold a
  pattern onto a smallest equivalent sub-pattern) and **chase-based
  minimization**: chase the canonical graph G_Q by Σ and merge the
  variables Σ forces equal, yielding a smaller pattern that has the
  same matches on every graph satisfying Σ;
* :mod:`repro.optimization.rewrite` — predicate pruning: drop literals
  of a query condition X that Σ (plus the rest of X) already implies,
  and surface constants Σ pins on the query's variables (useful as
  candidate filters during matching);
* :mod:`repro.optimization.cover` — rule-set minimization built on
  :func:`repro.reasoning.implication.minimal_cover`, plus structural
  deduplication and a report type.
"""

from repro.optimization.containment import (
    contained_in,
    equivalent_patterns,
    subsumes,
)
from repro.optimization.cover import CoverReport, compute_cover, structural_dedup
from repro.optimization.minimize import (
    MinimizationResult,
    core,
    is_core,
    minimize_pattern,
)
from repro.optimization.rewrite import RewriteResult, implied_constants, prune_condition

__all__ = [
    "CoverReport",
    "MinimizationResult",
    "RewriteResult",
    "compute_cover",
    "contained_in",
    "core",
    "equivalent_patterns",
    "implied_constants",
    "is_core",
    "minimize_pattern",
    "prune_condition",
    "structural_dedup",
    "subsumes",
]
