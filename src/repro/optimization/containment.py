"""Pattern containment and equivalence under homomorphism semantics.

For conjunctive-query-style patterns the classical characterization
holds: writing ``matches(Q, G)`` for the set of matches of Q in G,

    there is a homomorphism h : Q2 → Q1   iff
    for every graph G and every match m of Q1 in G, ``m ∘ h`` is a
    match of Q2 in G.

So ``Q1 subsumes Q2`` ("wherever Q1 matches, Q2 matches") is decided by
matching Q2 against the canonical graph G_{Q1} — the paper's own move
in Example 5, where a homomorphism f from Q2 to Q1 makes every match of
Q1 induce a match of Q2, which is exactly how the two GEDs of Σ1
interact.  Wildcards follow ``≼``: a wildcard pattern node maps to any
node, a concrete-labeled one only to nodes with that label (G_{Q1} may
itself contain wildcard-labeled nodes, which concrete labels do *not*
match — ``≼`` is asymmetric).

``contained_in(q1, q2)`` is the Boolean-query reading: every graph with
a match of ``q1`` has a match of ``q2``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.chase.canonical import canonical_graph
from repro.matching.plan import compile_plan
from repro.patterns.pattern import Pattern


@lru_cache(maxsize=256)
def _cached_canonical(pattern: Pattern) -> object:
    """G_Q memoized per pattern.

    Containment checks run in pairwise loops (cover computation probes
    every rule against every other); caching the canonical graph keeps
    its interned view — and every plan compiled against it — alive in
    the view registry, so the O(n²) probe loop pays one graph build and
    one plan compilation per (target, probe-pattern) pair instead of
    rebuilding both per probe.
    """
    return canonical_graph(pattern)


def subsumes(q1: Pattern, q2: Pattern) -> bool:
    """Whether every match of ``q1`` (in any graph) induces a match of
    ``q2``, i.e. a homomorphism ``q2 → q1`` exists.

    Returns True exactly when matching ``q2`` in the canonical graph
    G_{q1} succeeds — executed as ``q2``'s compiled plan over G_{q1}'s
    cached view, stopping at the first witness.
    """
    for _ in compile_plan(_cached_canonical(q1), q2).matches(limit=1):
        return True
    return False


def witness_homomorphism(q1: Pattern, q2: Pattern) -> dict[str, str] | None:
    """A homomorphism ``q2 → q1`` (as variable → variable), or None.

    This is the ``f`` of Example 5: composing a match h of ``q1`` with
    the witness yields the induced match ``h ∘ f`` of ``q2``.
    """
    for match in compile_plan(_cached_canonical(q1), q2).matches(limit=1):
        return dict(match)
    return None


def contained_in(q1: Pattern, q2: Pattern) -> bool:
    """Boolean containment: every graph where ``q1`` has a match also
    gives ``q2`` a match.  Equivalent to :func:`subsumes`\\ (q1, q2)."""
    return subsumes(q1, q2)


def equivalent_patterns(q1: Pattern, q2: Pattern) -> bool:
    """Homomorphic equivalence: containment in both directions.

    Equivalent patterns have matches in exactly the same graphs, so
    either can stand in for the other as a query scope — the basis for
    minimization (:mod:`repro.optimization.minimize`): a pattern is
    equivalent to its core.
    """
    return subsumes(q1, q2) and subsumes(q2, q1)


__all__ = [
    "contained_in",
    "equivalent_patterns",
    "subsumes",
    "witness_homomorphism",
]
