"""Predicate pruning and constant propagation for pattern queries.

A "query" here is a pattern Q[x̄] plus a condition X (a set of literals)
— the same shape as a GED body, and the unit a rule engine or a match
enumerator evaluates.  Two optimizations fall straight out of the
Theorem 4 machinery:

* **predicate pruning** (:func:`prune_condition`): a literal l ∈ X is
  redundant when Σ |= Q[x̄](X \\ {l} → l) — evaluating it at match time
  is wasted work on any graph satisfying Σ.  We drop redundant literals
  greedily (order-stable), re-checking against the shrinking set so the
  result is a *non-redundant* equivalent condition.

* **constant propagation** (:func:`implied_constants`): chase G_Q from
  Eq_X by Σ; every constant the chase pins on a variable's attribute is
  a filter the matcher can apply while enumerating candidates — e.g.
  with ϕ1 in Σ, a query for creators of video games can restrict x to
  nodes with ``type = "programmer"`` *before* joining edges.

Both are sound only over graphs satisfying Σ, which is the contract of
dependency-based query optimization.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.chase.canonical import canonical_graph, eq_from_literals
from repro.chase.engine import chase
from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, Literal
from repro.patterns.pattern import Pattern
from repro.reasoning.implication import implies


@dataclass
class RewriteResult:
    """A rewritten query condition and what was removed/learned."""

    pattern: Pattern
    condition: list[Literal]
    pruned: list[Literal] = field(default_factory=list)
    #: Constant filters Σ + X imply, usable during candidate generation.
    filters: list[ConstantLiteral] = field(default_factory=list)
    #: The chase found X unsatisfiable over models of Σ: the query
    #: returns no X-satisfying matches on any graph G |= Σ.
    empty: bool = False


def prune_condition(
    pattern: Pattern,
    condition: Sequence[Literal],
    sigma: Sequence[GED],
) -> RewriteResult:
    """Remove literals of ``condition`` implied by Σ and the rest.

    Scans literals in the given order; a literal is dropped when the
    remaining kept + unscanned ones imply it under Σ.  The surviving
    set is equivalent to the input on every graph satisfying Σ and
    contains no redundant literal.
    """
    sigma = list(sigma)
    literals = list(condition)
    kept: list[Literal] = []
    pruned: list[Literal] = []
    for index, literal in enumerate(literals):
        rest = kept + literals[index + 1 :]
        probe = GED(pattern, rest, [literal])
        if implies(sigma, probe):
            pruned.append(literal)
        else:
            kept.append(literal)
    result = implied_constants(pattern, kept, sigma)
    result.pruned = pruned
    return result


def implied_constants(
    pattern: Pattern,
    condition: Sequence[Literal],
    sigma: Sequence[GED],
) -> RewriteResult:
    """Chase G_Q from Eq_X and report the constants pinned on variables.

    When the chase is inconsistent, the query's condition cannot be met
    on any graph satisfying Σ (Theorem 4 condition (1)) — ``empty`` is
    set and callers can skip evaluation altogether.
    """
    sigma = list(sigma)
    condition = list(condition)
    g_q = canonical_graph(pattern)
    identity = {v: v for v in pattern.variables}
    eq_x = eq_from_literals(g_q, sorted(condition, key=str), identity)
    if not eq_x.is_consistent:
        return RewriteResult(pattern, condition, empty=True)
    result = chase(g_q, sigma, initial_eq=eq_x)
    if not result.consistent:
        return RewriteResult(pattern, condition, empty=True)

    filters: list[ConstantLiteral] = []
    already = {
        (l.var, l.attr, l.const) for l in condition if isinstance(l, ConstantLiteral)
    }
    for variable in pattern.variables:
        rep = result.eq.node_representative(variable)
        for attr in sorted(result.eq.class_attr_names(rep)):
            value = result.eq.attr_constant(rep, attr)
            if value is not None and (variable, attr, value) not in already:
                filters.append(ConstantLiteral(variable, attr, value))
    return RewriteResult(pattern, condition, filters=filters)


__all__ = ["RewriteResult", "implied_constants", "prune_condition"]
