"""Pattern minimization: cores and chase-based variable merging.

Two complementary reductions, both sound for query optimization:

* :func:`core` — the classical CQ core, no dependencies involved: fold
  the pattern onto itself via a non-surjective endomorphism until no
  fold exists.  The result is homomorphically equivalent to the input
  (same graphs have matches), but strictly smaller whenever the pattern
  contains redundant structure — e.g. two parallel wildcard edges, or a
  generic ``(_)-[e]->(_)`` limb alongside a concrete ``(a)-[e]->(b)``.

* :func:`minimize_pattern` — minimization **relative to Σ** (the
  paper's Section 4 use case (b): "optimize graph pattern queries Q
  with Σ when G represents Q").  Chase the canonical graph G_Q by Σ; if
  the chase is consistent and merges pattern variables (id literals
  fired), the merged pattern Q' has the same matches as Q on every
  graph G |= Σ — a match of Q must send merged variables to the same
  node anyway, because G satisfies the very dependencies that forced
  the merge.  If the chase is *inconsistent*, Q is unsatisfiable over
  graphs satisfying Σ when its premise holds vacuously — reported so a
  query planner can answer without touching the data.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.chase.canonical import canonical_graph
from repro.chase.engine import ChaseResult, chase
from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, Literal
from repro.matching.plan import compile_plan
from repro.patterns.pattern import Pattern


def is_core(pattern: Pattern) -> bool:
    """Whether the pattern admits no non-surjective endomorphism."""
    return _proper_retraction(pattern) is None


def core(pattern: Pattern) -> tuple[Pattern, dict[str, str]]:
    """The core of ``pattern`` and the folding map onto it.

    The returned mapping sends every original variable to the variable
    representing it in the core (identity on retained variables).
    Iterates retractions to a fixpoint; the core is unique up to
    isomorphism, and our deterministic search makes the output stable.
    """
    current = pattern
    folding = {v: v for v in pattern.variables}
    while True:
        retraction = _proper_retraction(current)
        if retraction is None:
            return current, folding
        image = sorted(set(retraction.values()), key=current.variables.index)
        current = _induced_subpattern(current, image)
        folding = {v: retraction[folding[v]] for v in folding}


def _proper_retraction(pattern: Pattern) -> dict[str, str] | None:
    """A non-surjective endomorphism of the pattern, if one exists.

    Endomorphisms are matches of the pattern in its own canonical
    graph; node ids of G_Q are exactly the variables, so a match *is*
    a variable → variable map.  Enumerated via the compiled plan of the
    pattern over its own canonical view (each core iteration shrinks
    the pattern, so each round compiles one fresh, tiny plan).
    """
    g_q = canonical_graph(pattern)
    n = pattern.num_variables
    for match in compile_plan(g_q, pattern).matches():
        if len(set(match.values())) < n:
            return dict(match)
    return None


def _induced_subpattern(pattern: Pattern, keep: Sequence[str]) -> Pattern:
    kept = set(keep)
    nodes = {v: pattern.label_of(v) for v in keep}
    edges = [
        (s, l, t) for (s, l, t) in pattern.edges if s in kept and t in kept
    ]
    return Pattern(nodes, edges, variables=list(keep))


@dataclass
class MinimizationResult:
    """Outcome of chase-based minimization of Q under Σ.

    ``pattern`` — the reduced pattern Q' (equal to the input when Σ
    merged nothing).  ``mapping`` — original variable → representative
    variable of Q'.  ``implied`` — constant literals Σ pins on Q''s
    variables (usable as match-time filters).  ``unsatisfiable`` — the
    chase of G_Q was inconsistent: no graph satisfying Σ matches Q
    *with the chase's premises satisfiable*; a planner may prune the
    query entirely.
    """

    pattern: Pattern
    mapping: dict[str, str]
    implied: list[Literal] = field(default_factory=list)
    unsatisfiable: bool = False
    chase_result: ChaseResult | None = None

    @property
    def merged_any(self) -> bool:
        return len(set(self.mapping.values())) < len(self.mapping)


def minimize_pattern(
    pattern: Pattern,
    sigma: Sequence[GED],
    also_core: bool = False,
) -> MinimizationResult:
    """Minimize ``pattern`` relative to ``sigma`` by chasing G_Q.

    With ``also_core`` the Σ-reduced pattern is further folded onto its
    core (dependency-free minimization composes soundly after the
    Σ-aware step).
    """
    g_q = canonical_graph(pattern)
    result = chase(g_q, list(sigma))
    if not result.consistent:
        return MinimizationResult(
            pattern, {v: v for v in pattern.variables}, [], True, result
        )

    mapping = {
        v: result.eq.node_representative(v) for v in pattern.variables
    }
    representatives = sorted(set(mapping.values()), key=pattern.variables.index)
    if len(representatives) < pattern.num_variables:
        merged = _quotient_pattern(pattern, mapping, representatives, result)
    else:
        merged = pattern

    implied = _implied_constants(merged, result)

    if also_core:
        folded, fold_map = core(merged)
        mapping = {v: fold_map[mapping[v]] for v in mapping}
        merged = folded
        implied = [
            l for l in implied if isinstance(l, ConstantLiteral) and merged.has_variable(l.var)
        ]
    return MinimizationResult(merged, mapping, implied, False, result)


def _quotient_pattern(
    pattern: Pattern,
    mapping: dict[str, str],
    representatives: Sequence[str],
    result: ChaseResult,
) -> Pattern:
    """The pattern on Eq-class representatives, with projected edges
    and the coercion's labels (a wildcard class takes the concrete
    label of any member, per Section 4's coercion rule (c))."""
    labels: dict[str, str] = {}
    for rep in representatives:
        labels[rep] = result.graph.node(rep).label
    edges = [
        (mapping[s], l, mapping[t]) for (s, l, t) in pattern.edges
    ]
    return Pattern(labels, edges, variables=list(representatives))


def _implied_constants(merged: Pattern, result: ChaseResult) -> list[Literal]:
    """Constant literals the chase pinned on surviving variables."""
    implied: list[Literal] = []
    for variable in merged.variables:
        node = result.eq.node_representative(variable)
        for attr in sorted(result.eq.class_attr_names(node)):
            value = result.eq.attr_constant(node, attr)
            if value is not None:
                implied.append(ConstantLiteral(variable, attr, value))
    return implied


__all__ = ["MinimizationResult", "core", "is_core", "minimize_pattern"]
