"""Rule-set minimization (the paper's redundant-rule elimination).

Built on the Theorem 4/5 implication machinery: Σ is shrunk to an
equivalent subset.  Because implication checks chase the canonical
graph — NP-hard in general — we first apply a cheap **structural
deduplication** pass (exact duplicates and pattern-renamed duplicates),
then the implication-based greedy cover.  On realistic rule sets most
redundancy is structural (copy-pasted rules with renamed variables), so
the cheap pass pays for itself before a single chase runs.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.deps.ged import GED
from repro.deps.literals import substitute
from repro.matching.homomorphism import find_homomorphisms
from repro.chase.canonical import canonical_graph
from repro.reasoning.implication import minimal_cover


@dataclass
class CoverReport:
    """What :func:`compute_cover` kept and why the rest was dropped."""

    cover: list[GED]
    structural_duplicates: list[GED] = field(default_factory=list)
    implied: list[GED] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.structural_duplicates) + len(self.implied)


def structural_dedup(sigma: Sequence[GED]) -> tuple[list[GED], list[GED]]:
    """Split Σ into (kept, duplicates) using renaming-isomorphism.

    Two GEDs are structural duplicates when some pattern isomorphism
    maps one's pattern onto the other's *and* carries X and Y across
    exactly.  No chase is involved, so this is cheap (pattern sizes are
    small in practice — Section 5.3's bounded-size observation).
    """
    kept: list[GED] = []
    duplicates: list[GED] = []
    for ged in sigma:
        if any(_renamed_duplicate(ged, other) for other in kept):
            duplicates.append(ged)
        else:
            kept.append(ged)
    return kept, duplicates


def _renamed_duplicate(ged1: GED, ged2: GED) -> bool:
    """Whether some variable bijection turns ged1 into ged2."""
    p1, p2 = ged1.pattern, ged2.pattern
    if p1.num_variables != p2.num_variables or p1.num_edges != p2.num_edges:
        return False
    if sorted(p1.labels.values()) != sorted(p2.labels.values()):
        return False
    g2 = canonical_graph(p2)
    for match in find_homomorphisms(p1, g2):
        if len(set(match.values())) != p1.num_variables:
            continue  # not injective, not an isomorphism
        # Exact label equality (≼ would let wildcards fold onto
        # concrete labels, which is not a renaming).
        if any(p1.label_of(v) != p2.label_of(match[v]) for v in p1.variables):
            continue
        mapped_edges = {(match[s], l, match[t]) for (s, l, t) in p1.edges}
        if mapped_edges != set(p2.edges):
            continue
        if frozenset(substitute(l, match) for l in ged1.X) != ged2.X:
            continue
        if frozenset(substitute(l, match) for l in ged1.Y) != ged2.Y:
            continue
        return True
    return False


def compute_cover(sigma: Sequence[GED], dedup_first: bool = True) -> CoverReport:
    """An equivalent, non-redundant subset of Σ with provenance.

    ``dedup_first`` toggles the structural pass (the ablation benchmark
    measures its effect on total cover time).
    """
    sigma = list(sigma)
    if dedup_first:
        survivors, duplicates = structural_dedup(sigma)
    else:
        survivors, duplicates = sigma, []
    cover = minimal_cover(survivors)
    kept_ids = set(map(id, cover))
    implied = [ged for ged in survivors if id(ged) not in kept_ids]
    return CoverReport(cover, duplicates, implied)


__all__ = ["CoverReport", "compute_cover", "structural_dedup"]
