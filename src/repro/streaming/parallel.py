"""The engine-backed delta path: changed-node pivots over warm workers.

A streaming graph mutates every batch, which is exactly what the engine
pool registry treats as grounds for retiring a warm pool — so the
streaming path cannot use :func:`repro.engine.pool.get_pool` (it would
re-broadcast the whole graph per batch and lose to serial immediately).
:class:`EngineDeltaExecutor` instead owns a *private*
:class:`~repro.engine.pool.EnginePool` and keeps its workers warm by
**replicating the update stream** rather than re-snapshotting the graph:

* the coordinator appends every batch to a bounded replication log,
  stamped with a monotone sequence number;
* each delta task ships the log tail alongside its pivot shard; a worker
  first fast-forwards its replica (applying, through the ordinary
  validating + index-maintaining path, exactly the batches it has not
  seen — workers that served the previous batch apply one, workers that
  sat idle catch up), then runs the ball-restricted kernel of
  :func:`~repro.streaming.delta.delta_violations` on its shard;
* when the log outgrows ``max_pending`` batches the executor
  re-broadcasts a fresh snapshot — the streaming analogue of the update
  log's periodic checkpoints — and the log resets.

Shards partition the touched-node pivots, so each worker pins only its
own pivots; one match meeting touched nodes in two shards is found
twice and de-duplicated (deterministically) at the merge.  The merged
result is byte-identical to the serial kernel's — the backend
determinism property tests assert it.
"""

from __future__ import annotations

import itertools
import os
from collections.abc import Iterable, Sequence

from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.graph.update import GraphUpdate
from repro.reasoning.validation import Violation

from repro.streaming.delta import TaggedViolation, delta_violations

# ----------------------------------------------------------------------
# Worker side (top level: importable by the executor's pickler)
# ----------------------------------------------------------------------


class _WorkerStreamState:
    """Replica progress of one worker process, keyed by pool epoch.

    ``seq`` is the highest update sequence number applied to the
    worker's graph replica (0 = the broadcast snapshot itself), valid
    only for the pool *epoch* that broadcast the snapshot.  A module-
    global bare integer — the previous design — could survive into a
    recycled or forked worker process serving a **different** pool and
    make it "fast-forward" from a stale sequence number, silently
    skipping batches; comparing the task's epoch first guarantees a
    worker whose state predates the current broadcast starts from the
    snapshot (seq 0) instead.
    """

    __slots__ = ("epoch", "seq")

    def __init__(self) -> None:
        self.epoch: tuple | None = None
        self.seq = 0

    def enter_epoch(self, epoch: tuple) -> None:
        """Reset the replica cursor when the stream identity changes."""
        if self.epoch != epoch:
            self.epoch = epoch
            self.seq = 0


_WORKER_STREAM = _WorkerStreamState()


def _stream_delta_task(
    epoch: tuple,
    pending: tuple[tuple[int, GraphUpdate], ...],
    target_seq: int,
    shard: tuple[str, ...],
    collect: bool = False,
    trace=None,
):
    """Fast-forward the worker replica, then run the kernel on a shard.

    The rule set rides the pool broadcast (``EnginePool``'s ``extra``
    payload), not the task: Σ is constant for the executor's lifetime,
    so it is shipped once per worker instead of once per shard task.
    ``epoch`` identifies the broadcast this task's sequence numbers are
    relative to (see :class:`_WorkerStreamState`).  ``collect=True``
    (coordinator telemetry enabled) additionally returns ``(results,
    snapshot)`` with the shard's metrics for coordinator-side merging;
    ``trace`` (a :class:`~repro.telemetry.trace.TraceContext`) puts the
    shard's ``stream.shard`` span — and any slow-plan captures — into
    the coordinator's causal tree, shipped home inside the snapshot.
    """
    from repro.engine.pool import _worker_extra, _worker_graph
    from repro.reasoning.incremental import apply_update
    from repro.telemetry import metrics as _metrics
    from repro.telemetry import spans as _spans
    from repro.telemetry import trace as _trace

    state = _WORKER_STREAM
    state.enter_epoch(epoch)
    graph = _worker_graph()
    sigma: list[GED] = _worker_extra()
    for seq, update in pending:
        if seq > state.seq:
            apply_update(graph, update)
            state.seq = seq
    if state.seq != target_seq:
        raise RuntimeError(
            f"stream replica out of sync: worker at {state.seq}, "
            f"coordinator at {target_seq}"
        )
    if not collect:
        return delta_violations(graph, sigma, set(shard))
    with _metrics.collecting() as registry:
        with _trace.tracing(trace), _spans.span("stream.shard", nodes=len(shard)):
            results = delta_violations(graph, sigma, set(shard))
    return results, _spans.collected_snapshot(registry)


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------

#: Monotone broadcast-epoch source; combined with the coordinator's pid
#: so epochs are unique even across forked coordinators.
_EPOCH_COUNTER = itertools.count(1)


def _new_epoch() -> tuple:
    return (os.getpid(), next(_EPOCH_COUNTER))


class EngineDeltaExecutor:
    """Shards the introduced-violation scan over a replicated warm pool.

    Construct against the *pre-stream* graph (the snapshot workers
    rebuild once); thereafter hand :meth:`refresh` every batch — in
    order, every batch, even ones with no live touched nodes — so the
    replicas never diverge from the coordinator.
    """

    def __init__(
        self,
        graph: Graph,
        sigma: Sequence[GED],
        workers: int | None = None,
        *,
        max_pending: int = 64,
    ):
        from repro.engine.pool import resolve_workers

        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.graph = graph
        self.sigma = list(sigma)
        self.workers = resolve_workers(workers)
        self.max_pending = max_pending
        self.seq = 0
        self.rebroadcasts = 0
        self._snapshot_seq = 0
        self._log: list[tuple[int, GraphUpdate]] = []
        self._pool = None
        self._broadcast()

    def _broadcast(self) -> None:
        """(Re)snapshot the coordinator graph into a fresh pool.

        Fresh worker processes start their replica counter at 0, so log
        entries are shipped with sequence numbers *relative to the
        snapshot* (``_snapshot_seq``) — after a re-broadcast the empty
        log and a relative target of 0 line up with the new workers.
        """
        from repro.engine.pool import EnginePool
        from repro.engine.snapshot import snapshot_graph

        if self._pool is not None:
            self._pool.close()
            self.rebroadcasts += 1
        self._pool = EnginePool(
            snapshot_graph(self.graph), self.workers, extra=list(self.sigma)
        )
        self._epoch = _new_epoch()
        self._snapshot_seq = self.seq
        self._log = []

    def refresh(self, update: GraphUpdate, touched: Iterable[str]) -> list[TaggedViolation]:
        """The introduced-violation scan for one (already applied) batch."""
        if self._pool is None:
            raise RuntimeError("executor is closed")
        self.seq += 1
        self._log.append((self.seq, update))
        if len(self._log) > self.max_pending:
            # Checkpoint: the fresh snapshot already contains every
            # logged batch, so the log starts over empty.
            self._broadcast()
        live = sorted(n for n in set(touched) if self.graph.has_node(n))
        if not live:
            return []
        shard_count = min(self.workers, len(live))
        shards: list[list[str]] = [[] for _ in range(shard_count)]
        for position, node_id in enumerate(live):
            shards[position % shard_count].append(node_id)
        pending = tuple(
            (seq - self._snapshot_seq, update) for seq, update in self._log
        )
        target_seq = self.seq - self._snapshot_seq
        from repro.telemetry import metrics as _metrics
        from repro.telemetry import spans as _spans
        from repro.telemetry import trace as _trace

        sink = _metrics.sink()
        collect = sink.enabled
        ctx = _trace.propagation_context() if collect else None
        results = self._pool.run_tasks(
            _stream_delta_task,
            [
                (self._epoch, pending, target_seq, tuple(shard), collect, ctx)
                for shard in shards
            ],
        )
        if collect:
            unwrapped = []
            for shard_result, snapshot in results:
                sink.merge(snapshot)
                _spans.absorb_remote(snapshot)
                unwrapped.append(shard_result)
            results = unwrapped
        # Merge: dedup across shards (a match meeting touched nodes in
        # two shards is found by both), deterministically ordered, and
        # re-anchored on the coordinator's own GED instances (workers
        # return pickle-copies).
        merged: dict[tuple[int, tuple[tuple[str, str], ...]], Violation] = {}
        for shard_result in results:
            for dep_index, violation in shard_result:
                key = (dep_index, violation.match)
                if key not in merged:
                    merged[key] = Violation(
                        self.sigma[dep_index], violation.match, violation.failed
                    )
        return [(key[0], merged[key]) for key in sorted(merged)]

    def close(self) -> None:
        """Release the engine pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "EngineDeltaExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EngineDeltaExecutor(workers={self.workers}, seq={self.seq}, "
            f"pending={len(self._log)}, rebroadcasts={self.rebroadcasts})"
        )


__all__ = ["EngineDeltaExecutor"]
