"""Fragment-routed streaming: per-fragment replication and local deltas.

The engine-backed delta path (:mod:`repro.streaming.parallel`) keeps
workers warm by replicating the **whole** update stream to every worker
— per-worker log traffic is O(k · |batch|).  This module routes instead:
a :class:`FragmentDeltaRouter` maintains a
:class:`~repro.graph.fragments.FragmentedGraph` mirror of the stream and
hands each batch to :meth:`~repro.graph.fragments.FragmentedGraph.apply_update`,
whose :func:`~repro.graph.fragments.route_update` slices carry **only
what each fragment must see** — its own operations plus border-replica
coherence traffic.  The summed slice sizes (``ops_routed``) versus
``k × batch size`` (``ops_full``) quantify the replication saved; the
per-fragment indexes are maintained by the same slices.

The introduced-violation scan is fragment-local where the
ball-completeness rule allows: a touched node whose max-pattern-radius
ball closes inside its owner fragment is scanned by the ordinary
:func:`~repro.streaming.delta.delta_violations` kernel **on the
fragment's induced subgraph**; touched nodes whose balls cross cuts —
and every dependency whose pattern spans multiple weakly connected
components (a pin leaves the other components unconstrained, so no
fragment suffices) — escalate to the same kernel on the coordinator's
whole graph.  Duplicates across passes (one match meeting touched nodes
in two fragments) are resolved by the ledger's keyed insert, exactly as
on the engine path; the maintained violation set stays byte-identical
to the serial kernel's, which the property tests assert.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.deps.ged import GED
from repro.graph.fragments import FragmentedGraph
from repro.graph.graph import Graph
from repro.graph.update import GraphUpdate
from repro.indexing.registry import get_index
from repro.matching.locality import ball_closes_locally, pattern_radius, pivot_radius
from repro.telemetry import metrics as _metrics

from repro.streaming.delta import TaggedViolation, delta_violations


class FragmentDeltaRouter:
    """Routes one update stream through a fragmented mirror.

    Construct against the *pre-stream* graph (the mirror partitions a
    copy of it); thereafter hand :meth:`refresh` every batch — in
    order, every batch — so the mirror never diverges from the
    coordinator's graph.
    """

    def __init__(
        self,
        graph: Graph,
        sigma: Sequence[GED],
        fragments: int | None = None,
        mode: str = "hash",
    ):
        from repro.engine.pool import resolve_workers

        self.sigma = list(sigma)
        self.k = resolve_workers(fragments)
        self.mode = mode
        self.mirror = FragmentedGraph.partition(
            graph, self.k, mode, indexed=get_index(graph) is not None
        )
        # Dependencies whose pattern is weakly connected — any variable
        # has a finite pivot radius — can run fragment-locally; the rest
        # always escalate (positions kept so reported indices stay
        # relative to the full Σ).
        self._local_positions = [
            position
            for position, ged in enumerate(self.sigma)
            if pivot_radius(ged.pattern, next(iter(ged.pattern.variables))) is not None
        ]
        self._global_positions = [
            position
            for position in range(len(self.sigma))
            if position not in self._local_positions
        ]
        self._local_sigma = [self.sigma[position] for position in self._local_positions]
        self._global_sigma = [self.sigma[position] for position in self._global_positions]
        self._radius = max(
            (pattern_radius(ged.pattern) for ged in self._local_sigma), default=0
        )
        self.ops_routed = 0
        self.ops_full = 0
        self.escalated_nodes = 0

    def refresh(
        self, graph: Graph, update: GraphUpdate, touched: Iterable[str]
    ) -> list[TaggedViolation]:
        """Route one (already applied to ``graph``) batch and return the
        introduced-violation candidates meeting ``touched``."""
        routed = self.mirror.apply_update(update)
        self.ops_routed += routed.total_operations()
        self.ops_full += self.k * update.size()

        live = sorted(node_id for node_id in set(touched) if graph.has_node(node_id))
        if not live:
            return []
        fragmentation = self.mirror.fragmentation
        per_fragment: dict[int, list[str]] = {}
        escalated: list[str] = []
        for node_id in live:
            fragment = fragmentation.fragment_of(node_id)
            if ball_closes_locally(
                fragment.graph, fragment.interior, node_id, self._radius
            ):
                per_fragment.setdefault(fragment.index, []).append(node_id)
            else:
                escalated.append(node_id)
        self.escalated_nodes += len(escalated)
        sink = _metrics.sink()
        sink.incr("stream.pivots.local", len(live) - len(escalated))
        sink.incr("stream.pivots.escalated", len(escalated))

        found: list[TaggedViolation] = []

        def remap(results: list[TaggedViolation], positions: list[int]) -> None:
            """Translate a kernel's fragment-local rule indexes back to Σ."""
            for local_index, violation in results:
                position = positions[local_index]
                # Re-anchor on the coordinator's own GED instance (the
                # fragment kernel saw the same object, but keep the
                # contract explicit for future remote fragments).
                found.append((position, violation))

        if self._local_sigma:
            for fragment_index in sorted(per_fragment):
                fragment = fragmentation.fragments[fragment_index]
                remap(
                    delta_violations(
                        fragment.graph, self._local_sigma, per_fragment[fragment_index]
                    ),
                    self._local_positions,
                )
            if escalated:
                remap(
                    delta_violations(graph, self._local_sigma, escalated),
                    self._local_positions,
                )
        if self._global_sigma:
            remap(
                delta_violations(graph, self._global_sigma, live),
                self._global_positions,
            )
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FragmentDeltaRouter(k={self.k}, mode={self.mode!r}, "
            f"routed={self.ops_routed}, full={self.ops_full}, "
            f"escalated={self.escalated_nodes})"
        )


__all__ = ["FragmentDeltaRouter"]
