"""The streaming delta kernel: violations introduced by one update batch.

A violation introduced by a batch must have a *touched element* in the
image of its match: additions only create matches through the new
elements, deletions only destroy matches or change literal values at
the deleted element's node.  The kernel therefore pins each pattern
variable to each touched node in turn — but unlike the one-shot
:func:`repro.reasoning.incremental.incremental_violations`, it never
hands the matcher whole-graph candidate pools.  Each pin searches only a
**pattern-radius ball** around the pinned node:

* pattern distances — for variables u, w in the same weakly connected
  component of Q, any match sends their images to nodes within
  undirected graph distance ``dist_Q(u, w)`` of each other (every
  pattern edge maps to a graph edge), so w's pool is the ball of that
  radius around the pinned node, filtered by ``≼`` on labels;
* variables in *other* components of Q are unconstrained by the pin and
  keep their label pools (computed once per dependency, not per pin);
* with a synced :mod:`repro.indexing` index attached, a pin is
  dropped before any search when the node's 1-hop neighborhood
  signature cannot admit the variable's pattern edges
  (:meth:`~repro.indexing.pruning.CandidatePruner.admissible`), and the
  X-literal restriction pools of
  :func:`~repro.reasoning.validation.x_literal_restrictions` shrink the
  search further.

All of these are necessary conditions, so the kernel finds exactly the
violations whose match meets the touched set — work proportional to the
update's neighborhood, not to |G|.

Each pin runs the plan executor **view-free** over its ball pools
(:func:`~repro.matching.plan.execute_over_pools`): the compiled pattern
program is cached per dependency (the ``_steps_for`` cache keyed by
``(pattern, order)``, alongside the memoized :func:`pattern_distances`),
so plan compilation is paid once per dependency, not once per pinned
node or per batch — and, crucially, no O(|G|) graph-view build is paid
on a graph that mutates every batch.

Σ-sharing rides the same observation as :mod:`repro.matching.sigma_dag`:
rule sets are families of literal variants over few distinct skeletons,
so within one batch the *pin streams* — the matches of (pattern,
pinned variable, pinned node) under a given restriction — repeat
across dependencies verbatim.  The kernel memoizes each stream the
first time it is enumerated and replays it for every later dependency
sharing the skeleton, skipping the ball construction and the plan walk
entirely (``matching.sigma.stream_reuse`` counts the replays).
Per-dependency de-duplication applies after replay, so reported
violations are untouched.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.indexing.registry import get_index
from repro.matching.locality import ball_levels, pattern_distances, pattern_radius
from repro.matching.plan import execute_over_pools
from repro.patterns.labels import WILDCARD, matches
from repro.reasoning.validation import (
    Violation,
    evaluate_match,
    x_literal_restrictions,
)
from repro.telemetry import metrics as _metrics

#: A found violation, tagged with its dependency's position in Σ (the
#: ledger's key space; positions disambiguate equal rules).
TaggedViolation = tuple[int, Violation]


def _label_pool(graph: Graph, label: str) -> set[str]:
    if label == WILDCARD:
        return set(graph.node_ids)
    return graph.nodes_with_label(label)


def _restrict_token(restrict: dict[str, set[str]] | None):
    """A hashable identity for a restriction mapping (stream memo key)."""
    if restrict is None:
        return None
    return frozenset((var, frozenset(pool)) for var, pool in restrict.items())


def delta_violations(
    graph: Graph,
    sigma: Sequence[GED],
    touched: Iterable[str],
) -> list[TaggedViolation]:
    """All violations of Σ (post-update) whose match meets ``touched``.

    ``graph`` must already have the update applied; touched ids that no
    longer exist (deletions) are skipped — they cannot host matches.
    Deterministic: dependencies in Σ order, pinned nodes sorted, the
    matcher's own enumeration order within each pin; duplicates (one
    match meeting several touched nodes) are reported once, and the
    per-dependency de-duplication works across calls only through the
    ledger (each call stands alone).
    """
    live = sorted(node_id for node_id in set(touched) if graph.has_node(node_id))
    if not live:
        return []
    index = get_index(graph)
    pruner = None
    if index is not None:
        from repro.indexing.pruning import CandidatePruner

        pruner = CandidatePruner(graph, index)

    radius = max((pattern_radius(ged.pattern) for ged in sigma), default=0)
    balls: dict[str, list[set[str]]] = {}
    # Pin streams memoized across dependencies: two rules sharing a
    # skeleton (and restriction) enumerate identical matches per pin,
    # so the second one replays the first's stream instead of
    # rebuilding ball pools and re-running the plan.
    streams: dict[tuple, list[tuple[tuple[str, str], ...]]] = {}
    sink = _metrics.sink()
    found: list[TaggedViolation] = []

    for dep_index, ged in enumerate(sigma):
        pattern = ged.pattern
        restrict = x_literal_restrictions(graph, ged)
        restrict_token = _restrict_token(restrict)
        distances = pattern_distances(pattern)
        # Label pools for variables in *other* components, shared by
        # every pin of this dependency.
        free_pools: dict[str, set[str]] = {}
        seen: set[tuple[tuple[str, str], ...]] = set()
        for node_id in live:
            node_label = graph.node(node_id).label
            for variable in pattern.variables:
                if not matches(pattern.label_of(variable), node_label):
                    continue
                if pruner is not None and not pruner.admissible(pattern, variable, node_id):
                    continue
                stream_key = (pattern, variable, node_id, restrict_token)
                stream = streams.get(stream_key)
                if stream is None:
                    levels = balls.get(node_id)
                    if levels is None:
                        levels = balls[node_id] = ball_levels(graph, node_id, radius)
                    reachable = distances[variable]
                    pools: dict[str, set[str]] = {}
                    for other in pattern.variables:
                        if other == variable:
                            pools[other] = {node_id}
                            continue
                        label = pattern.label_of(other)
                        distance = reachable.get(other)
                        if distance is None:  # different component: label pool
                            pool = free_pools.get(other)
                            if pool is None:
                                pool = free_pools[other] = _label_pool(graph, label)
                            pools[other] = pool
                        else:
                            ball = levels[min(distance, len(levels) - 1)]
                            pools[other] = {
                                m for m in ball if matches(label, graph.node(m).label)
                            }
                    stream = streams[stream_key] = [
                        tuple(sorted(match.items()))
                        for match in execute_over_pools(
                            pattern, graph, pools, restrict=restrict
                        )
                    ]
                else:
                    sink.incr("matching.sigma.stream_reuse")
                for key in stream:
                    if key in seen:
                        continue
                    seen.add(key)
                    failed = evaluate_match(graph, ged, dict(key))
                    if failed:
                        found.append((dep_index, Violation(ged, key, failed)))
    return found


__all__ = [
    "TaggedViolation",
    "ball_levels",
    "delta_violations",
    "pattern_distances",
    "pattern_radius",
]
