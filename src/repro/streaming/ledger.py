"""The maintained violation set: exact deltas per update batch.

:class:`ViolationLedger` holds the *current* violation set of (G, Σ)
keyed by ``(dependency position in Σ, embedding)`` and, per
:class:`~repro.graph.update.GraphUpdate` batch, computes an exact delta:

* **retired / updated** — an inverted *embedding index* (node id → ledger
  keys whose match image contains it) selects exactly the entries whose
  embedding meets the batch's touched set; only those are re-checked
  (does the match still exist? does X still hold? which Y literals fail
  now?).  Entries whose embeddings avoid every touched element evaluated
  identically before the batch and are never looked at.
* **introduced** — the :mod:`~repro.streaming.delta` kernel enumerates
  every post-update violation whose match meets the touched set (ball-
  restricted pivot-pinned matching); keys not yet in the ledger are the
  introduced ones.  A key the kernel re-finds that the ledger already
  holds was itself re-checked by the retirement pass (its embedding
  meets the touched set), so the two passes agree.

The result is an invariant the property tests assert byte-for-byte:
after any stream of batches, :meth:`violations` equals a from-scratch
:func:`~repro.reasoning.validation.find_violations` on the final graph
(canonically ordered), with or without an index attached, on the serial
and engine-pooled delta paths alike.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.graph.update import GraphUpdate
from repro.matching.homomorphism import is_homomorphism
from repro.reasoning.validation import Violation, evaluate_match, find_violations
from repro.telemetry import metrics as _metrics
from repro.telemetry import spans as _spans

from repro.streaming.delta import delta_violations

#: Ledger key: (position of the dependency in Σ, the match embedding).
LedgerKey = tuple[int, tuple[tuple[str, str], ...]]

_BACKENDS = ("serial", "engine", "fragment")


def violation_to_dict(violation: Violation) -> dict[str, Any]:
    """The NDJSON representation of one violation (docs/update-log.md)."""
    return {
        "rule": violation.ged.name,
        "match": [[variable, node] for variable, node in violation.match],
        "failed": [str(literal) for literal in violation.failed],
    }


def canonical_report(sigma: Sequence[GED], violations: Sequence[Violation]) -> list[Violation]:
    """Sort a violation list into the ledger's canonical order.

    Order: position of the dependency in Σ (by object identity — the
    violations must reference Σ's own GED instances, which is what
    ``find_violations`` produces), then embedding.  Applying this to a
    from-scratch report makes it directly comparable — byte-identical
    after serialization — to :meth:`ViolationLedger.violations`.
    """
    position = {id(ged): index for index, ged in enumerate(sigma)}
    return sorted(violations, key=lambda v: (position[id(v.ged)], v.match))


@dataclass
class StreamDelta:
    """What one batch did to the violation set."""

    seq: int
    introduced: list[Violation] = field(default_factory=list)
    retired: list[Violation] = field(default_factory=list)
    updated: list[Violation] = field(default_factory=list)  # same key, new failed set
    rechecked: int = 0  # ledger entries re-evaluated
    touched: int = 0  # nodes touched by the batch
    wall_seconds: float = 0.0

    def is_empty(self) -> bool:
        """True when the batch changed no violation entry (the counters
        may still be non-zero: embeddings rechecked, nothing moved)."""
        return not (self.introduced or self.retired or self.updated)

    def to_dict(self) -> dict[str, Any]:
        """The NDJSON delta line (sans the "type" envelope the CLI adds)."""
        return {
            "seq": self.seq,
            "introduced": [violation_to_dict(v) for v in self.introduced],
            "retired": [violation_to_dict(v) for v in self.retired],
            "updated": [violation_to_dict(v) for v in self.updated],
            "rechecked": self.rechecked,
            "touched": self.touched,
            "wall_seconds": self.wall_seconds,
        }


class ViolationLedger:
    """Continuous violation maintenance over a stream of update batches.

    Parameters
    ----------
    graph:
        the live data graph; the ledger applies every batch to it (via
        the validating, index-maintaining
        :func:`~repro.reasoning.incremental.apply_update`).
    sigma:
        the dependency set; fixed for the ledger's lifetime.
    backend:
        ``"serial"`` runs the introduced-violation kernel in-process;
        ``"engine"`` shards its pivots over a dedicated warm
        :mod:`repro.engine` pool whose workers replicate each batch
        instead of being re-broadcast (see
        :class:`repro.streaming.parallel.EngineDeltaExecutor`);
        ``"fragment"`` routes each batch to a fragmented mirror so the
        per-fragment replication log carries only its slice, and runs
        the introduced scan fragment-locally with cut escalation (see
        :class:`repro.streaming.fragments.FragmentDeltaRouter`).
    workers:
        pool size for the engine backend, fragment count for the
        fragment backend (``None`` = one per CPU).
    fragment_mode:
        partitioner for the fragment backend (``"hash"`` / ``"greedy"``).
    """

    def __init__(
        self,
        graph: Graph,
        sigma: Sequence[GED],
        *,
        backend: str = "serial",
        workers: int | None = None,
        fragment_mode: str = "hash",
    ):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.graph = graph
        self.sigma = list(sigma)
        self.backend = backend
        self.workers = workers
        self.fragment_mode = fragment_mode
        self.seq = 0
        self._entries: dict[LedgerKey, Violation] = {}
        self._by_node: dict[str, set[LedgerKey]] = {}
        self._position = {id(ged): index for index, ged in enumerate(self.sigma)}
        self._executor = None  # created lazily on the first engine refresh
        self._router = None  # created lazily on the first fragment refresh

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _insert(self, key: LedgerKey, violation: Violation) -> None:
        self._entries[key] = violation
        for _, node_id in key[1]:
            self._by_node.setdefault(node_id, set()).add(key)

    def _remove(self, key: LedgerKey) -> None:
        del self._entries[key]
        for _, node_id in key[1]:
            keys = self._by_node.get(node_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_node[node_id]

    def _evaluate(self, key: LedgerKey) -> Violation | None:
        """Re-derive one entry's current status from the graph."""
        dep_index, match = key
        ged = self.sigma[dep_index]
        assignment = dict(match)
        if not all(self.graph.has_node(node_id) for node_id in assignment.values()):
            return None
        if not is_homomorphism(ged.pattern, self.graph, assignment):
            return None
        failed = evaluate_match(self.graph, ged, assignment)
        if failed is None:
            return None
        return Violation(ged, match, failed)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self) -> list[Violation]:
        """Seed the ledger with a full validation of the current graph."""
        self._entries.clear()
        self._by_node.clear()
        for violation in find_violations(self.graph, self.sigma):
            key = (self._position[id(violation.ged)], violation.match)
            self._insert(key, violation)
        return self.violations()

    def refresh(self, update: GraphUpdate) -> StreamDelta:
        """Apply one batch and return the exact violation delta."""
        started = time.perf_counter()
        touched = update.touched_nodes()
        if self.backend == "engine" and self._executor is None:
            from repro.streaming.parallel import EngineDeltaExecutor

            # The executor snapshots the *pre-batch* graph; every batch
            # from here on is replicated to its workers.
            self._executor = EngineDeltaExecutor(self.graph, self.sigma, self.workers)
        if self.backend == "fragment" and self._router is None:
            from repro.streaming.fragments import FragmentDeltaRouter

            # The router partitions the *pre-batch* graph; every batch
            # from here on is routed to its fragments as slices.
            self._router = FragmentDeltaRouter(
                self.graph, self.sigma, self.workers, self.fragment_mode
            )
        from repro.reasoning.incremental import apply_update

        apply_update(self.graph, update)  # validates the whole batch first
        self.seq += 1
        delta = StreamDelta(seq=self.seq, touched=len(touched))

        # -- retire / update: exactly the entries meeting the batch ----
        affected: set[LedgerKey] = set()
        for node_id in touched:
            affected |= self._by_node.get(node_id, set())
        delta.rechecked = len(affected)
        with _spans.span("stream.retire_check", affected=len(affected)):
            for key in sorted(affected):
                old = self._entries[key]
                current = self._evaluate(key)
                if current is None:
                    self._remove(key)
                    delta.retired.append(old)
                elif current.failed != old.failed:
                    self._entries[key] = current
                    delta.updated.append(current)

        # -- introduce: every post-batch violation meeting the batch ---
        with _spans.span("stream.introduce", backend=self.backend):
            if self._executor is not None:
                found = self._executor.refresh(update, touched)
            elif self._router is not None:
                found = self._router.refresh(self.graph, update, touched)
            else:
                found = delta_violations(self.graph, self.sigma, touched)
        # Canonical (dep position, embedding) order: the serial kernel
        # yields pin-enumeration order and the engine merge is sorted —
        # sorting here makes the emitted delta backend-independent.
        for dep_index, violation in sorted(found, key=lambda f: (f[0], f[1].match)):
            key = (dep_index, violation.match)
            if key not in self._entries:
                self._insert(key, violation)
                delta.introduced.append(violation)

        delta.wall_seconds = time.perf_counter() - started
        sink = _metrics.sink()
        if sink.enabled:
            sink.incr("stream.batches")
            sink.incr("stream.introduced", len(delta.introduced))
            sink.incr("stream.retired", len(delta.retired))
            sink.incr("stream.updated", len(delta.updated))
            sink.incr("stream.rechecked", delta.rechecked)
            sink.incr("stream.touched", delta.touched)
            sink.observe(
                "stream.batch_seconds", delta.wall_seconds, _metrics.SECONDS_BOUNDS
            )
        return delta

    def close(self) -> None:
        """Shut down the engine executor's worker pool, if one exists
        (the fragment router is in-process and just dropped)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        self._router = None

    def __enter__(self) -> "ViolationLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def violations(self) -> list[Violation]:
        """The current violation set, canonically ordered (Σ position,
        then embedding) — comparable byte-for-byte to a canonically
        ordered from-scratch report."""
        return [self._entries[key] for key in sorted(self._entries)]

    def entries(self) -> list[tuple[int, Violation]]:
        """The current violation set as ``(Σ position, violation)``
        pairs in canonical order — what consumers that need the
        dependency's position (the serve layer's filters) iterate."""
        return [(key[0], self._entries[key]) for key in sorted(self._entries)]

    def position_of(self, ged: GED) -> int:
        """The Σ position of one of this ledger's own GED instances
        (violations reference Σ's instances by identity)."""
        return self._position[id(ged)]

    def transport_stats(self) -> dict[str, int]:
        """Routing/escalation totals over the ledger's lifetime.

        Non-zero only on the fragment backend (the router computes
        them); other backends report zeros so the CLI summary line has a
        stable shape.
        """
        if self._router is not None:
            return {
                "routed_ops": self._router.ops_routed,
                "full_ops": self._router.ops_full,
                "escalated_nodes": self._router.escalated_nodes,
            }
        return {"routed_ops": 0, "full_ops": 0, "escalated_nodes": 0}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def clean(self) -> bool:
        """True when the maintained graph currently satisfies Σ."""
        return not self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ViolationLedger(seq={self.seq}, violations={len(self._entries)}, "
            f"backend={self.backend!r})"
        )


__all__ = [
    "LedgerKey",
    "StreamDelta",
    "ViolationLedger",
    "canonical_report",
    "violation_to_dict",
]
