"""repro.streaming — continuous violation maintenance over update streams.

Production graphs change continuously; re-validating from scratch after
every batch wastes the coNP-ish match enumeration on the unchanged part
of the graph.  This package turns validation into a **maintained,
delta-emitting service** — the engineering realization of the paper
conclusion's "practical special cases" direction for continuously
changing data:

* :mod:`repro.streaming.ledger` — :class:`ViolationLedger`, the current
  violation set keyed by (dependency, embedding) with an inverted
  embedding index; per :class:`~repro.graph.update.GraphUpdate` batch it
  emits an exact :class:`StreamDelta` (introduced / retired / updated)
  while staying byte-identical to a from-scratch
  :func:`~repro.reasoning.validation.find_violations` of the final graph;
* :mod:`repro.streaming.delta` — the kernel: pivot-pinned matching
  restricted to a pattern-radius ball around the batch's touched nodes,
  quick-rejected through the index's 1-hop neighborhood signatures;
* :mod:`repro.streaming.parallel` — :class:`EngineDeltaExecutor`, which
  shards changed-node pivots over a warm :mod:`repro.engine` pool whose
  workers *replicate the update stream* (periodically re-snapshotted)
  instead of being re-broadcast per batch;
* :mod:`repro.streaming.fragments` — :class:`FragmentDeltaRouter`, which
  maintains a :class:`~repro.graph.fragments.FragmentedGraph` mirror and
  routes each batch to its owning fragments, so the per-fragment
  replication log carries only that fragment's slice and the introduced
  scan runs fragment-locally (ball-completeness, with cut escalation).

The surrounding plumbing lives where it layers naturally: deletion-aware
batches and up-front validation in :mod:`repro.graph.update`, the
durable JSONL update log with flat-array checkpoints in
:mod:`repro.graph.io`, deletion-aware index maintenance in
:mod:`repro.indexing.maintenance`, churn stream generators in
:mod:`repro.workloads.churn`, and the ``stream`` CLI subcommand which
replays a log and emits NDJSON deltas.

Typical use::

    from repro.streaming import ViolationLedger

    ledger = ViolationLedger(graph, sigma, backend="engine", workers=4)
    ledger.bootstrap()                   # full validation, once
    for update in stream:                # then work ∝ each batch's neighborhood
        delta = ledger.refresh(update)
        publish(delta.to_dict())
"""

from repro.streaming.delta import (
    ball_levels,
    delta_violations,
    pattern_distances,
    pattern_radius,
)
from repro.streaming.fragments import FragmentDeltaRouter
from repro.streaming.ledger import (
    StreamDelta,
    ViolationLedger,
    canonical_report,
    violation_to_dict,
)
from repro.streaming.parallel import EngineDeltaExecutor

__all__ = [
    "EngineDeltaExecutor",
    "FragmentDeltaRouter",
    "StreamDelta",
    "ViolationLedger",
    "ball_levels",
    "canonical_report",
    "delta_violations",
    "pattern_distances",
    "pattern_radius",
    "violation_to_dict",
]
