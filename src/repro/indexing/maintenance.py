"""Incremental index maintenance under :class:`GraphUpdate` batches.

The update model is the full one of :mod:`repro.graph.update`: new
nodes, new edges, attribute writes, *and* deletions of edges, attributes
and whole nodes.  Node labels remain immutable, so the dirty region of a
batch is its ``touched_nodes()`` plus — for deletions only — the former
neighbors of deleted nodes: a new edge perturbs only the degree counters
and signatures of its two endpoints, an attribute write only the
postings of its node, and a *deleted* edge or node additionally requires
recomputing the 1-hop signatures of the surviving endpoints (a signature
pair disappears only when its last witnessing edge does, so deletion is
the one case patched by an O(degree) recompute instead of a set insert).
Maintenance therefore patches O(|batch| + |batch's neighborhood|) index
entries where a rebuild pays O(|G|); ``benchmarks/bench_indexing.py``
measures the gap and the maintenance tests assert patch == rebuild,
structure by structure — deletions included.

Every batch is validated against the graph **up front**
(:func:`repro.graph.update.validate_update`): a bad element — an edge
referencing a nonexistent endpoint, an attribute write to a missing
node, a deletion of something absent, a re-added node id — raises
:class:`~repro.errors.GraphError` naming the offending tuple before
anything mutates, so the graph and its index are never left partially
updated.  Each element is then applied to the graph through the ordinary
Graph API (so the mutation counter advances) and mirrored into the
index; afterwards ``synced_version`` is fast-forwarded to the graph's
counter, re-certifying the index with the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.graph import Graph
from repro.graph.update import GraphUpdate, apply_update_plain, validate_update
from repro.telemetry import metrics as _metrics

from repro.indexing.indexed_graph import GraphIndexes
from repro.indexing.registry import get_index


@dataclass
class MaintenanceReport:
    """What one batch actually changed in the index (the dirty region)."""

    dirty_nodes: set[str] = field(default_factory=set)
    nodes_added: int = 0
    edges_added: int = 0
    attrs_written: int = 0
    nodes_removed: int = 0
    edges_removed: int = 0
    attrs_removed: int = 0

    def total_operations(self) -> int:
        return (
            self.nodes_added
            + self.edges_added
            + self.attrs_written
            + self.nodes_removed
            + self.edges_removed
            + self.attrs_removed
        )


class IndexMaintenance:
    """Applies update batches to a (graph, index) pair, keeping them in
    lock-step.

    The graph must not be mutated behind the maintainer's back between
    batches; if it is, :meth:`apply` refuses (stale index) rather than
    patching on top of unseen changes.
    """

    def __init__(self, graph: Graph, index: GraphIndexes):
        self.graph = graph
        self.index = index

    def apply(self, update: GraphUpdate) -> MaintenanceReport:
        if self.index.synced_version != self.graph.version:
            raise ValueError(
                "index is stale (graph mutated outside the maintenance layer); "
                "rebuild with repro.indexing.attach_index"
            )
        graph, index = self.graph, self.index
        validate_update(graph, update)
        report = MaintenanceReport(dirty_nodes=update.touched_nodes())

        # -- deletions first (see repro.graph.update batch semantics) --
        # Endpoints whose adjacency shrank; their counters and
        # signatures are recomputed once, after all deletions land.
        dirty_adjacency: set[str] = set()
        unindexable_candidates: set[str] = set()

        for source, edge_label, target in update.del_edges:
            graph.remove_edge(source, edge_label, target)
            dirty_adjacency.add(source)
            dirty_adjacency.add(target)
            report.edges_removed += 1

        for node_id, attr in update.del_attrs:
            old_value = graph.node(node_id).get(attr)
            graph.remove_attribute(node_id, attr)
            index.remove_attr_posting(node_id, attr, old_value)
            if attr in index.unindexable_attrs and not _hashable(old_value):
                unindexable_candidates.add(attr)
            report.attrs_removed += 1

        for node_id in update.del_nodes:
            attributes = graph.node(node_id).attributes
            removed_edges = graph.remove_node(node_id)
            index.unindex_node(node_id, attributes)
            for attr, value in attributes.items():
                if attr in index.unindexable_attrs and not _hashable(value):
                    unindexable_candidates.add(attr)
            for source, _, target in removed_edges:
                dirty_adjacency.add(source)
                dirty_adjacency.add(target)
            report.dirty_nodes.update(
                endpoint
                for edge in removed_edges
                for endpoint in (edge[0], edge[2])
            )
            report.nodes_removed += 1

        for node_id in dirty_adjacency:
            if graph.has_node(node_id):
                index.refresh_adjacency(graph, node_id)
        for attr in unindexable_candidates:
            self._rescan_unindexable(attr)

        # -- additions second ------------------------------------------
        for node_id, label, attrs in update.nodes:
            node = graph.add_node(node_id, label, attrs)
            index.index_node(node)
            report.nodes_added += 1

        for node_id, attr, value in update.attrs:
            node = graph.node(node_id)
            had_old = node.has_attribute(attr)
            old_value = node.get(attr)
            graph.set_attribute(node_id, attr, value)
            if had_old:
                index.unindex_attr_value(node_id, attr, old_value)
            index.index_attr_value(node_id, attr, value)
            if had_old and attr in index.unindexable_attrs and not _hashable(old_value):
                self._rescan_unindexable(attr)
            report.attrs_written += 1

        for source, edge_label, target in update.edges:
            if graph.has_edge(source, edge_label, target):
                graph.add_edge(source, edge_label, target)  # idempotent no-op
                continue
            graph.add_edge(source, edge_label, target)
            index.index_edge(
                source,
                edge_label,
                target,
                source_label=graph.node(source).label,
                target_label=graph.node(target).label,
            )
            report.edges_added += 1

        index.synced_version = graph.version
        sink = _metrics.sink()
        if sink.enabled:
            sink.incr("index.maintenance_batches")
            sink.incr("index.maintenance_ops", report.total_operations())
        return report

    def _rescan_unindexable(self, attr: str) -> None:
        """Re-derive whether ``attr`` still carries an unhashable value.

        Called only when an unhashable value was removed or overwritten:
        hashable values keep exact postings even while the attribute is
        flagged unindexable, so when the last unhashable value goes the
        flag can be cleared (matching a from-scratch rebuild) with one
        scan of the nodes still carrying the attribute.
        """
        graph, index = self.graph, self.index
        for node_id in index.has_attr.get(attr, ()):
            if not _hashable(graph.node(node_id).get(attr)):
                return  # still unindexable
        index.unindexable_attrs.discard(attr)


def _hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def apply_update_indexed(
    graph: Graph,
    update: GraphUpdate,
    index: GraphIndexes | None = None,
) -> Graph:
    """Drop-in, index-preserving analogue of
    :func:`repro.reasoning.incremental.apply_update`.

    The batch is validated up front either way (atomicity: a bad batch
    raises before any mutation).  With no synced index attached this is
    exactly the plain apply (mirrored here to keep the layering
    acyclic).  Returns the graph for chaining, like the original.
    """
    if index is None:
        index = get_index(graph)
    if index is not None and index.synced_version == graph.version:
        IndexMaintenance(graph, index).apply(update)
        return graph
    validate_update(graph, update)
    return apply_update_plain(graph, update)


__all__ = ["IndexMaintenance", "MaintenanceReport", "apply_update_indexed"]
