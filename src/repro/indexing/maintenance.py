"""Incremental index maintenance under :class:`GraphUpdate` batches.

The update model is the additive one of
:mod:`repro.reasoning.incremental`: new nodes, new edges, attribute
writes.  Node labels are immutable and nothing is ever deleted, so the
dirty region of a batch is exactly its ``touched_nodes()`` — a new edge
perturbs only the degree counters and signatures of its two endpoints,
an attribute write only the postings of its node, and no change ever
cascades beyond 0 hops (neighbor *labels* stored in signatures cannot
change).  Maintenance therefore patches O(|batch|) index entries where a
rebuild pays O(|G|); ``benchmarks/bench_indexing.py`` measures the gap
and the maintenance tests assert patch == rebuild, structure by
structure.

Each element is applied to the graph first (through the ordinary Graph
API, so the mutation counter advances) and mirrored into the index;
afterwards ``synced_version`` is fast-forwarded to the graph's counter,
re-certifying the index with the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.graph.graph import Graph

from repro.indexing.indexed_graph import GraphIndexes
from repro.indexing.registry import get_index

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.reasoning.incremental import GraphUpdate


@dataclass
class MaintenanceReport:
    """What one batch actually changed in the index (the dirty region)."""

    dirty_nodes: set[str] = field(default_factory=set)
    nodes_added: int = 0
    edges_added: int = 0
    attrs_written: int = 0

    def total_operations(self) -> int:
        return self.nodes_added + self.edges_added + self.attrs_written


class IndexMaintenance:
    """Applies update batches to a (graph, index) pair, keeping them in
    lock-step.

    The graph must not be mutated behind the maintainer's back between
    batches; if it is, :meth:`apply` refuses (stale index) rather than
    patching on top of unseen changes.
    """

    def __init__(self, graph: Graph, index: GraphIndexes):
        self.graph = graph
        self.index = index

    def apply(self, update: "GraphUpdate") -> MaintenanceReport:
        if self.index.synced_version != self.graph.version:
            raise ValueError(
                "index is stale (graph mutated outside the maintenance layer); "
                "rebuild with repro.indexing.attach_index"
            )
        graph, index = self.graph, self.index
        report = MaintenanceReport(dirty_nodes=update.touched_nodes())

        for node_id, label, attrs in update.nodes:
            node = graph.add_node(node_id, label, attrs)
            index.index_node(node)
            report.nodes_added += 1

        for node_id, attr, value in update.attrs:
            node = graph.node(node_id)
            had_old = node.has_attribute(attr)
            old_value = node.get(attr)
            graph.set_attribute(node_id, attr, value)
            if had_old:
                index.unindex_attr_value(node_id, attr, old_value)
            index.index_attr_value(node_id, attr, value)
            report.attrs_written += 1

        for source, edge_label, target in update.edges:
            if graph.has_edge(source, edge_label, target):
                graph.add_edge(source, edge_label, target)  # idempotent no-op
                continue
            graph.add_edge(source, edge_label, target)
            index.index_edge(
                source,
                edge_label,
                target,
                source_label=graph.node(source).label,
                target_label=graph.node(target).label,
            )
            report.edges_added += 1

        index.synced_version = graph.version
        return report


def apply_update_indexed(
    graph: Graph,
    update: "GraphUpdate",
    index: GraphIndexes | None = None,
) -> Graph:
    """Drop-in, index-preserving analogue of
    :func:`repro.reasoning.incremental.apply_update`.

    With no synced index attached this is exactly ``apply_update``
    (mirrored here to keep the layering acyclic).  Returns the graph for
    chaining, like the original.
    """
    if index is None:
        index = get_index(graph)
    if index is not None and index.synced_version == graph.version:
        IndexMaintenance(graph, index).apply(update)
        return graph
    for node_id, label, attrs in update.nodes:
        graph.add_node(node_id, label, attrs)
    for node_id, attr, value in update.attrs:
        graph.set_attribute(node_id, attr, value)
    for source, label, target in update.edges:
        graph.add_edge(source, label, target)
    return graph


__all__ = ["IndexMaintenance", "MaintenanceReport", "apply_update_indexed"]
