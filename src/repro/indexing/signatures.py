"""1-hop neighborhood label signatures.

A node's *out-signature* is the set of ``(edge label, neighbor node
label)`` pairs over its out-edges; the *in-signature* is the analogue
over in-edges.  Signatures compress the 1-hop neighborhood to what the
matcher's label semantics can see: a homomorphism sending pattern
variable ``u`` to node ``v`` maps every pattern edge ``(u, ι, u′)`` to a
graph edge ``(v, ι′, w)`` with ``ι ≼ ι′`` and ``L_Q(u′) ≼ L(w)`` — so
``v`` must carry an out-pair admitting ``(ι, L_Q(u′))``.  That is a
*necessary* condition only (several pattern edges may need distinct
witnesses), which is exactly what candidate pruning is allowed to use.

Under *additive* updates (node labels are immutable, edges and
attributes only added) signatures never shrink, so maintenance is a
pure set-insert patch.  Deletions can shrink them — a pair disappears
only when its last witnessing edge does — so the maintenance layer
recomputes the signatures of deletion-dirtied endpoints from the graph
(:meth:`~repro.indexing.indexed_graph.GraphIndexes.refresh_adjacency`),
still O(degree) work confined to the update's neighborhood.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from repro.graph.graph import Graph
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern

#: One signature entry: ``(edge label, neighbor node label)``.
NeighborPair = tuple[str, str]


def node_out_signature(graph: Graph, node_id: str) -> set[NeighborPair]:
    """The out-signature of ``node_id``, computed from scratch."""
    return {
        (label, graph.node(target).label) for (_, label, target) in graph.out_edges(node_id)
    }


def node_in_signature(graph: Graph, node_id: str) -> set[NeighborPair]:
    """The in-signature of ``node_id``, computed from scratch."""
    return {
        (label, graph.node(source).label) for (source, label, _) in graph.in_edges(node_id)
    }


def pattern_requirements(
    pattern: Pattern, variable: str
) -> tuple[tuple[NeighborPair, ...], tuple[NeighborPair, ...]]:
    """The (out, in) signature requirements ``variable`` imposes.

    Each requirement is a ``(edge label, neighbor label)`` pair, either
    of which may be :data:`WILDCARD`; a candidate node must carry an
    admitting pair in the corresponding direction for every requirement.
    """
    out_reqs = tuple(
        (edge_label, pattern.label_of(target)) for edge_label, target in pattern.out_edges(variable)
    )
    in_reqs = tuple(
        (edge_label, pattern.label_of(source)) for edge_label, source in pattern.in_edges(variable)
    )
    return out_reqs, in_reqs


def admits(
    pairs: Collection[NeighborPair],
    neighbor_labels: Collection[str],
    edge_labels: Collection[str],
    requirement: NeighborPair,
) -> bool:
    """Whether a signature admits one ``(edge label, neighbor label)``
    requirement under ``≼``.

    ``pairs`` is the full signature; ``neighbor_labels`` / ``edge_labels``
    are its two projections, kept separately so the three wildcard shapes
    resolve with O(1) set probes instead of a scan.
    """
    edge_label, neighbor_label = requirement
    if edge_label == WILDCARD and neighbor_label == WILDCARD:
        return bool(pairs)
    if edge_label == WILDCARD:
        return neighbor_label in neighbor_labels
    if neighbor_label == WILDCARD:
        return edge_label in edge_labels
    return (edge_label, neighbor_label) in pairs


def admits_all(
    pairs: Collection[NeighborPair],
    neighbor_labels: Collection[str],
    edge_labels: Collection[str],
    requirements: Iterable[NeighborPair],
) -> bool:
    """``admits`` over every requirement (empty requirements pass)."""
    return all(admits(pairs, neighbor_labels, edge_labels, req) for req in requirements)


__all__ = [
    "NeighborPair",
    "admits",
    "admits_all",
    "node_in_signature",
    "node_out_signature",
    "pattern_requirements",
]
