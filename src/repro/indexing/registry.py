"""The graph -> index registry.

Graphs hash by identity and the :class:`~repro.graph.graph.Graph` class
predates the index layer, so instead of wrapping every graph we keep a
process-wide *weak* registry: attaching an index neither changes the
graph type flowing through the existing APIs nor keeps dead graphs
alive.  The matching layer consults :func:`get_index` on its hot path;
it returns the index only when it is still in sync with the graph's
mutation counter, so a mutation that bypassed the maintenance layer
silently degrades to the exact unindexed behavior instead of producing
wrong matches.

Within one process all shards of a parallel validation see the same
graph object and therefore share the same immutable index through this
registry; process-pool workers unpickle a fresh graph (never
registered) and transparently fall back.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.telemetry import metrics as _metrics
from repro.utils.registry import WeakIdRegistry

from repro.indexing.indexed_graph import GraphIndexes, build_indexes

# Identity-keyed: a WeakKeyDictionary would resolve its per-lookup
# weakref collision with Graph.__eq__ — a structural O(|G|) comparison
# on every get_index probe (see repro.utils.registry).
_indexes: WeakIdRegistry = WeakIdRegistry()


def attach_index(graph: Graph) -> GraphIndexes:
    """Build and register an index for ``graph`` (replacing any prior,
    possibly stale, one).  Returns the fresh index."""
    index = build_indexes(graph)
    _indexes.set(graph, index)
    return index


def get_index(graph: Graph) -> GraphIndexes | None:
    """The registered index for ``graph``, or ``None``.

    ``None`` is returned both when no index was attached and when the
    attached index is stale (the graph mutated outside the maintenance
    layer).  A stale index stays registered so callers can observe it
    via :func:`has_index` and decide to :func:`attach_index` again.
    """
    index = _indexes.get(graph)
    if index is None:
        _metrics.sink().incr("index.misses")
        return None
    if index.synced_version != graph.version:
        _metrics.sink().incr("index.stale")
        return None
    _metrics.sink().incr("index.hits")
    return index


def has_index(graph: Graph) -> bool:
    """Whether an index is registered for ``graph`` (synced or stale)."""
    return graph in _indexes


def detach_index(graph: Graph) -> None:
    """Drop the registered index for ``graph``, if any."""
    _indexes.pop(graph, None)


__all__ = ["attach_index", "detach_index", "get_index", "has_index"]
