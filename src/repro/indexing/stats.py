"""Index statistics — what the CLI ``index`` command prints.

Numbers are structural (entry and posting counts), not byte sizes:
machine-independent, and the right scale for judging whether attaching
an index to a given graph pays for itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph

from repro.indexing.indexed_graph import GraphIndexes


@dataclass(frozen=True)
class IndexStats:
    """A structural summary of one graph's index bundle."""

    nodes: int
    edges: int
    node_labels: int
    edge_labels: int
    attr_entries: int  # distinct (attribute, value) keys
    attr_postings: int  # total node ids across those keys
    has_attr_entries: int
    unindexable_attrs: int
    signature_pairs: int  # total out-signature entries (in mirrors out)
    mean_out_signature: float
    synced: bool

    def summary(self) -> str:
        lines = [
            f"graph: {self.nodes} node(s), {self.edges} edge(s), "
            f"{self.node_labels} node label(s), {self.edge_labels} edge label(s)",
            f"attribute index: {self.attr_entries} (attr, value) entr(ies), "
            f"{self.attr_postings} posting(s), {self.has_attr_entries} attribute name(s)"
            + (f", {self.unindexable_attrs} unindexable" if self.unindexable_attrs else ""),
            f"signatures: {self.signature_pairs} out-pair(s), "
            f"mean {self.mean_out_signature:.2f} per node",
            f"synced: {'yes' if self.synced else 'NO (stale — rebuild required)'}",
        ]
        return "\n".join(lines)


def index_stats(graph: Graph, index: GraphIndexes) -> IndexStats:
    """Compute :class:`IndexStats` for an attached index."""
    signature_pairs = sum(len(pairs) for pairs in index.out_pairs.values())
    return IndexStats(
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        node_labels=len(graph.labels),
        edge_labels=len(graph.edge_labels),
        attr_entries=len(index.attr_value),
        attr_postings=sum(len(p) for p in index.attr_value.values()),
        has_attr_entries=len(index.has_attr),
        unindexable_attrs=len(index.unindexable_attrs),
        signature_pairs=signature_pairs,
        mean_out_signature=signature_pairs / graph.num_nodes if graph.num_nodes else 0.0,
        synced=index.synced_version == graph.version,
    )


__all__ = ["IndexStats", "index_stats"]
