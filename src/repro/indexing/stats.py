"""Index statistics — what the CLI ``index`` command prints, plus the
selectivity profile feeding the match-plan cost model.

Numbers are structural (entry and posting counts), not byte sizes:
machine-independent, and the right scale for judging whether attaching
an index to a given graph pays for itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.graph import Graph

from repro.indexing.indexed_graph import GraphIndexes


@dataclass(frozen=True)
class IndexStats:
    """A structural summary of one graph's index bundle."""

    nodes: int
    edges: int
    node_labels: int
    edge_labels: int
    attr_entries: int  # distinct (attribute, value) keys
    attr_postings: int  # total node ids across those keys
    has_attr_entries: int
    unindexable_attrs: int
    signature_pairs: int  # total out-signature entries (in mirrors out)
    mean_out_signature: float
    synced: bool

    def summary(self) -> str:
        lines = [
            f"graph: {self.nodes} node(s), {self.edges} edge(s), "
            f"{self.node_labels} node label(s), {self.edge_labels} edge label(s)",
            f"attribute index: {self.attr_entries} (attr, value) entr(ies), "
            f"{self.attr_postings} posting(s), {self.has_attr_entries} attribute name(s)"
            + (f", {self.unindexable_attrs} unindexable" if self.unindexable_attrs else ""),
            f"signatures: {self.signature_pairs} out-pair(s), "
            f"mean {self.mean_out_signature:.2f} per node",
            f"synced: {'yes' if self.synced else 'NO (stale — rebuild required)'}",
        ]
        return "\n".join(lines)


def index_stats(graph: Graph, index: GraphIndexes) -> IndexStats:
    """Compute :class:`IndexStats` for an attached index."""
    signature_pairs = sum(len(pairs) for pairs in index.out_pairs.values())
    return IndexStats(
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        node_labels=len(graph.labels),
        edge_labels=len(graph.edge_labels),
        attr_entries=len(index.attr_value),
        attr_postings=sum(len(p) for p in index.attr_value.values()),
        has_attr_entries=len(index.has_attr),
        unindexable_attrs=len(index.unindexable_attrs),
        signature_pairs=signature_pairs,
        mean_out_signature=signature_pairs / graph.num_nodes if graph.num_nodes else 0.0,
        synced=index.synced_version == graph.version,
    )


@dataclass(frozen=True)
class MatchCostProfile:
    """Selectivity statistics consumed by the match-plan cost model.

    ``label_counts`` — nodes per node label (scan-step cardinality);
    ``edge_label_counts`` — edges per edge label (extension fan-out
    numerator).  Derived from the attached index's per-label degree
    counters when one is synced, else from one pass over the graph.
    """

    nodes: int
    edges: int
    label_counts: dict[str, int] = field(default_factory=dict)
    edge_label_counts: dict[str, int] = field(default_factory=dict)

    def fanout(self, edge_label: str | None) -> float | None:
        """Mean per-node out-fan of one edge label (``None`` = any).

        Returns ``None`` when the graph has no nodes (no estimate).
        """
        if not self.nodes:
            return None
        edges = (
            self.edges if edge_label is None else self.edge_label_counts.get(edge_label, 0)
        )
        return edges / self.nodes


def matching_cost_profile(graph: Graph) -> MatchCostProfile:
    """The cost-model inputs for matching ``graph``.

    Prefers the synced :class:`GraphIndexes` counters (no edge scan);
    falls back to one pass over the edge set.
    """
    from repro.indexing.registry import get_index

    index = get_index(graph)
    edge_counts: dict[str, int] = {}
    if index is not None:
        for counts in index.out_label_count.values():
            for label, count in counts.items():
                edge_counts[label] = edge_counts.get(label, 0) + count
    else:
        for _, label, _ in graph.edges:
            edge_counts[label] = edge_counts.get(label, 0) + 1
    label_counts = {label: len(graph.nodes_with_label(label)) for label in graph.labels}
    return MatchCostProfile(
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        label_counts=label_counts,
        edge_label_counts=edge_counts,
    )


__all__ = ["IndexStats", "MatchCostProfile", "index_stats", "matching_cost_profile"]
