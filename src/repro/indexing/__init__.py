"""repro.indexing — incrementally-maintained graph indexes.

The persistent index layer behind the matching hot path.  Every
workload in this reproduction (validation, discovery, repair, chase,
parallel validation) funnels through candidate-set computation and the
plan-compiled matcher; this package gives those a per-graph bundle of

* an attribute-value inverted index,
* per-label out/in degree counters, and
* 1-hop neighborhood label signatures,

built once (:func:`attach_index`), consulted transparently by
:mod:`repro.matching.candidates` via the weak :mod:`registry
<repro.indexing.registry>`, and patched in place under
:class:`~repro.graph.update.GraphUpdate` batches — additions *and*
deletions — by :mod:`repro.indexing.maintenance`: dirty-region work
proportional to the batch and its neighborhood, never a rebuild.

Pruning is strictly necessary-condition: with or without an index,
``candidate_sets`` / ``find_homomorphisms`` / ``find_violations``
return *identical* results (the ``tests/indexing`` suite asserts it);
the index only shrinks the search.  Mutating a graph outside the
maintenance layer bumps its mutation counter and silently disables the
index (exact fallback) rather than risking stale answers.

Typical use::

    from repro.indexing import attach_index
    from repro.reasoning import find_violations

    attach_index(graph)                  # build once
    find_violations(graph, sigma)        # now index-accelerated
    ledger.refresh(update)               # index patched, not rebuilt
"""

from repro.indexing.indexed_graph import GraphIndexes, build_indexes
from repro.indexing.maintenance import (
    IndexMaintenance,
    MaintenanceReport,
    apply_update_indexed,
)
from repro.indexing.pruning import CandidatePruner
from repro.indexing.registry import attach_index, detach_index, get_index, has_index
from repro.indexing.signatures import (
    node_in_signature,
    node_out_signature,
    pattern_requirements,
)
from repro.indexing.stats import IndexStats, index_stats

__all__ = [
    "CandidatePruner",
    "GraphIndexes",
    "IndexMaintenance",
    "IndexStats",
    "MaintenanceReport",
    "apply_update_indexed",
    "attach_index",
    "build_indexes",
    "detach_index",
    "get_index",
    "has_index",
    "index_stats",
    "node_in_signature",
    "node_out_signature",
    "pattern_requirements",
]
