"""Index-backed candidate pruning for the matching hot path.

:class:`CandidatePruner` computes the same ``variable -> candidate
pool`` maps as :func:`repro.matching.candidates.candidate_sets`, but
against a :class:`~repro.indexing.indexed_graph.GraphIndexes` and with a
strictly stronger (still purely *necessary*) filter chain per variable:

1. **label pool** — the graph's node-label index (wildcard = all nodes);
2. **degree** — per-label out/in degree counters must cover every
   pattern edge at the variable (the unindexed filter, now O(1) counter
   probes instead of successor-set materialization);
3. **neighborhood signature** — for every pattern edge ``(u, ι, u′)``
   the node must carry a 1-hop ``(edge label, neighbor label)`` pair
   admitting ``(ι, L_Q(u′))`` under ``≼``.

Step 3 subsumes step 2 for concrete edge labels but the counters are
kept first because they reject on a cheaper probe; both are necessary
conditions for a homomorphism, so pruned pools are always subsets of the
unindexed pools and the enumerated match sets are bit-identical (the
equality tests in ``tests/indexing`` assert exactly this).

Pruning effectiveness is measured by comparing pool sizes of the
indexed and ``use_index=False`` computations — what the CLI ``index``
command and ``benchmarks/bench_indexing.py`` do.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern

from repro.indexing.indexed_graph import GraphIndexes
from repro.indexing.signatures import admits_all, pattern_requirements


class CandidatePruner:
    """Candidate-set computation against a synced index."""

    def __init__(self, graph: Graph, index: GraphIndexes):
        self.graph = graph
        self.index = index

    def candidate_sets(self, pattern: Pattern) -> dict[str, set[str]]:
        """``variable -> {plausible node ids}``; a subset, per variable,
        of the unindexed computation's pools."""
        result: dict[str, set[str]] = {}
        for variable in pattern.variables:
            label = pattern.label_of(variable)
            if label == WILDCARD:
                pool = self.graph.node_ids
            else:
                pool = self.graph.nodes_with_label(label)
            out_reqs, in_reqs = pattern_requirements(pattern, variable)
            result[variable] = {
                node_id
                for node_id in pool
                if self._admissible(node_id, out_reqs, in_reqs)
            }
        return result

    def admissible(self, pattern: Pattern, variable: str, node_id: str) -> bool:
        """Single-node probe: could ``variable -> node_id`` survive the
        filter chain?  Used by the streaming delta kernel to drop a
        pinned pivot before any ball computation or matcher call."""
        out_reqs, in_reqs = pattern_requirements(pattern, variable)
        return self._admissible(node_id, out_reqs, in_reqs)

    def _admissible(
        self,
        node_id: str,
        out_reqs: tuple[tuple[str, str], ...],
        in_reqs: tuple[tuple[str, str], ...],
    ) -> bool:
        index = self.index
        # Degree counters: every pattern edge needs at least one graph
        # edge of an admissible label in the right direction.
        for edge_label, _ in out_reqs:
            if edge_label == WILDCARD:
                if index.out_degree(node_id) < 1:
                    return False
            elif index.out_degree(node_id, edge_label) < 1:
                return False
        for edge_label, _ in in_reqs:
            if edge_label == WILDCARD:
                if index.in_degree(node_id) < 1:
                    return False
            elif index.in_degree(node_id, edge_label) < 1:
                return False
        # Neighborhood signatures: the neighbor's *label* must also fit.
        if out_reqs and not admits_all(
            index.out_pairs.get(node_id, ()),
            index.out_nbr_labels.get(node_id, ()),
            index.out_edge_labels.get(node_id, ()),
            out_reqs,
        ):
            return False
        if in_reqs and not admits_all(
            index.in_pairs.get(node_id, ()),
            index.in_nbr_labels.get(node_id, ()),
            index.in_edge_labels.get(node_id, ()),
            in_reqs,
        ):
            return False
        return True


__all__ = ["CandidatePruner"]
