"""The persistent index bundle for one data graph.

:class:`GraphIndexes` holds everything the matching hot path wants
precomputed but the :class:`~repro.graph.graph.Graph` itself does not
maintain:

* an **attribute-value inverted index** ``(attr, value) -> {node ids}``
  plus a has-attribute index ``attr -> {node ids}`` (values that are not
  hashable are recorded as unindexable and looked up as "unknown");
* **per-label degree counts** ``node -> edge label -> count`` for both
  directions, plus total degrees — the counters behind degree pruning,
  answerable without materializing successor sets;
* **1-hop neighborhood label signatures** per node (see
  :mod:`repro.indexing.signatures`), stored with their two projections
  for O(1) wildcard probes.

The node-label pool itself stays in the graph (``Graph._by_label`` is
already maintained on every ``add_node``); the index only adds what the
graph lacks.  ``synced_version`` records the graph's mutation counter at
the last (re)build or maintenance step: a mismatch means some mutation
bypassed :mod:`repro.indexing.maintenance` and the index must not be
consulted (the registry enforces this).

Instances are treated as immutable by readers; only the maintenance
layer writes to them.  A shared index is therefore safe to consult from
concurrent validation shards.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.graph.graph import Graph, Node, Value

from repro.indexing.signatures import NeighborPair


class GraphIndexes:
    """Index structures for one graph (build with :func:`build_indexes`)."""

    __slots__ = (
        "synced_version",
        "attr_value",
        "has_attr",
        "unindexable_attrs",
        "out_label_count",
        "in_label_count",
        "out_total",
        "in_total",
        "out_pairs",
        "in_pairs",
        "out_nbr_labels",
        "in_nbr_labels",
        "out_edge_labels",
        "in_edge_labels",
    )

    def __init__(self) -> None:
        self.synced_version: int = -1
        # Attribute inverted index.
        self.attr_value: dict[tuple[str, Value], set[str]] = {}
        self.has_attr: dict[str, set[str]] = {}
        self.unindexable_attrs: set[str] = set()
        # Per-label degree counters.
        self.out_label_count: dict[str, dict[str, int]] = {}
        self.in_label_count: dict[str, dict[str, int]] = {}
        self.out_total: dict[str, int] = {}
        self.in_total: dict[str, int] = {}
        # Neighborhood signatures and their projections.
        self.out_pairs: dict[str, set[NeighborPair]] = {}
        self.in_pairs: dict[str, set[NeighborPair]] = {}
        self.out_nbr_labels: dict[str, set[str]] = {}
        self.in_nbr_labels: dict[str, set[str]] = {}
        self.out_edge_labels: dict[str, set[str]] = {}
        self.in_edge_labels: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def nodes_with_attr_value(self, attr: str, value: Value) -> set[str] | None:
        """Node ids with ``attr == value``, or ``None`` for "unknown".

        ``None`` (rather than the empty set) is returned when the index
        cannot answer — the attribute carried an unhashable value
        somewhere, or ``value`` itself is unhashable — so callers fall
        back instead of wrongly pruning to nothing.
        """
        if attr in self.unindexable_attrs:
            return None
        try:
            return self.attr_value.get((attr, value), set())
        except TypeError:  # unhashable probe value
            return None

    def out_degree(self, node_id: str, edge_label: str | None = None) -> int:
        if edge_label is None:
            return self.out_total.get(node_id, 0)
        return self.out_label_count.get(node_id, {}).get(edge_label, 0)

    def in_degree(self, node_id: str, edge_label: str | None = None) -> int:
        if edge_label is None:
            return self.in_total.get(node_id, 0)
        return self.in_label_count.get(node_id, {}).get(edge_label, 0)

    # ------------------------------------------------------------------
    # Single-element writers (used by build and by maintenance)
    # ------------------------------------------------------------------
    def index_node(self, node: Node) -> None:
        """Register a node: empty adjacency slots + attribute postings."""
        node_id = node.id
        self.out_label_count.setdefault(node_id, {})
        self.in_label_count.setdefault(node_id, {})
        self.out_total.setdefault(node_id, 0)
        self.in_total.setdefault(node_id, 0)
        self.out_pairs.setdefault(node_id, set())
        self.in_pairs.setdefault(node_id, set())
        self.out_nbr_labels.setdefault(node_id, set())
        self.in_nbr_labels.setdefault(node_id, set())
        self.out_edge_labels.setdefault(node_id, set())
        self.in_edge_labels.setdefault(node_id, set())
        for attr, value in node.attributes.items():
            self.index_attr_value(node_id, attr, value)

    def index_attr_value(self, node_id: str, attr: str, value: Value) -> None:
        """Add one attribute posting (tolerates unhashable values)."""
        self.has_attr.setdefault(attr, set()).add(node_id)
        try:
            self.attr_value.setdefault((attr, value), set()).add(node_id)
        except TypeError:
            self.unindexable_attrs.add(attr)

    def unindex_attr_value(self, node_id: str, attr: str, value: Value) -> None:
        """Drop one attribute posting (for overwrites)."""
        try:
            postings = self.attr_value.get((attr, value))
        except TypeError:
            return  # old value was never posted
        if postings is not None:
            postings.discard(node_id)
            if not postings:
                del self.attr_value[(attr, value)]

    def remove_attr_posting(self, node_id: str, attr: str, value: Value) -> None:
        """Drop one attribute entirely from a node (for deletions —
        unlike :meth:`unindex_attr_value`, the has-attribute posting is
        removed too, since the node no longer carries ``attr`` at all)."""
        self.unindex_attr_value(node_id, attr, value)
        postings = self.has_attr.get(attr)
        if postings is not None:
            postings.discard(node_id)
            if not postings:
                del self.has_attr[attr]

    def unindex_node(self, node_id: str, attributes: Mapping[str, Value]) -> None:
        """Purge every per-node slot and the node's attribute postings.

        ``attributes`` is the node's attribute tuple captured *before*
        the graph deletion (the index never stores it itself).  The
        caller repairs the signatures of former neighbors separately
        (see :meth:`refresh_adjacency`).
        """
        for attr, value in attributes.items():
            self.remove_attr_posting(node_id, attr, value)
        for slot in (
            self.out_label_count,
            self.in_label_count,
            self.out_total,
            self.in_total,
            self.out_pairs,
            self.in_pairs,
            self.out_nbr_labels,
            self.in_nbr_labels,
            self.out_edge_labels,
            self.in_edge_labels,
        ):
            slot.pop(node_id, None)

    def refresh_adjacency(self, graph: Graph, node_id: str) -> None:
        """Recompute a surviving node's degree counters and signatures
        from the graph — O(degree).

        Deletions are the one update class whose signature effect is not
        a local patch: removing edge ``(s, ι, t)`` removes the pair
        ``(ι, L(t))`` from ``s``'s out-signature only when no *other*
        out-edge of ``s`` witnesses the same pair.  Rather than
        maintaining per-pair witness counts, the maintenance layer
        recomputes each dirty endpoint from the graph, which is exact
        and still proportional to the update's neighborhood.
        """
        out_counts: dict[str, int] = {}
        out_pairs: set[NeighborPair] = set()
        for _, edge_label, target in graph.out_edges(node_id):
            out_counts[edge_label] = out_counts.get(edge_label, 0) + 1
            out_pairs.add((edge_label, graph.node(target).label))
        in_counts: dict[str, int] = {}
        in_pairs: set[NeighborPair] = set()
        for source, edge_label, _ in graph.in_edges(node_id):
            in_counts[edge_label] = in_counts.get(edge_label, 0) + 1
            in_pairs.add((edge_label, graph.node(source).label))
        self.out_label_count[node_id] = out_counts
        self.in_label_count[node_id] = in_counts
        self.out_total[node_id] = sum(out_counts.values())
        self.in_total[node_id] = sum(in_counts.values())
        self.out_pairs[node_id] = out_pairs
        self.in_pairs[node_id] = in_pairs
        self.out_nbr_labels[node_id] = {label for _, label in out_pairs}
        self.in_nbr_labels[node_id] = {label for _, label in in_pairs}
        self.out_edge_labels[node_id] = set(out_counts)
        self.in_edge_labels[node_id] = set(in_counts)

    def index_edge(self, source: str, edge_label: str, target: str, *,
                   source_label: str, target_label: str) -> None:
        """Register one *new* edge (caller guarantees it was not present)."""
        counts = self.out_label_count.setdefault(source, {})
        counts[edge_label] = counts.get(edge_label, 0) + 1
        self.out_total[source] = self.out_total.get(source, 0) + 1
        counts = self.in_label_count.setdefault(target, {})
        counts[edge_label] = counts.get(edge_label, 0) + 1
        self.in_total[target] = self.in_total.get(target, 0) + 1

        self.out_pairs.setdefault(source, set()).add((edge_label, target_label))
        self.out_nbr_labels.setdefault(source, set()).add(target_label)
        self.out_edge_labels.setdefault(source, set()).add(edge_label)
        self.in_pairs.setdefault(target, set()).add((edge_label, source_label))
        self.in_nbr_labels.setdefault(target, set()).add(source_label)
        self.in_edge_labels.setdefault(target, set()).add(edge_label)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """A deep, comparable copy of every index structure.

        The maintenance tests assert ``incrementally-maintained snapshot
        == rebuilt-from-scratch snapshot`` (sans ``synced_version``).
        """
        return {
            "attr_value": {k: set(v) for k, v in self.attr_value.items() if v},
            "has_attr": {k: set(v) for k, v in self.has_attr.items() if v},
            "unindexable_attrs": set(self.unindexable_attrs),
            "out_label_count": {
                n: {l: c for l, c in d.items() if c} for n, d in self.out_label_count.items()
            },
            "in_label_count": {
                n: {l: c for l, c in d.items() if c} for n, d in self.in_label_count.items()
            },
            "out_total": dict(self.out_total),
            "in_total": dict(self.in_total),
            "out_pairs": {n: set(p) for n, p in self.out_pairs.items()},
            "in_pairs": {n: set(p) for n, p in self.in_pairs.items()},
            "out_nbr_labels": {n: set(p) for n, p in self.out_nbr_labels.items()},
            "in_nbr_labels": {n: set(p) for n, p in self.in_nbr_labels.items()},
            "out_edge_labels": {n: set(p) for n, p in self.out_edge_labels.items()},
            "in_edge_labels": {n: set(p) for n, p in self.in_edge_labels.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphIndexes(nodes={len(self.out_total)}, "
            f"attr_entries={len(self.attr_value)}, v={self.synced_version})"
        )


def build_indexes(graph: Graph) -> GraphIndexes:
    """Build the full index bundle for ``graph`` from scratch (one scan
    of the nodes plus one scan of the edges)."""
    index = GraphIndexes()
    for node in graph.nodes:
        index.index_node(node)
    for source, edge_label, target in graph.edges:
        index.index_edge(
            source,
            edge_label,
            target,
            source_label=graph.node(source).label,
            target_label=graph.node(target).label,
        )
    index.synced_version = graph.version
    return index


__all__ = ["GraphIndexes", "build_indexes"]
