"""Turning violations into candidate repair plans.

A :class:`~repro.reasoning.validation.Violation` records a match h of a
dependency Q[x̄](X → Y) with h |= X but h ̸|= Y.  There are exactly two
ways to fix it, mirroring the two sides of the implication:

* **forward** — make h satisfy the failed literals of Y, i.e. do what a
  chase step would do.  For ``x.A = c`` set the attribute; for
  ``x.A = y.B`` copy one side's value to the other (two alternatives,
  or materialize the attribute when only one side has it); for
  ``x.id = y.id`` merge the two matched nodes (when their labels and
  attributes permit).  ``false`` has no forward repair.
* **backward** — break ``h |= X`` or the match itself.  For each
  constant/variable literal in X, retract one of the attributes it
  reads; independently, delete one of the graph edges the match uses.
  Backward repairs are the only option for forbidding constraints.

Each alternative is a *plan*: a tuple of operations that jointly
eliminate this violation.  The engine prices plans with a
:class:`~repro.repair.cost.CostModel` and picks the cheapest applicable
one.  Plans are deduplicated and deterministically ordered.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.deps.literals import (
    FALSE,
    ConstantLiteral,
    IdLiteral,
    Literal,
    VariableLiteral,
)
from repro.graph.graph import Graph
from repro.patterns.labels import compatible as labels_compatible
from repro.reasoning.validation import Violation
from repro.repair.operations import (
    DeleteEdge,
    MergeNodes,
    RemoveAttribute,
    RepairOperation,
    SetAttribute,
)

RepairPlan = tuple[RepairOperation, ...]


def suggest_repairs(
    graph: Graph,
    violation: Violation,
    allow_backward: bool = True,
) -> list[RepairPlan]:
    """All candidate plans for one violation, deterministically ordered.

    Forward plans come first (they preserve data); backward plans are
    appended when ``allow_backward``.  Every returned plan is applicable
    to ``graph`` as-is.
    """
    match = violation.assignment
    plans: list[RepairPlan] = []
    seen: set[RepairPlan] = set()

    def emit(*operations: RepairOperation) -> None:
        plan = tuple(operations)
        if plan and plan not in seen:
            seen.add(plan)
            plans.append(plan)

    for literal in violation.failed:
        for plan in _forward_plans(graph, literal, match):
            emit(*plan)

    if allow_backward:
        for plan in _backward_plans(graph, violation):
            emit(*plan)

    return plans


def _forward_plans(
    graph: Graph, literal: Literal, match: dict[str, str]
) -> Iterator[RepairPlan]:
    """Plans that enforce one failed literal of Y."""
    if literal is FALSE:
        return  # no forward repair can satisfy `false`
    if isinstance(literal, ConstantLiteral):
        yield (SetAttribute(match[literal.var], literal.attr, literal.const),)
        return
    if isinstance(literal, VariableLiteral):
        node1, node2 = match[literal.var1], match[literal.var2]
        n1, n2 = graph.node(node1), graph.node(node2)
        has1, has2 = n1.has_attribute(literal.attr1), n2.has_attribute(literal.attr2)
        if has1:
            yield (SetAttribute(node2, literal.attr2, n1.get(literal.attr1)),)
        if has2:
            yield (SetAttribute(node1, literal.attr1, n2.get(literal.attr2)),)
        # When neither side has the attribute the literal demands both
        # exist and agree — materialize a fresh shared placeholder value,
        # the data-graph analogue of the chase's attribute generation.
        if not has1 and not has2:
            placeholder = f"__generated__{literal.attr1}"
            yield (
                SetAttribute(node1, literal.attr1, placeholder),
                SetAttribute(node2, literal.attr2, placeholder),
            )
        return
    if isinstance(literal, IdLiteral):
        node1, node2 = match[literal.var1], match[literal.var2]
        if node1 == node2:
            return
        if _mergeable(graph, node1, node2):
            survivor, loser = sorted((node1, node2))
            yield (MergeNodes(survivor, loser),)
        return
    raise TypeError(f"unknown literal {literal!r}")


def _mergeable(graph: Graph, node1: str, node2: str) -> bool:
    """Whether MergeNodes(node1, node2) would succeed (Section 4's
    label/attribute consistency, evaluated on the data graph)."""
    n1, n2 = graph.node(node1), graph.node(node2)
    if not labels_compatible(n1.label, n2.label):
        return False
    a1 = n1.attributes
    for attr, value in n2.attributes.items():
        if attr in a1 and a1[attr] != value:
            return False
    return True


def _backward_plans(graph: Graph, violation: Violation) -> Iterator[RepairPlan]:
    """Plans that destroy the premise h |= X or the match itself."""
    match = violation.assignment
    # (1) Retract an attribute some X-literal reads.
    retractable: list[tuple[str, str]] = []
    for literal in sorted(violation.ged.X, key=str):
        if isinstance(literal, ConstantLiteral):
            retractable.append((match[literal.var], literal.attr))
        elif isinstance(literal, VariableLiteral):
            retractable.append((match[literal.var1], literal.attr1))
            retractable.append((match[literal.var2], literal.attr2))
        # id literals in X cannot be retracted attribute-wise; breaking
        # them would require splitting a node, which we do not support.
    for node, attr in dict.fromkeys(retractable):
        if graph.node(node).has_attribute(attr):
            yield (RemoveAttribute(node, attr),)
    # (2) Delete one edge the match maps a pattern edge onto.
    for edge in sorted(_match_edges(graph, violation)):
        yield (DeleteEdge(*edge),)


def _match_edges(graph: Graph, violation: Violation) -> set[tuple[str, str, str]]:
    """The data edges witnessing the pattern edges under the match.

    For a wildcard-labeled pattern edge every parallel data edge between
    the matched endpoints witnesses it, and deleting any one of them may
    not break the match — the engine re-validates after applying, so
    over-suggesting is harmless; under-suggesting would lose repairs.
    """
    from repro.patterns.labels import WILDCARD

    match = violation.assignment
    edges: set[tuple[str, str, str]] = set()
    for source_var, label, target_var in violation.ged.pattern.edges:
        source, target = match[source_var], match[target_var]
        if label == WILDCARD:
            for data_label in sorted(graph.edge_labels):
                if graph.has_edge(source, data_label, target):
                    edges.add((source, data_label, target))
        elif graph.has_edge(source, label, target):
            edges.add((source, label, target))
    return edges


def suggest_repairs_batch(
    graph: Graph,
    violations: Sequence[Violation],
    allow_backward: bool = True,
    workers: int | None = 1,
) -> list[list[RepairPlan]]:
    """Candidate plans for many violations at once.

    The result is positionally aligned with ``violations`` and each
    entry equals ``suggest_repairs(graph, violation, allow_backward)``
    exactly.  With ``workers`` > 1 (or ``None`` for one per CPU) the
    per-violation suggestion — a pure read of the graph — fans out over
    the :mod:`repro.engine` worker pool: each task ships only the
    violation witness (rule, matched node ids, failed literals), the
    graph having been broadcast once at pool start.
    """
    if workers != 1 and len(violations) > 1:
        from repro.engine.pool import get_pool, resolve_workers

        if resolve_workers(workers) > 1:
            return get_pool(graph, workers).suggest_repairs(
                violations, allow_backward=allow_backward
            )
    return [
        suggest_repairs(graph, violation, allow_backward=allow_backward)
        for violation in violations
    ]


def plan_preview(plans: Sequence[RepairPlan]) -> list[str]:
    """Human-readable rendering of candidate plans (CLI / examples)."""
    return [" + ".join(str(op) for op in plan) for plan in plans]


__all__ = ["RepairPlan", "plan_preview", "suggest_repairs", "suggest_repairs_batch"]
