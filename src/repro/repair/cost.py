"""Cost model for repair operations.

Repairs are not free, and not all repairs are equally trustworthy: a
value correction is cheap, merging two entities is a bigger commitment,
and deleting data is a last resort.  The default weights encode that
preference order; applications tune them, and can mark attributes,
nodes or edges as **protected** (cost :data:`UNREPAIRABLE`), e.g. for
values confirmed by a curator — the engine then never touches them.

The cost of a *repair plan* is the sum of its operations' costs, so the
greedy engine's choice of the cheapest suggestion per violation is the
usual minimum-cost-repair heuristic from relational data cleaning.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.repair.operations import (
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    RemoveAttribute,
    RepairOperation,
    SetAttribute,
)

#: Cost marking an operation the engine must never apply.
UNREPAIRABLE = math.inf


@dataclass
class CostModel:
    """Weights per operation kind plus protection sets.

    ``protected_attributes`` holds ``(node_id, attr)`` pairs whose value
    may not be changed or removed; ``protected_nodes`` may not be merged
    away or deleted; ``protected_edges`` may not be deleted.
    """

    set_attribute: float = 1.0
    remove_attribute: float = 2.0
    merge_nodes: float = 3.0
    delete_edge: float = 4.0
    delete_node: float = 10.0
    protected_attributes: set[tuple[str, str]] = field(default_factory=set)
    protected_nodes: set[str] = field(default_factory=set)
    protected_edges: set[tuple[str, str, str]] = field(default_factory=set)

    def protect_attribute(self, node: str, attr: str) -> None:
        self.protected_attributes.add((node, attr))

    def protect_node(self, node: str) -> None:
        self.protected_nodes.add(node)

    def protect_edge(self, source: str, label: str, target: str) -> None:
        self.protected_edges.add((source, label, target))

    def cost(self, operation: RepairOperation) -> float:
        """The price of one operation under this model."""
        if isinstance(operation, SetAttribute):
            if (operation.node, operation.attr) in self.protected_attributes:
                return UNREPAIRABLE
            return self.set_attribute
        if isinstance(operation, RemoveAttribute):
            if (operation.node, operation.attr) in self.protected_attributes:
                return UNREPAIRABLE
            return self.remove_attribute
        if isinstance(operation, MergeNodes):
            if operation.loser in self.protected_nodes:
                return UNREPAIRABLE
            return self.merge_nodes
        if isinstance(operation, DeleteEdge):
            edge = (operation.source, operation.label, operation.target)
            if edge in self.protected_edges:
                return UNREPAIRABLE
            return self.delete_edge
        if isinstance(operation, DeleteNode):
            if operation.node in self.protected_nodes:
                return UNREPAIRABLE
            return self.delete_node
        raise TypeError(f"unknown repair operation {operation!r}")

    def plan_cost(self, operations: Iterable[RepairOperation]) -> float:
        """Total cost of a sequence of operations."""
        return sum(self.cost(op) for op in operations)

    def affordable(self, operations: Iterable[RepairOperation]) -> bool:
        return self.plan_cost(operations) < UNREPAIRABLE


__all__ = ["CostModel", "UNREPAIRABLE"]
