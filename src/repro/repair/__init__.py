"""Violation-driven graph repair (data cleaning with GEDs).

The paper's Example 1 motivates GEDs as rules to "detect semantic
inconsistencies and repair data"; the detection half is
:mod:`repro.reasoning.validation` / :mod:`repro.quality`, and this
package supplies the repair half.  It follows the classical
dependency-repair recipe adapted to graphs:

1. :func:`~repro.reasoning.validation.find_violations` produces
   witnesses (dependency, match, failed literals);
2. :mod:`repro.repair.suggest` turns each witness into candidate
   **repair operations** — *forward* repairs enforce the failed literal
   (exactly what a chase step would do: set an attribute, equalize two
   attributes, merge two nodes), *backward* repairs break the premise
   (retract an X-attribute or delete a match edge);
3. :mod:`repro.repair.cost` prices operations (protected attributes /
   nodes are infinitely expensive);
4. :mod:`repro.repair.engine` greedily applies the cheapest suggestion,
   re-validates, and iterates to a fixpoint or budget.

Forward repairs mirror the chase, so on a set Σ whose chase of the data
graph is *consistent*, the engine converges to a graph with G |= Σ.
When the chase is inconsistent (e.g. a forbidding constraint fires),
only backward repairs can clean the graph — the engine falls back to
them automatically.
"""

from repro.repair.cost import CostModel, UNREPAIRABLE
from repro.repair.engine import RepairReport, repair
from repro.repair.operations import (
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    RemoveAttribute,
    RepairOperation,
    SetAttribute,
    apply_operation,
    apply_operations,
)
from repro.repair.suggest import suggest_repairs
from repro.repair.vee import repair_vee, suggest_vee_repairs

__all__ = [
    "CostModel",
    "DeleteEdge",
    "DeleteNode",
    "MergeNodes",
    "RemoveAttribute",
    "RepairOperation",
    "RepairReport",
    "SetAttribute",
    "UNREPAIRABLE",
    "apply_operation",
    "apply_operations",
    "repair",
    "repair_vee",
    "suggest_vee_repairs",
    "suggest_repairs",
]
