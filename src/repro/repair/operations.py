"""Primitive graph repair operations.

Each operation is an immutable, hashable edit on a property graph.
Operations never mutate their input: :func:`apply_operation` returns a
new graph, so the engine can evaluate alternatives side-effect-free and
a :class:`~repro.repair.engine.RepairReport` can replay its trace.

The vocabulary matches what GED semantics can demand:

* :class:`SetAttribute` / :class:`RemoveAttribute` — repair constant and
  variable literals (forward: enforce the value; backward: retract the
  premise attribute);
* :class:`MergeNodes` — repair id literals.  Merging is the data-graph
  analogue of the chase's coercion: the surviving node takes the union
  of attributes and all incident edges.  A merge is only well defined
  when the two nodes' labels are compatible and shared attributes agree
  — the same label/attribute-conflict conditions as Section 4;
* :class:`DeleteEdge` / :class:`DeleteNode` — backward repairs that
  destroy matches (the only way to satisfy a forbidding constraint).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import RepairError
from repro.graph.graph import Graph, Value
from repro.patterns.labels import compatible as labels_compatible
from repro.patterns.labels import merged as merged_label


class RepairOperation:
    """Base class for graph repair operations."""

    def apply(self, graph: Graph) -> Graph:
        raise NotImplementedError

    def touches(self) -> frozenset[str]:
        """Node ids this operation reads or writes (for conflict checks)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SetAttribute(RepairOperation):
    """Set ``node.attr = value`` (creating the attribute if absent)."""

    node: str
    attr: str
    value: Value

    def apply(self, graph: Graph) -> Graph:
        if not graph.has_node(self.node):
            raise RepairError(f"SetAttribute on unknown node {self.node!r}")
        result = graph.copy()
        result.set_attribute(self.node, self.attr, self.value)
        return result

    def touches(self) -> frozenset[str]:
        return frozenset({self.node})

    def __str__(self) -> str:
        return f"set {self.node}.{self.attr} = {self.value!r}"


@dataclass(frozen=True)
class RemoveAttribute(RepairOperation):
    """Drop attribute ``attr`` from ``node`` (a backward repair)."""

    node: str
    attr: str

    def apply(self, graph: Graph) -> Graph:
        source = graph.node(self.node)
        if not source.has_attribute(self.attr):
            raise RepairError(f"{self.node!r} has no attribute {self.attr!r} to remove")
        result = Graph()
        for node in graph.nodes:
            attrs = {
                a: v
                for a, v in node.attributes.items()
                if not (node.id == self.node and a == self.attr)
            }
            result.add_node(node.id, node.label, attrs)
        for s, l, t in graph.edges:
            result.add_edge(s, l, t)
        return result

    def touches(self) -> frozenset[str]:
        return frozenset({self.node})

    def __str__(self) -> str:
        return f"remove {self.node}.{self.attr}"


@dataclass(frozen=True)
class DeleteEdge(RepairOperation):
    """Delete the edge ``(source, label, target)``."""

    source: str
    label: str
    target: str

    def apply(self, graph: Graph) -> Graph:
        if not graph.has_edge(self.source, self.label, self.target):
            raise RepairError(f"no edge ({self.source}, {self.label}, {self.target}) to delete")
        result = Graph()
        for node in graph.nodes:
            result.add_node(node.id, node.label, node.attributes)
        doomed = (self.source, self.label, self.target)
        for edge in graph.edges:
            if edge != doomed:
                result.add_edge(*edge)
        return result

    def touches(self) -> frozenset[str]:
        return frozenset({self.source, self.target})

    def __str__(self) -> str:
        return f"delete edge ({self.source})-[{self.label}]->({self.target})"


@dataclass(frozen=True)
class DeleteNode(RepairOperation):
    """Delete a node and all its incident edges."""

    node: str

    def apply(self, graph: Graph) -> Graph:
        if not graph.has_node(self.node):
            raise RepairError(f"no node {self.node!r} to delete")
        return graph.induced_subgraph(n for n in graph.node_ids if n != self.node)

    def touches(self) -> frozenset[str]:
        return frozenset({self.node})

    def __str__(self) -> str:
        return f"delete node {self.node}"


@dataclass(frozen=True)
class MergeNodes(RepairOperation):
    """Merge ``loser`` into ``survivor`` (repairing an id literal).

    The survivor keeps its id, takes the union of the two attribute
    tuples, and inherits every edge of the loser (self-edges between the
    pair become loops, as in coercion).  Label compatibility follows the
    paper's ``≼``: a wildcard-labeled node (only possible when repairing
    a chased pattern graph) defers to the concrete label.
    """

    survivor: str
    loser: str

    def apply(self, graph: Graph) -> Graph:
        if self.survivor == self.loser:
            raise RepairError("cannot merge a node with itself")
        keep = graph.node(self.survivor)
        gone = graph.node(self.loser)
        if not labels_compatible(keep.label, gone.label):
            raise RepairError(
                f"label conflict merging {self.loser!r} ({gone.label}) into "
                f"{self.survivor!r} ({keep.label})"
            )
        attrs = dict(keep.attributes)
        for attr, value in gone.attributes.items():
            if attr in attrs and attrs[attr] != value:
                raise RepairError(
                    f"attribute conflict merging {self.loser!r} into {self.survivor!r}: "
                    f"{attr} = {attrs[attr]!r} vs {value!r}"
                )
            attrs[attr] = value
        label = merged_label([keep.label, gone.label])

        def redirect(node_id: str) -> str:
            return self.survivor if node_id == self.loser else node_id

        result = Graph()
        for node in graph.nodes:
            if node.id == self.loser:
                continue
            if node.id == self.survivor:
                result.add_node(self.survivor, label, attrs)
            else:
                result.add_node(node.id, node.label, node.attributes)
        for s, l, t in graph.edges:
            result.add_edge(redirect(s), l, redirect(t))
        return result

    def touches(self) -> frozenset[str]:
        return frozenset({self.survivor, self.loser})

    def __str__(self) -> str:
        return f"merge {self.loser} into {self.survivor}"


def apply_operation(graph: Graph, operation: RepairOperation) -> Graph:
    """Apply one operation, returning a new graph."""
    return operation.apply(graph)


def apply_operations(graph: Graph, operations: Iterable[RepairOperation]) -> Graph:
    """Apply operations left to right.

    Note that operations are positional: a merge renames its loser, so a
    later operation referring to the loser id fails.  The engine always
    re-derives suggestions from the current graph, so it never trips on
    this; callers replaying a report trace are safe for the same reason.
    """
    for operation in operations:
        graph = operation.apply(graph)
    return graph


__all__ = [
    "DeleteEdge",
    "DeleteNode",
    "MergeNodes",
    "RemoveAttribute",
    "RepairOperation",
    "SetAttribute",
    "apply_operation",
    "apply_operations",
]
