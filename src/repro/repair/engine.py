"""The greedy repair engine.

``repair(graph, sigma)`` drives detection → suggestion → application to
a fixpoint:

1. find the violations of Σ in the current graph (optionally capped);
2. pick the violation with the cheapest affordable plan, apply it;
3. repeat until no violations remain, no affordable plan exists, or the
   operation budget is exhausted.

Greedy minimum-cost repair is the standard heuristic (optimal repair is
already NP-hard for relational FDs, and GED validation itself is
coNP-complete, Theorem 6); what we guarantee is *soundness* — the
returned graph is only reported clean when a final validation pass
finds no violations — and **termination**, via the explicit budget plus
a no-progress check.

Forward repairs may cascade (satisfying one rule can create a new match
of another — exactly like chase steps); that is expected and handled by
re-validation each round.  A cycle of forward value repairs (rule A
wants x.A = 1, rule B wants x.A = 2) cannot loop forever: each round
applies the cheapest plan, and the engine detects graph recurrence and
switches that violation to backward repairs.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.reasoning.validation import Violation, find_violations
from repro.repair.cost import UNREPAIRABLE, CostModel
from repro.repair.operations import RepairOperation, apply_operations
from repro.repair.suggest import RepairPlan, suggest_repairs_batch


@dataclass
class RepairReport:
    """Outcome of a repair run.

    ``clean`` — the final graph satisfies Σ (verified, not assumed).
    ``applied`` — the operations in application order (replayable via
    :func:`~repro.repair.operations.apply_operations` on the original
    graph).  ``remaining`` — violations left when not clean.
    """

    clean: bool
    graph: Graph
    applied: list[RepairOperation] = field(default_factory=list)
    remaining: list[Violation] = field(default_factory=list)
    rounds: int = 0
    total_cost: float = 0.0
    stopped_reason: str | None = None

    def __bool__(self) -> bool:
        return self.clean

    def summary(self) -> str:
        state = "clean" if self.clean else f"{len(self.remaining)} violations left"
        ops = "; ".join(str(op) for op in self.applied) or "no edits"
        return f"{state} after {self.rounds} rounds (cost {self.total_cost:g}): {ops}"


def repair(
    graph: Graph,
    sigma: Sequence[GED],
    cost_model: CostModel | None = None,
    max_operations: int = 1000,
    allow_backward: bool = True,
    suggest_workers: int | None = 1,
) -> RepairReport:
    """Greedily repair ``graph`` until it satisfies ``sigma``.

    Parameters
    ----------
    cost_model:
        prices and protections; defaults to :class:`CostModel()`.
    max_operations:
        hard budget on applied operations (termination guarantee).
    allow_backward:
        permit premise-destroying repairs.  With ``False`` the engine is
        a pure chase-like forward cleaner and may stop dirty (e.g. on
        forbidding constraints, which have no forward repair).
    suggest_workers:
        with > 1 (or ``None`` for one per CPU), each round's
        per-violation suggestion pass fans out over the
        :mod:`repro.engine` worker pool.  The repaired graph is
        identical — suggestion is a pure read — so this is purely a
        wall-clock lever for wide violation sets; note every applied
        round mutates the graph and therefore re-broadcasts.
    """
    model = cost_model or CostModel()
    sigma = list(sigma)
    current = graph.copy()
    applied: list[RepairOperation] = []
    total_cost = 0.0
    rounds = 0
    seen_states: set[int] = {_fingerprint(current)}

    while len(applied) < max_operations:
        rounds += 1
        violations = find_violations(current, sigma)
        if not violations:
            return RepairReport(True, current, applied, [], rounds, total_cost)

        plan, cost = _cheapest_plan(
            current, violations, model, allow_backward, suggest_workers
        )
        if plan is None:
            return RepairReport(
                False, current, applied, violations, rounds, total_cost,
                stopped_reason="no affordable repair plan",
            )
        candidate = apply_operations(current, plan)
        fingerprint = _fingerprint(candidate)
        if fingerprint in seen_states:
            # The cheapest plan oscillates (e.g. two rules fighting over
            # one value).  Retry with forward-only plans excluded for
            # the offending violation by falling back to the next
            # cheapest *novel* plan; if none, stop dirty.
            plan, cost, candidate = _cheapest_novel_plan(
                current, violations, model, allow_backward, seen_states, suggest_workers
            )
            if plan is None:
                return RepairReport(
                    False, current, applied, violations, rounds, total_cost,
                    stopped_reason="repair plans oscillate",
                )
            fingerprint = _fingerprint(candidate)
        seen_states.add(fingerprint)
        current = candidate
        applied.extend(plan)
        total_cost += cost

    violations = find_violations(current, sigma)
    return RepairReport(
        not violations, current, applied, violations, rounds, total_cost,
        stopped_reason=None if not violations else "operation budget exhausted",
    )


def _cheapest_plan(
    graph: Graph,
    violations: Sequence[Violation],
    model: CostModel,
    allow_backward: bool,
    suggest_workers: int | None = 1,
) -> tuple[RepairPlan | None, float]:
    """The globally cheapest plan across all current violations."""
    best: RepairPlan | None = None
    best_cost = UNREPAIRABLE
    for plans in suggest_repairs_batch(
        graph, violations, allow_backward, workers=suggest_workers
    ):
        for plan in plans:
            cost = model.plan_cost(plan)
            if cost < best_cost:
                best, best_cost = plan, cost
    return best, best_cost


def _cheapest_novel_plan(
    graph: Graph,
    violations: Sequence[Violation],
    model: CostModel,
    allow_backward: bool,
    seen_states: set[int],
    suggest_workers: int | None = 1,
) -> tuple[RepairPlan | None, float, Graph | None]:
    """The cheapest plan whose result is a graph not seen before."""
    candidates: list[tuple[float, int, RepairPlan]] = []
    for plans in suggest_repairs_batch(
        graph, violations, allow_backward, workers=suggest_workers
    ):
        for plan in plans:
            cost = model.plan_cost(plan)
            if cost < UNREPAIRABLE:
                candidates.append((cost, len(candidates), plan))
    candidates.sort(key=lambda item: (item[0], item[1]))
    for cost, _, plan in candidates:
        candidate = apply_operations(graph, plan)
        if _fingerprint(candidate) not in seen_states:
            return plan, cost, candidate
    return None, UNREPAIRABLE, None


def _fingerprint(graph: Graph) -> int:
    """A structural hash for recurrence detection."""
    nodes = tuple(
        (node.id, node.label, tuple(sorted(node.attributes.items(), key=repr)))
        for node in sorted(graph.nodes, key=lambda n: n.id)
    )
    return hash((nodes, frozenset(graph.edges)))


__all__ = ["RepairReport", "repair"]
