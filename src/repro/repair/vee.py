"""Repairing violations of disjunctive rules (GED∨s, Section 7.2).

A GED∨ violation is a match satisfying X and *no* disjunct of Y.  The
forward options are therefore per-disjunct: enforcing **any one**
literal of Y fixes the violation, so the plan pool is the union over
disjuncts of the GED forward plans — and the engine's cost model picks
the cheapest disjunct to realize.  This captures, e.g., the Example 10
domain constraint ``x.A = 0 ∨ x.A = 1``: a node with ``x.A = 7`` is
repaired to whichever boundary value the model prefers.

Backward options are the GED ones unchanged (retract an X attribute or
break the match) — these are also the only options for the empty
disjunction, which is the GED∨ form of a forbidding constraint.

``repair_vee`` runs the same greedy verified-clean loop as
:func:`repro.repair.engine.repair`, over GED∨ semantics.
"""

from __future__ import annotations

from collections.abc import Sequence
from repro.extensions.gedvee import GEDVee
from repro.extensions.gedvee_reasoning import VeeViolation, vee_find_violations
from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.reasoning.validation import Violation
from repro.repair.cost import UNREPAIRABLE, CostModel
from repro.repair.engine import RepairReport, _fingerprint
from repro.repair.operations import RepairOperation, apply_operations
from repro.repair.suggest import RepairPlan, _backward_plans, _forward_plans


def suggest_vee_repairs(
    graph: Graph,
    violation: VeeViolation,
    allow_backward: bool = True,
) -> list[RepairPlan]:
    """Candidate plans for one GED∨ violation.

    One forward family per disjunct of Y (any succeeds), then the
    backward plans.  Deterministic order: disjuncts sorted by text.
    """
    match = violation.assignment
    dep = violation.dependency
    plans: list[RepairPlan] = []
    seen: set[RepairPlan] = set()

    for literal in sorted(dep.Y, key=str):
        for plan in _forward_plans(graph, literal, match):
            if plan not in seen:
                seen.add(plan)
                plans.append(plan)

    if allow_backward:
        # Reuse the GED backward generator via a shim violation: it only
        # reads .ged.X, .ged.pattern and .assignment.
        shim = Violation(
            GED(dep.pattern, dep.X, [], name=dep.name), violation.match, ()
        )
        for plan in _backward_plans(graph, shim):
            if plan not in seen:
                seen.add(plan)
                plans.append(plan)
    return plans


def repair_vee(
    graph: Graph,
    sigma: Sequence[GEDVee],
    cost_model: CostModel | None = None,
    max_operations: int = 1000,
    allow_backward: bool = True,
) -> RepairReport:
    """Greedy verified-clean repair under GED∨ semantics.

    Mirrors :func:`repro.repair.engine.repair`; the report's
    ``remaining`` field holds :class:`VeeViolation` witnesses when the
    run stops dirty.
    """
    model = cost_model or CostModel()
    sigma = list(sigma)
    current = graph.copy()
    applied: list[RepairOperation] = []
    total_cost = 0.0
    rounds = 0
    seen_states: set[int] = {_fingerprint(current)}

    while len(applied) < max_operations:
        rounds += 1
        violations = vee_find_violations(current, sigma)
        if not violations:
            return RepairReport(True, current, applied, [], rounds, total_cost)

        best_plan: RepairPlan | None = None
        best_cost = UNREPAIRABLE
        best_graph: Graph | None = None
        candidates: list[tuple[float, int, RepairPlan]] = []
        for violation in violations:
            for plan in suggest_vee_repairs(current, violation, allow_backward):
                cost = model.plan_cost(plan)
                if cost < UNREPAIRABLE:
                    candidates.append((cost, len(candidates), plan))
        candidates.sort(key=lambda item: (item[0], item[1]))
        for cost, _, plan in candidates:
            candidate = apply_operations(current, plan)
            if _fingerprint(candidate) not in seen_states:
                best_plan, best_cost, best_graph = plan, cost, candidate
                break
        if best_plan is None or best_graph is None:
            reason = (
                "no affordable repair plan" if not candidates else "repair plans oscillate"
            )
            return RepairReport(
                False, current, applied, violations, rounds, total_cost,
                stopped_reason=reason,
            )
        seen_states.add(_fingerprint(best_graph))
        current = best_graph
        applied.extend(best_plan)
        total_cost += best_cost

    violations = vee_find_violations(current, sigma)
    return RepairReport(
        not violations, current, applied, violations, rounds, total_cost,
        stopped_reason=None if not violations else "operation budget exhausted",
    )


__all__ = ["repair_vee", "suggest_vee_repairs"]
