"""The persistent worker-pool runtime.

One :class:`EnginePool` owns a :class:`~concurrent.futures.ProcessPoolExecutor`
whose **initializer** receives the pickled
:class:`~repro.engine.snapshot.GraphSnapshot` exactly once per worker.
Each worker rebuilds the graph (and, when the coordinator had one, the
index) into a module-level slot at startup; every subsequent task then
ships only references — a dependency, a pivot variable, shard node ids —
and executes against the warm worker state.  This replaces the old
per-task pickling of the whole graph with a one-time broadcast, the
fragment-per-worker execution model the paper's parallel-validation
story presumes.

Pools are cached in a process-wide *weak* registry keyed by the graph
object (mirroring :mod:`repro.indexing.registry`) and guarded by the
graph's mutation version: a second validation call on the same graph
reuses the warm workers with zero broadcast cost, while any mutation —
or a change in worker count or index attachment — retires the stale
pool and builds a fresh one.  Dropping the last reference to a graph
lets both its index and its pool be collected.
"""

from __future__ import annotations

import atexit
import os
import weakref
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.indexing.registry import get_index
from repro.patterns.pattern import Pattern
from repro.telemetry import metrics as _metrics
from repro.telemetry import spans as _spans
from repro.telemetry import trace as _trace
from repro.utils.registry import WeakIdRegistry

from repro.engine.scheduler import FragmentUnit, TaskUnit
from repro.engine.snapshot import (
    FragmentSnapshot,
    GraphSnapshot,
    snapshot_fragments,
    snapshot_graph,
)

# ----------------------------------------------------------------------
# Worker-side state and task entry points (top level: importable by the
# executor's pickler; populated once by the pool initializer).
# ----------------------------------------------------------------------

_WORKER_GRAPH: Graph | None = None
# Optional caller payload broadcast alongside the snapshot (e.g. the
# streaming delta path's rule set) — shipped once per worker instead of
# once per task.
_WORKER_EXTRA = None


def _initialize_worker(payload: bytes, extra_payload: bytes | None = None) -> None:
    """Pool initializer: rebuild graph (+ index + plans) from the broadcast.

    Compiled match plans memoize automatically from here on: the worker
    graph never mutates (a coordinator mutation retires the whole
    pool), so its :mod:`repro.matching.view` view — and every
    :class:`~repro.matching.plan.MatchPlan` cached on it, including the
    ones the snapshot shipped ready-made — stays warm for the worker's
    lifetime and serves every later shard of the same pattern.
    """
    import pickle

    global _WORKER_GRAPH, _WORKER_EXTRA
    snapshot: GraphSnapshot = pickle.loads(payload)
    _WORKER_GRAPH = snapshot.restore()
    _WORKER_EXTRA = pickle.loads(extra_payload) if extra_payload is not None else None


def _worker_graph() -> Graph:
    if _WORKER_GRAPH is None:
        raise RuntimeError("engine worker used before its snapshot broadcast")
    return _WORKER_GRAPH


def _worker_extra():
    """The pool's broadcast extra payload (None when none was sent)."""
    return _WORKER_EXTRA


def _validate_batch(
    batch: tuple[TaskUnit, ...], collect: bool = False, trace=None
):
    """Run a batch of (dependency, shard) units on the warm graph.

    One batch is one round trip: the scheduler packs units so a call
    dispatches a handful of balanced futures instead of one per unit.
    Match plans are compiled (or were shipped in the broadcast) once per
    pattern and stay memoized on the worker's graph view for its
    lifetime — the shard kernel hits the warm plan through the ordinary
    matching API.

    ``collect=True`` (the coordinator's telemetry is enabled) runs the
    batch under a fresh metrics registry and returns ``(results,
    snapshot)`` — the worker-side half of cross-process aggregation.
    ``trace`` (a :class:`~repro.telemetry.trace.TraceContext`) runs the
    batch under the coordinator's trace so worker spans land in its
    causal tree; they ride home inside the snapshot.  The default
    return shape is unchanged.
    """
    from repro.parallel.validate import run_shard

    graph = _worker_graph()
    if not collect:
        return [
            run_shard(graph, unit.ged, unit.pivot, unit.shard, unit.shard_index)
            for unit in batch
        ]
    with _metrics.collecting() as registry:
        with _trace.tracing(trace), _spans.span("engine.batch", units=len(batch)):
            results = [
                run_shard(graph, unit.ged, unit.pivot, unit.shard, unit.shard_index)
                for unit in batch
            ]
    return results, _spans.collected_snapshot(registry)


def _count_pattern(pattern: Pattern) -> int:
    """Count matches of one pattern on the warm graph (discovery)."""
    from repro.matching.homomorphism import count_matches

    return count_matches(pattern, _worker_graph())


def _count_sigma_chunk(patterns: tuple[Pattern, ...]) -> list[int]:
    """Count a contiguous chunk of patterns as one Σ-DAG pass.

    The chunk shares scan/extend prefixes inside the worker exactly like
    the serial discovery path; the coordinator flattens chunk results in
    dispatch order, so the combined list equals per-pattern counting.
    """
    from repro.matching.sigma_dag import count_sigma

    return count_sigma(_worker_graph(), list(patterns))


def _suggest_unit(violation, allow_backward: bool):
    """Suggest repair plans for one violation on the warm graph."""
    from repro.repair.suggest import suggest_repairs

    return suggest_repairs(_worker_graph(), violation, allow_backward=allow_backward)


# -- fragment-resident worker state ------------------------------------

_WORKER_FRAGMENT = None  # the rebuilt Fragment (one per resident worker)


def _initialize_fragment_worker(payload: bytes) -> None:
    """Pool initializer: rebuild *one fragment* from its broadcast.

    The resident worker never sees the rest of the graph — its memory
    and broadcast cost are O(|fragment| + border), the whole point of
    the fragmented core.
    """
    import pickle

    global _WORKER_FRAGMENT
    snapshot: FragmentSnapshot = pickle.loads(payload)
    _WORKER_FRAGMENT = snapshot.restore()


def _worker_fragment():
    if _WORKER_FRAGMENT is None:
        raise RuntimeError("fragment worker used before its snapshot broadcast")
    return _WORKER_FRAGMENT


def _fragment_validate_batch(
    batch: tuple[FragmentUnit, ...], collect: bool = False, trace=None
):
    """Run one fragment's (dependency, local pivots) units on the
    resident fragment graph — the ordinary shard kernel, local plans
    memoized on the fragment's view for the worker's lifetime.

    ``collect=True`` returns ``(results, snapshot)``; the snapshot's
    executor counters are additionally attributed to this fragment
    (``fragment.frames_expanded.fragment<i>``) so the coordinator can
    report per-fragment skew without knowing which worker ran what.
    ``trace`` threads the coordinator's trace context through, exactly
    as in :func:`_validate_batch`.
    """
    from repro.parallel.validate import run_shard

    fragment = _worker_fragment()
    if not collect:
        return [
            run_shard(
                fragment.graph, unit.ged, unit.pivot, unit.shard, unit.fragment_index
            )
            for unit in batch
        ]
    fragment_index = batch[0].fragment_index if batch else -1
    with _metrics.collecting() as registry:
        with (
            _trace.tracing(trace),
            _spans.span("fragment.batch", fragment=fragment_index, units=len(batch)),
        ):
            results = [
                run_shard(
                    fragment.graph, unit.ged, unit.pivot, unit.shard, unit.fragment_index
                )
                for unit in batch
            ]
        if batch:
            registry.incr(
                f"fragment.frames_expanded.fragment{fragment_index}",
                registry.counter_value("plan.frames_expanded"),
            )
    return results, _spans.collected_snapshot(registry)


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


def resolve_workers(workers: int | None) -> int:
    """Validate and default a worker count.

    ``None`` means "one worker per available CPU" — the default is
    capped at ``os.cpu_count()`` so unconfigured callers never
    oversubscribe.  Explicit counts are honored as given (more workers
    than cores is a legitimate ask: shard granularity, or I/O-bound
    custom tasks) but must be positive integers.
    """
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(f"workers must be a positive integer, got {workers!r}")
    if workers < 1:
        raise ValueError(
            f"workers must be a positive integer, got {workers} "
            "(use workers=1 or backend='serial' for single-threaded runs)"
        )
    return workers


class EnginePool:
    """A warm process pool bound to one (graph, version) snapshot.

    ``extra`` is an optional picklable payload broadcast to every worker
    alongside the snapshot (readable worker-side via
    :func:`_worker_extra`) — for per-pool-constant state like the
    streaming delta path's rule set, which would otherwise be
    re-pickled into every task.
    """

    def __init__(self, snapshot: GraphSnapshot, workers: int, extra=None):
        import pickle

        self.snapshot = snapshot
        self.workers = workers
        self.version = snapshot.version
        self.indexed = snapshot.indexed
        payload = snapshot.payload()  # pickle the broadcast exactly once
        extra_payload = (
            pickle.dumps(extra, protocol=pickle.HIGHEST_PROTOCOL)
            if extra is not None
            else None
        )
        self.tasks_dispatched = 0
        self.calls = 0
        self.closed = False
        self.broadcast_bytes = len(payload) + len(extra_payload or b"")
        sink = _metrics.sink()
        sink.incr("engine.pools_built")
        sink.incr("engine.broadcast_bytes", self.broadcast_bytes)
        self._plan_cache: dict[tuple[GED, ...], list[TaskUnit]] = {}
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialize_worker,
            initargs=(payload, extra_payload),
        )

    # -- generic dispatch ----------------------------------------------
    def _map(self, fn, argument_tuples: Sequence[tuple]) -> list:
        if self.closed:
            raise RuntimeError("engine pool is closed")
        self.calls += 1
        self.tasks_dispatched += len(argument_tuples)
        futures = [self._executor.submit(fn, *args) for args in argument_tuples]
        return [future.result() for future in futures]

    def plan_validation(self, graph: Graph, sigma: Sequence[GED]) -> list:
        """The scheduled work queue for validating Σ, memoized per rule
        set: the pool pins one graph version and one worker count, so
        an unchanged Σ reuses its plan on every warm call."""
        from repro.engine.scheduler import plan_tasks

        key = tuple(sigma)
        units = self._plan_cache.get(key)
        if units is None:
            units = plan_tasks(graph, sigma, self.workers)
            self._plan_cache[key] = units
        return units

    # -- the three workload adapters -----------------------------------
    def validate_units(self, units: Sequence[TaskUnit]) -> list:
        """Execute scheduled validation units, packed into at most
        ``2 * workers`` balanced round trips; the flat result list is
        unordered across batches (the caller merges and sorts
        deterministically)."""
        from repro.engine.scheduler import pack_units

        batches = pack_units(units, self.workers * 2)
        sink = _metrics.sink()
        if not sink.enabled:
            results = self._map(_validate_batch, [(batch,) for batch in batches])
            return [shard_result for batch in results for shard_result in batch]
        loads = [sum(unit.est_cost for unit in batch) for batch in batches if batch]
        if loads:
            mean = sum(loads) / len(loads)
            sink.gauge("engine.lpt_imbalance", max(loads) / mean if mean else 1.0)
        ctx = _trace.propagation_context()
        collected = self._map(_validate_batch, [(batch, True, ctx) for batch in batches])
        flat = []
        for batch_results, snapshot in collected:
            sink.merge(snapshot)
            _spans.absorb_remote(snapshot)
            flat.extend(batch_results)
        return flat

    def count_patterns(self, patterns: Sequence[Pattern]) -> list[int]:
        """Match counts for many patterns (discovery's support scan).

        Patterns are dispatched in contiguous chunks — at most
        ``2 * workers`` — and each chunk runs worker-side as one Σ-DAG
        pass, so schema siblings that landed in the same chunk share
        their enumeration prefixes instead of compiling ``len(chunk)``
        independent plans.  Flattening in dispatch order keeps the
        result order identical to per-pattern counting.
        """
        patterns = list(patterns)
        if not patterns:
            return []
        chunks = max(1, min(len(patterns), self.workers * 2))
        size, extra = divmod(len(patterns), chunks)
        slices: list[tuple[Pattern, ...]] = []
        start = 0
        for chunk_index in range(chunks):
            stop = start + size + (1 if chunk_index < extra else 0)
            if stop > start:
                slices.append(tuple(patterns[start:stop]))
            start = stop
        results = self._map(_count_sigma_chunk, [(chunk,) for chunk in slices])
        return [count for chunk_counts in results for count in chunk_counts]

    def suggest_repairs(self, violations: Sequence, allow_backward: bool = True) -> list:
        """Per-violation repair plans (repair's suggestion fan-out)."""
        return self._map(_suggest_unit, [(violation, allow_backward) for violation in violations])

    def run_tasks(self, fn, argument_tuples: Sequence[tuple]) -> list:
        """Dispatch arbitrary top-level-function tasks to the warm workers.

        ``fn`` must be picklable (a module-level function) and may reach
        the broadcast graph via :func:`_worker_graph` — the extension
        point custom workloads (e.g. the streaming delta path of
        :mod:`repro.streaming.parallel`) use to ride the one-time
        broadcast without a bespoke pool.
        """
        return self._map(fn, argument_tuples)

    def close(self) -> None:
        """Shut the workers down; the pool cannot be reused."""
        if not self.closed:
            self.closed = True
            self._executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnginePool(workers={self.workers}, version={self.version}, "
            f"indexed={self.indexed}, broadcast={self.broadcast_bytes}B, "
            f"dispatched={self.tasks_dispatched})"
        )


class FragmentPool:
    """Fragment-resident workers: one process per fragment, each
    initialized with **only its fragment's** snapshot.

    Where :class:`EnginePool` broadcasts the whole graph to every worker
    (O(k·|G|) across the pool), a fragment pool ships each resident
    worker its slice — O(|G| + borders) total — and routes every
    (dependency, fragment) unit to the worker that owns the fragment.
    Pivots the ball-completeness rule cannot certify run coordinator-
    side against the whole graph (the escalation path), so the merged
    report stays byte-identical to the serial backend.
    """

    def __init__(self, fragmentation, *, graph: Graph | None = None):
        self.fragmentation = fragmentation
        self.snapshots = snapshot_fragments(fragmentation)
        self.payloads = [snapshot.payload() for snapshot in self.snapshots]
        self.fragment_bytes = [len(payload) for payload in self.payloads]
        self.broadcast_bytes = sum(self.fragment_bytes)
        self.max_fragment_bytes = max(self.fragment_bytes, default=0)
        self.indexed = fragmentation.indexed
        self.tasks_dispatched = 0
        self.escalated_pivots = 0
        self.closed = False
        sink = _metrics.sink()
        sink.incr("fragment.pools_built")
        sink.incr("fragment.broadcast_bytes", self.broadcast_bytes)
        self._graph = graph  # the coordinator's whole graph (escalation)
        self._executors = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_initialize_fragment_worker,
                initargs=(payload,),
            )
            for payload in self.payloads
        ]

    @classmethod
    def partition(
        cls, graph: Graph, k: int, mode: str = "hash", *, ensure_indexes: bool | None = None
    ) -> "FragmentPool":
        """Partition ``graph`` (via the fragmentation cache) and stand
        up one resident worker per fragment."""
        from repro.graph.fragments import get_fragments

        fragmentation = get_fragments(graph, k, mode, ensure_indexes=ensure_indexes)
        return cls(fragmentation, graph=graph)

    def validate(self, sigma: Sequence[GED], graph: Graph | None = None) -> list:
        """All (violations, stats) shard results for Σ.

        Fragment units go to their resident workers — one round trip
        per fragment, units cost-ordered by the fragment scheduler —
        while the escalation residue runs in-process on the whole
        graph.  The caller merges and sorts exactly like every other
        backend (see ``parallel_find_violations``).
        """
        from repro.engine.scheduler import plan_fragment_tasks
        from repro.parallel.validate import run_shard

        if self.closed:
            raise RuntimeError("fragment pool is closed")
        graph = graph if graph is not None else self._graph
        if graph is None:
            raise ValueError("validate() needs the coordinator graph for escalation")
        if graph.version != self.fragmentation.source_version:
            # The resident workers hold snapshots of the partition-time
            # graph; planning against a mutated coordinator would merge
            # stale fragment-local matches with fresh escalations — a
            # report that is neither pre- nor post-mutation.  The warm
            # EnginePool registry retires on version mismatch; a bound
            # fragment pool must refuse instead.
            raise RuntimeError(
                f"fragment pool is stale: graph version {graph.version} != "
                f"partitioned version {self.fragmentation.source_version} "
                "(repartition with FragmentPool.partition)"
            )
        units, residue = plan_fragment_tasks(graph, sigma, self.fragmentation)
        per_fragment: dict[int, list[FragmentUnit]] = {}
        for unit in units:
            per_fragment.setdefault(unit.fragment_index, []).append(unit)
        sink = _metrics.sink()
        collect = sink.enabled
        ctx = _trace.propagation_context() if collect else None
        futures = []
        for fragment_index, batch in sorted(per_fragment.items()):
            self.tasks_dispatched += len(batch)
            futures.append(
                self._executors[fragment_index].submit(
                    _fragment_validate_batch, tuple(batch), collect, ctx
                )
            )
        if collect:
            results = []
            for future in futures:
                batch_results, snapshot = future.result()
                sink.merge(snapshot)
                _spans.absorb_remote(snapshot)
                results.extend(batch_results)
            sink.incr(
                "fragment.pivots.local", sum(len(unit.shard) for unit in units)
            )
        else:
            results = [
                shard_result for future in futures for shard_result in future.result()
            ]
        k = self.fragmentation.k
        frames_before = sink.counter_value("plan.frames_expanded")
        for ged, pivot, shard in residue:
            self.escalated_pivots += len(shard)
            sink.incr("fragment.pivots.escalated", len(shard))
            results.append(run_shard(graph, ged, pivot, shard, k))
        if collect and residue:
            sink.incr(
                "fragment.frames_expanded.coordinator",
                sink.counter_value("plan.frames_expanded") - frames_before,
            )
        return results

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            # wait=True: k tiny single-worker executors drain instantly,
            # and a clean join avoids fd races in interpreter teardown.
            for executor in self._executors:
                executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "FragmentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FragmentPool(k={self.fragmentation.k}, "
            f"broadcast={self.broadcast_bytes}B, "
            f"max_fragment={self.max_fragment_bytes}B, "
            f"dispatched={self.tasks_dispatched})"
        )


# Identity-keyed for the same reason as repro.indexing.registry: a
# WeakKeyDictionary probe would pay a structural Graph.__eq__ per call.
_pools: WeakIdRegistry = WeakIdRegistry()


def get_pool(
    graph: Graph,
    workers: int | None = None,
    *,
    ensure_index: bool = False,
    patterns=None,
) -> EnginePool:
    """The warm pool for ``graph``, broadcasting a snapshot only when
    no current pool matches (same mutation version, worker count, and
    index attachment — any mismatch retires the old pool).

    ``patterns`` (when a fresh pool must be built) embeds those
    patterns' compiled candidate pools in the broadcast so workers
    start with warm plans; a reused pool ignores it (its workers
    compiled and memoized the plans on first use).
    """
    resolved = resolve_workers(workers)
    if ensure_index:
        # Attaching registers in the weak index registry only; the
        # graph itself (and its version) is untouched.
        from repro.indexing.registry import attach_index

        if get_index(graph) is None:
            attach_index(graph)
    indexed = get_index(graph) is not None
    sink = _metrics.sink()
    pool = _pools.get(graph)
    if (
        pool is not None
        and not pool.closed
        and pool.version == graph.version
        and pool.workers == resolved
        and pool.indexed == indexed
    ):
        sink.incr("engine.pool.warm_hits")
        return pool
    if pool is not None:
        if pool.closed:
            sink.incr("engine.pool.invalidated.closed")
        elif pool.version != graph.version:
            sink.incr("engine.pool.invalidated.version")
        elif pool.workers != resolved:
            sink.incr("engine.pool.invalidated.workers")
        else:
            sink.incr("engine.pool.invalidated.index")
        pool.close()
    sink.incr("engine.pool.cold_builds")
    pool = EnginePool(snapshot_graph(graph, patterns=patterns), resolved)
    _pools.set(graph, pool)
    # The registry holds the graph weakly: when the graph is collected
    # the pool entry vanishes, so close the workers right then instead
    # of waiting for the executor's own GC-driven shutdown (mutation
    # churn — e.g. the repair loop's per-round copies — would otherwise
    # leave idle worker processes lingering at the GC's discretion).
    weakref.finalize(graph, pool.close)
    return pool


def pool_for(graph: Graph) -> EnginePool | None:
    """The registered pool for ``graph``, if any (stats/tests)."""
    return _pools.get(graph)


def release_pool(graph: Graph) -> None:
    """Close and drop the pool for one graph, leaving others warm."""
    pool = _pools.pop(graph, None)
    if pool is not None:
        pool.close()


def shutdown_pools() -> None:
    """Close every registered pool (tests and interpreter exit)."""
    for pool in list(_pools.values()):
        pool.close()
    _pools.clear()


atexit.register(shutdown_pools)

__all__ = [
    "EnginePool",
    "FragmentPool",
    "get_pool",
    "pool_for",
    "release_pool",
    "resolve_workers",
    "shutdown_pools",
]
