"""The engine's work queue: (dependency, shard) tasks, costed and ordered.

Workers are long-lived and hold the graph, so a task needs to carry only
*references*: the dependency itself (a few literals), the pivot
variable, and the shard's node **ids** — never node data.  The scheduler
turns a rule set into such :class:`TaskUnit`\\ s via the exact sharding
of :mod:`repro.parallel.partition`, estimates each unit's cost, and
orders the queue **largest first**, the classic LPT heuristic: when the
pool drains the queue dynamically, the expensive shards start earliest
and the small ones backfill, which minimizes the makespan tail that
plagues round-robin assignment on skewed data.

Cost estimation uses the attached :mod:`repro.indexing` bundle when
present — a shard's estimated work is the summed (1 + out + in) degree
of its pivot candidates, read from the index's O(1) per-node degree
counters; without an index the graph's adjacency totals serve.  The
estimate only orders the queue; correctness never depends on it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.deps.ged import GED
from repro.graph.fragments import Fragmentation
from repro.graph.graph import Graph
from repro.indexing.registry import get_index
from repro.parallel.partition import plan_shards


@dataclass(frozen=True)
class TaskUnit:
    """One (dependency, shard) work unit, referenced by ids only."""

    ged: GED
    ged_position: int  # position of the dependency in Σ (tie-breaking)
    pivot: str
    shard: tuple[str, ...]
    shard_index: int
    est_cost: int

    def __str__(self) -> str:
        return (
            f"{self.ged.name or 'GED'}[shard {self.shard_index}]: "
            f"{len(self.shard)} pivot node(s), est cost {self.est_cost}"
        )


def estimate_shard_cost(graph: Graph, shard: Sequence[str]) -> int:
    """Estimated matcher work for pinning the pivot into ``shard``."""
    index = get_index(graph)
    if index is not None:
        return sum(1 + index.out_degree(node_id) + index.in_degree(node_id) for node_id in shard)
    return sum(1 + graph.out_degree(node_id) + graph.in_degree(node_id) for node_id in shard)


def plan_tasks(graph: Graph, sigma: Sequence[GED], workers: int) -> list[TaskUnit]:
    """All (dependency, shard) units for validating Σ, largest first.

    Sharding is exact (see :mod:`repro.parallel.partition`), so the
    units partition the match space; their execution order is free, and
    the deterministic merge downstream makes the result independent of
    it.  The returned order is itself deterministic: estimated cost
    descending, then Σ position, then shard index.
    """
    units: list[TaskUnit] = []
    for position, ged in enumerate(sigma):
        plan = plan_shards(ged.pattern, graph, workers)
        for shard_index, shard in enumerate(plan.shards):
            units.append(
                TaskUnit(
                    ged=ged,
                    ged_position=position,
                    pivot=plan.pivot,
                    shard=shard,
                    shard_index=shard_index,
                    est_cost=estimate_shard_cost(graph, shard),
                )
            )
    units.sort(key=lambda unit: (-unit.est_cost, unit.ged_position, unit.shard_index))
    return units


@dataclass(frozen=True)
class FragmentUnit:
    """One (dependency, fragment) work unit for a fragment-resident
    worker: the locally decidable pivot ids of that dependency inside
    that fragment (escalated pivots never enter a unit — they run on
    the coordinator)."""

    ged: GED
    ged_position: int
    fragment_index: int
    pivot: str
    shard: tuple[str, ...]
    est_cost: int

    def __str__(self) -> str:
        return (
            f"{self.ged.name or 'GED'}[fragment {self.fragment_index}]: "
            f"{len(self.shard)} local pivot(s), est cost {self.est_cost}"
        )


def plan_fragment_tasks(
    graph: Graph,
    sigma: Sequence[GED],
    fragmentation: Fragmentation,
) -> tuple[list[FragmentUnit], list[tuple[GED, str, tuple[str, ...]]]]:
    """(dependency, fragment) units by fragment cost profile, plus the
    escalation residue.

    Unit costs come from the *fragment's* degree profile (its local
    index when one is attached, its adjacency totals otherwise) — the
    same estimator the monolithic queue uses, but answering from the
    fragment-resident state the unit will actually run against.  Units
    are ordered largest-first per fragment (each fragment's resident
    worker drains its own queue); the residue is one whole-graph
    (dependency, pivot, shard) pass per dependency with escalated
    pivots, run coordinator-side.
    """
    from repro.parallel.validate import plan_fragment_pivots

    units: list[FragmentUnit] = []
    residue: list[tuple[GED, str, tuple[str, ...]]] = []
    for position, ged in enumerate(sigma):
        pivot, per_fragment, escalated = plan_fragment_pivots(graph, ged, fragmentation)
        for fragment_index, pivots in per_fragment:
            fragment = fragmentation.fragments[fragment_index]
            units.append(
                FragmentUnit(
                    ged=ged,
                    ged_position=position,
                    fragment_index=fragment_index,
                    pivot=pivot,
                    shard=tuple(pivots),
                    est_cost=estimate_shard_cost(fragment.graph, pivots),
                )
            )
        if escalated:
            residue.append((ged, pivot, tuple(escalated)))
    units.sort(key=lambda unit: (unit.fragment_index, -unit.est_cost, unit.ged_position))
    return units, residue


def pack_units(units: Sequence[TaskUnit], batches: int) -> list[tuple[TaskUnit, ...]]:
    """Pack cost-ordered units into ≤ ``batches`` balanced batches.

    Greedy LPT: walk the units largest-first and drop each into the
    currently lightest batch.  One batch is one pool round trip, so
    this bounds dispatch overhead at a handful of futures per call
    while the cost balancing keeps the per-worker makespans close.
    Batches come back ordered heaviest-first (the dispatch order).
    """
    if batches < 1:
        raise ValueError(f"batches must be >= 1, got {batches}")
    bins: list[list[TaskUnit]] = [[] for _ in range(min(batches, len(units)))]
    loads = [0] * len(bins)
    for unit in sorted(units, key=lambda u: (-u.est_cost, u.ged_position, u.shard_index)):
        lightest = loads.index(min(loads))
        bins[lightest].append(unit)
        loads[lightest] += unit.est_cost
    packed = [tuple(batch) for batch in bins if batch]
    packed.sort(key=lambda batch: -sum(unit.est_cost for unit in batch))
    return packed


__all__ = [
    "FragmentUnit",
    "TaskUnit",
    "estimate_shard_cost",
    "pack_units",
    "plan_fragment_tasks",
    "plan_tasks",
]
