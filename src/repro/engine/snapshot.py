"""Compact broadcast snapshots of a graph (plus its index decision).

The old process backend pickled the full ``Graph`` object — every
``Node`` instance, every adjacency dict — once per (dependency, shard)
task.  A :class:`GraphSnapshot` is the engine's answer: the graph is
captured **once** as the flat integer columns of
:func:`repro.graph.io.graph_to_arrays` (several times smaller and far
cheaper to pickle than the object graph), shipped to each worker at pool
start, and rebuilt there exactly once.

The snapshot also records whether the coordinating process had a synced
:mod:`repro.indexing` bundle attached.  The index itself is *not*
serialized: rebuilding it from the restored graph is a single O(|G|)
scan (:func:`repro.indexing.indexed_graph.build_indexes`), cheaper than
shipping its dict-of-sets structure — this is the "broadcast the data,
rebuild the derived state" half of the fragment-per-worker model.
``version`` is the source graph's mutation counter at capture time; the
pool registry keys on it so a mutated graph never reuses stale workers.

**Compiled plans ride the broadcast.**  When the coordinator knows the
rule set at snapshot time it passes the patterns: each one's compiled
candidate pools (sorted interned slot arrays — a few integer columns,
nearly free to pickle) are embedded as ``plan_pools``.  Because the
:mod:`repro.matching.view` interning is canonical (sorted node ids),
the coordinator's slots are valid verbatim in every worker's rebuilt
view, so workers install ready-made
:class:`~repro.matching.plan.MatchPlan` objects at restore time instead
of re-deriving candidate sets per pattern.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.graph.fragments import Fragment, Fragmentation
from repro.graph.graph import Graph
from repro.graph.io import graph_from_arrays, graph_to_arrays
from repro.indexing.registry import attach_index, get_index


@dataclass(frozen=True)
class GraphSnapshot:
    """One graph, frozen into its broadcastable form."""

    arrays: dict[str, Any] = field(repr=False)
    version: int
    indexed: bool
    num_nodes: int
    num_edges: int
    #: Optional pre-compiled match plans: ``(pattern, {var: slot array})``
    #: pairs, installed into the worker's view at restore time.
    plan_pools: tuple = ()
    #: Optional Σ pattern sets to pre-compile into shared Σ-DAGs at
    #: restore time.  The DAG structure itself is not pickled — it is
    #: derived from the installed plans (whose candidate pools *did*
    #: ride the broadcast), so shipping the pattern tuples is enough to
    #: hand every worker a warm shared spine before its first task.
    sigma_sets: tuple = ()

    def restore(self) -> Graph:
        """Rebuild the graph (and, when ``indexed``, attach a fresh
        index; and any broadcast plans and Σ-DAGs) — once per worker,
        never per task."""
        from repro.matching.plan import install_plan
        from repro.matching.sigma_dag import compile_sigma
        from repro.telemetry import metrics as _metrics

        graph = graph_from_arrays(self.arrays)
        if self.indexed:
            attach_index(graph)
        for pattern, pools in self.plan_pools:
            install_plan(graph, pattern, pools)
        for patterns in self.sigma_sets:
            compile_sigma(graph, list(patterns))
            _metrics.sink().incr("matching.sigma.installs")
        return graph

    def payload(self) -> bytes:
        """The pickled broadcast payload (what pool initializers ship)."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)


def snapshot_graph(graph: Graph, *, ensure_index: bool = False, patterns=None) -> GraphSnapshot:
    """Capture ``graph`` for broadcast.

    ``indexed`` mirrors the coordinator's state: workers rebuild an
    index exactly when the coordinator had a synced one attached, so
    engine-pooled runs make the same index-vs-unindexed choice as the
    serial reference.  ``ensure_index=True`` attaches one first (the
    CLI ``engine`` command's default — building once and broadcasting
    is the engine's whole point).  ``patterns`` embeds each pattern's
    compiled candidate pools (compiling them coordinator-side if not
    already cached) so workers skip per-pattern candidate derivation —
    and records the deduplicated set as one ``sigma_sets`` entry, so
    each worker also pre-compiles the shared Σ-DAG over those plans at
    restore time.
    """
    from repro.matching.plan import compile_plan

    if ensure_index and get_index(graph) is None:
        attach_index(graph)
    plan_pools = []
    sigma_sets: tuple = ()
    if patterns:
        seen = set()
        for pattern in patterns:
            if pattern in seen:
                continue
            seen.add(pattern)
            plan = compile_plan(graph, pattern)
            plan_pools.append((pattern, dict(plan.pools_sorted)))
        if len(plan_pools) > 1:
            sigma_sets = (tuple(pattern for pattern, _ in plan_pools),)
    return GraphSnapshot(
        arrays=graph_to_arrays(graph),
        version=graph.version,
        indexed=get_index(graph) is not None,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        plan_pools=tuple(plan_pools),
        sigma_sets=sigma_sets,
    )


def snapshot_size(snapshot: GraphSnapshot) -> int:
    """Pickled payload size in bytes (CLI stats; compare with
    ``len(pickle.dumps(graph))`` to see what the flat encoding saves)."""
    return len(snapshot.payload())


# ----------------------------------------------------------------------
# Fragment-resident snapshots
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FragmentSnapshot:
    """One fragment, frozen into its broadcastable form.

    This is what a *fragment-resident* worker receives instead of the
    whole graph: the fragment's induced local subgraph (interior plus
    replicated border, flat-array encoded) and the metadata the local
    kernels need — the interior set and the border→owner annotations.
    Broadcasting k of these costs O(|G| + borders) total where the
    monolithic model cost O(k·|G|).
    """

    arrays: dict[str, Any] = field(repr=False)
    fragment_index: int
    interior: tuple[str, ...]
    border_owner: tuple[tuple[str, int], ...]
    version: int  # source graph version at capture time
    indexed: bool
    num_nodes: int
    num_edges: int

    def restore(self) -> Fragment:
        """Rebuild the fragment (attaching a local index when the
        coordinator's fragments ran indexed) — once per worker."""
        graph = graph_from_arrays(self.arrays)
        if self.indexed:
            attach_index(graph)
        return Fragment(
            self.fragment_index,
            graph,
            set(self.interior),
            dict(self.border_owner),
        )

    def payload(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)


def snapshot_fragments(
    fragmentation: Fragmentation, *, version: int | None = None
) -> list[FragmentSnapshot]:
    """Capture every fragment of a partition for per-worker broadcast.

    ``indexed`` mirrors the fragmentation's own index decision, so each
    worker rebuilds exactly the local index the coordinator's fragments
    carry.  ``version`` defaults to the partition's recorded source
    version.
    """
    captured = fragmentation.source_version if version is None else version
    return [
        FragmentSnapshot(
            arrays=graph_to_arrays(fragment.graph),
            fragment_index=fragment.index,
            interior=tuple(sorted(fragment.interior)),
            border_owner=tuple(sorted(fragment.border_owner.items())),
            version=captured,
            indexed=fragmentation.indexed,
            num_nodes=fragment.graph.num_nodes,
            num_edges=fragment.graph.num_edges,
        )
        for fragment in fragmentation.fragments
    ]


__all__ = [
    "FragmentSnapshot",
    "GraphSnapshot",
    "snapshot_fragments",
    "snapshot_graph",
    "snapshot_size",
]
