"""The persistent execution engine for heavy workloads.

The paper's parallel story (Section 9: "parallel scalable algorithms
... to warrant speedup with the increase of processors") presumes a
fragment-per-worker model: ship the graph to each worker **once**, then
stream small work units to warm workers.  The original process backend
instead re-pickled the whole object graph per (dependency, shard) task
and its workers ran unindexed — so real CPU parallelism lost to serial
on every workload.  This package is the fix, shared by validation,
discovery, and repair suggestion:

* :mod:`repro.engine.snapshot` — the broadcast format: the graph as
  flat interned-pool arrays (cheap to pickle), plus the coordinator's
  index-attachment decision; workers rebuild graph and index once;
* :mod:`repro.engine.pool` — pool lifecycle: a
  ``ProcessPoolExecutor`` whose initializer consumes the snapshot, a
  weak graph-keyed registry that keeps pools warm across calls, and
  invalidation keyed on the graph's mutation version;
* :mod:`repro.engine.scheduler` — the work queue: exact
  (dependency, shard) units referenced by ids, cost-estimated from the
  index's degree counters, ordered largest-first (LPT).

Consumers: ``parallel_find_violations`` routes its ``process`` backend
through a one-shot pool and offers a ``engine`` backend that keeps the
pool warm; :func:`repro.discovery.patterns.enumerate_candidate_patterns`
and :func:`repro.repair.suggest.suggest_repairs_batch` take a
``workers`` argument; ``repro.cli engine`` exposes the runtime
standalone.  Serial paths everywhere remain the deterministic
reference — every engine result is byte-identical to them.
"""

from repro.engine.pool import (
    EnginePool,
    FragmentPool,
    get_pool,
    pool_for,
    release_pool,
    resolve_workers,
    shutdown_pools,
)
from repro.engine.scheduler import (
    FragmentUnit,
    TaskUnit,
    estimate_shard_cost,
    plan_fragment_tasks,
    plan_tasks,
)
from repro.engine.snapshot import (
    FragmentSnapshot,
    GraphSnapshot,
    snapshot_fragments,
    snapshot_graph,
    snapshot_size,
)

__all__ = [
    "EnginePool",
    "FragmentPool",
    "FragmentSnapshot",
    "FragmentUnit",
    "GraphSnapshot",
    "TaskUnit",
    "estimate_shard_cost",
    "get_pool",
    "plan_fragment_tasks",
    "plan_tasks",
    "pool_for",
    "release_pool",
    "resolve_workers",
    "shutdown_pools",
    "snapshot_fragments",
    "snapshot_graph",
    "snapshot_size",
]
