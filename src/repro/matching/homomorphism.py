"""Homomorphism-based graph pattern matching (the paper's semantics).

A *match* of pattern ``Q[x̄]`` in graph ``G`` is a homomorphism ``h`` from
Q to G such that

* for each node ``u ∈ V_Q``:  ``L_Q(u) ≼ L(h(u))``, and
* for each edge ``(u, ι, u′) ∈ E_Q`` there is an edge
  ``(h(u), ι′, h(u′))`` in G with ``ι ≼ ι′``.

Homomorphisms are **not** required to be injective — Section 3 argues at
length that injective (subgraph-isomorphism) semantics is too strict for
GKeys; :mod:`repro.matching.isomorphism` implements the injective variant
only to reproduce that comparison.

The public entry point :func:`find_homomorphisms` is a thin
compatibility wrapper over the plan-compiled core of
:mod:`repro.matching.plan`: patterns are compiled once per (graph,
version, index-attachment) into a :class:`~repro.matching.plan.MatchPlan`
over an interned CSR :class:`~repro.matching.view.GraphView`, and every
call executes the cached plan.  Calls that bring their own candidate
pools (the streaming delta kernel's pattern-radius balls) run the same
executor view-free over those pools.  Either way the yielded stream —
``dict[variable, node_id]`` matches, deterministic order — is byte-
identical to the historical recursive enumerator, which is preserved
below as :func:`seed_find_homomorphisms` (the differential-test oracle
and benchmark baseline).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import PatternError
from repro.graph.graph import Graph
from repro.matching.candidates import candidate_sets, variable_order
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern

Match = dict[str, str]


def find_homomorphisms(
    pattern: Pattern,
    graph: Graph,
    fixed: Mapping[str, str] | None = None,
    limit: int | None = None,
    restrict: Mapping[str, "set[str] | frozenset[str]"] | None = None,
    candidates: Mapping[str, "set[str]"] | None = None,
) -> Iterator[Match]:
    """Enumerate matches of ``pattern`` in ``graph``.

    Parameters
    ----------
    fixed:
        optional partial assignment ``variable -> node id`` that every
        reported match must extend (used e.g. to ask "is there a match
        sending x to this node?").
    limit:
        stop after this many matches.
    restrict:
        optional ``variable -> allowed node ids`` pools intersected into
        the candidate sets before search.  The caller guarantees the
        pools over-approximate the matches it cares about — the
        index-aware validation layer derives them from X-literals via
        the attribute inverted index, which preserves the violation set
        exactly.
    candidates:
        optional precomputed :func:`~repro.matching.candidates.candidate_sets`
        result for exactly this (pattern, graph) pair, as produced by a
        caller that scopes the search itself (the streaming delta
        kernel's pattern-radius balls).  The mapping is not mutated,
        and the search runs view-free over exactly these pools.
    """
    from repro.matching.plan import compile_plan, execute_over_pools

    if candidates is not None:
        yield from execute_over_pools(
            pattern, graph, candidates, fixed=fixed, restrict=restrict, limit=limit
        )
        return
    plan = compile_plan(graph, pattern)
    yield from plan.matches(fixed=fixed, restrict=restrict, limit=limit)


def seed_find_homomorphisms(
    pattern: Pattern,
    graph: Graph,
    fixed: Mapping[str, str] | None = None,
    limit: int | None = None,
    restrict: Mapping[str, "set[str] | frozenset[str]"] | None = None,
    candidates: Mapping[str, "set[str]"] | None = None,
) -> Iterator[Match]:
    """The seed recursive enumerator (reference semantics).

    Kept verbatim — one fix aside: candidate pools are sorted **once**
    before the search instead of re-sorted on every entry into the same
    depth across branches — as the oracle the plan executor must match
    byte for byte, and as the baseline the matching perf gate measures
    against.  Not on any production path.
    """
    fixed = dict(fixed) if fixed else {}
    for variable, node_id in fixed.items():
        if not pattern.has_variable(variable):
            raise PatternError(f"fixed variable {variable!r} is not in the pattern")
        if not graph.has_node(node_id):
            raise PatternError(f"fixed image {node_id!r} is not a node of the graph")

    candidates = dict(candidates) if candidates is not None else candidate_sets(pattern, graph)
    if restrict:
        for variable, pool in restrict.items():
            if not pattern.has_variable(variable):
                raise PatternError(f"restricted variable {variable!r} is not in the pattern")
            candidates[variable] = candidates[variable] & pool
    for variable, node_id in fixed.items():
        if node_id not in candidates[variable]:
            return  # The pinned node can never host this variable.
        candidates[variable] = {node_id}

    order = variable_order(pattern, candidates)
    # Sort each pool exactly once: the per-depth enumeration order is a
    # property of the pool, not of the branch that reaches the depth.
    sorted_pools = {variable: sorted(pool) for variable, pool in candidates.items()}
    assignment: Match = {}
    emitted = 0

    def consistent(variable: str, node_id: str) -> bool:
        """Check every pattern edge between ``variable`` and assigned vars."""
        for edge_label, target in pattern.out_edges(variable):
            image = node_id if target == variable else assignment.get(target)
            if image is None:
                continue
            if edge_label == WILDCARD:
                if image not in graph.successors(node_id):
                    return False
            elif image not in graph.successors(node_id, edge_label):
                return False
        for edge_label, source in pattern.in_edges(variable):
            if source == variable:
                continue  # self-loop already handled via out_edges
            image = assignment.get(source)
            if image is None:
                continue
            if edge_label == WILDCARD:
                if node_id not in graph.successors(image):
                    return False
            elif node_id not in graph.successors(image, edge_label):
                return False
        return True

    def backtrack(depth: int) -> Iterator[Match]:
        nonlocal emitted
        if depth == len(order):
            emitted += 1
            yield dict(assignment)
            return
        variable = order[depth]
        for node_id in sorted_pools[variable]:
            if consistent(variable, node_id):
                assignment[variable] = node_id
                yield from backtrack(depth + 1)
                del assignment[variable]
                if limit is not None and emitted >= limit:
                    return

    yield from backtrack(0)


def find_match(
    pattern: Pattern, graph: Graph, fixed: Mapping[str, str] | None = None
) -> Match | None:
    """The first match, or ``None`` if the pattern has no match."""
    for match in find_homomorphisms(pattern, graph, fixed=fixed, limit=1):
        return match
    return None


def has_match(pattern: Pattern, graph: Graph, fixed: Mapping[str, str] | None = None) -> bool:
    return find_match(pattern, graph, fixed=fixed) is not None


def count_matches(pattern: Pattern, graph: Graph) -> int:
    return sum(1 for _ in find_homomorphisms(pattern, graph))


def is_homomorphism(pattern: Pattern, graph: Graph, mapping: Mapping[str, str]) -> bool:
    """Verify that an explicit mapping is a match (used by checkers)."""
    from repro.patterns.labels import matches as label_matches

    if set(mapping) != set(pattern.variables):
        return False
    for variable in pattern.variables:
        node_id = mapping[variable]
        if not graph.has_node(node_id):
            return False
        if not label_matches(pattern.label_of(variable), graph.node(node_id).label):
            return False
    for source, edge_label, target in pattern.edges:
        h_source, h_target = mapping[source], mapping[target]
        if edge_label == WILDCARD:
            if h_target not in graph.successors(h_source):
                return False
        elif h_target not in graph.successors(h_source, edge_label):
            return False
    return True
