"""Pattern matching: homomorphism semantics (Section 2/3) + injective variant.

The hot path is plan-compiled: :func:`compile_plan` turns a pattern
into a :class:`MatchPlan` over an interned CSR :class:`GraphView`
(cached per graph version), and :func:`find_homomorphisms` is the thin
compatibility wrapper every consumer already speaks.
"""

from repro.matching.candidates import candidate_sets, order_for_sizes, variable_order
from repro.matching.homomorphism import (
    Match,
    count_matches,
    find_homomorphisms,
    find_match,
    has_match,
    is_homomorphism,
    seed_find_homomorphisms,
)
from repro.matching.locality import (
    ball_closes_locally,
    ball_levels,
    pattern_distances,
    pattern_radius,
    pivot_radius,
    split_local_pivots,
)
from repro.matching.isomorphism import (
    count_injective_matches,
    find_injective_matches,
    has_injective_match,
)
from repro.matching.plan import MatchPlan, compile_plan, execute_over_pools
from repro.matching.sigma_dag import SigmaDag, SigmaQuery, compile_sigma, count_sigma
from repro.matching.view import GraphView, get_view

__all__ = [
    "GraphView",
    "Match",
    "MatchPlan",
    "SigmaDag",
    "SigmaQuery",
    "ball_closes_locally",
    "ball_levels",
    "candidate_sets",
    "compile_plan",
    "compile_sigma",
    "count_injective_matches",
    "count_matches",
    "count_sigma",
    "execute_over_pools",
    "find_homomorphisms",
    "find_injective_matches",
    "find_match",
    "get_view",
    "has_injective_match",
    "has_match",
    "is_homomorphism",
    "order_for_sizes",
    "pattern_distances",
    "pattern_radius",
    "pivot_radius",
    "seed_find_homomorphisms",
    "split_local_pivots",
    "variable_order",
]
