"""Pattern matching: homomorphism semantics (Section 2/3) + injective variant."""

from repro.matching.candidates import candidate_sets, variable_order
from repro.matching.homomorphism import (
    Match,
    count_matches,
    find_homomorphisms,
    find_match,
    has_match,
    is_homomorphism,
)
from repro.matching.isomorphism import (
    count_injective_matches,
    find_injective_matches,
    has_injective_match,
)

__all__ = [
    "Match",
    "candidate_sets",
    "count_injective_matches",
    "count_matches",
    "find_homomorphisms",
    "find_injective_matches",
    "find_match",
    "has_injective_match",
    "has_match",
    "is_homomorphism",
    "variable_order",
]
