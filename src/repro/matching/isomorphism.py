"""Injective (subgraph-isomorphism style) pattern matching.

The prior work the paper unifies — GFDs of [23] and keys of [19] — used
*subgraph isomorphism* semantics: distinct pattern variables must map to
distinct nodes.  Section 3 shows this is too strict to express recursive
keys (GKey ψ3 "catches no violations if it is interpreted under subgraph
isomorphism").  This module implements the injective semantics solely so
that comparison can be reproduced (tests, ``examples/entity_resolution``
and ``benchmarks/bench_sec3_semantics``); every reasoning procedure in
the library uses the homomorphism matcher.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.graph.graph import Graph
from repro.matching.homomorphism import Match, find_homomorphisms
from repro.patterns.pattern import Pattern


def find_injective_matches(
    pattern: Pattern,
    graph: Graph,
    fixed: Mapping[str, str] | None = None,
    limit: int | None = None,
) -> Iterator[Match]:
    """Enumerate injective matches (distinct variables, distinct nodes).

    Implemented as a filter over the homomorphism enumerator: the
    pattern sizes in this library are small (the paper cites 98% of
    real-life patterns having ≤ 4 nodes), so the simple formulation is
    both obviously correct and fast enough.
    """
    emitted = 0
    for match in find_homomorphisms(pattern, graph, fixed=fixed):
        if len(set(match.values())) == len(match):
            yield match
            emitted += 1
            if limit is not None and emitted >= limit:
                return


def has_injective_match(pattern: Pattern, graph: Graph) -> bool:
    for _ in find_injective_matches(pattern, graph, limit=1):
        return True
    return False


def count_injective_matches(pattern: Pattern, graph: Graph) -> int:
    return sum(1 for _ in find_injective_matches(pattern, graph))
