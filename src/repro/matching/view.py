"""Interned CSR graph views — the shared substrate of compiled matching.

A :class:`GraphView` freezes one ``(graph, version)`` into the form the
plan executor (:mod:`repro.matching.plan`) wants to search over:

* **dense interned node ids** — every node id string gets one integer
  slot, assigned in *canonical* (sorted-by-string) order.  Canonical
  interning makes integer order coincide with string order, so the plan
  executor's ascending-slot enumeration reproduces the seed matcher's
  ``sorted(candidates)`` byte for byte — and it makes slots portable:
  two processes interning the same node set (the engine coordinator and
  its snapshot-rebuilt workers) assign identical slots, which is what
  lets compiled candidate pools ride the broadcast payload;
* **interned node labels** — a small label pool plus one label slot per
  node (``labels`` / ``label_of``), and the per-label candidate pools
  as sorted slot tuples;
* **CSR adjacency per edge label** — for each direction and edge label,
  an ``indptr``/``indices`` pair of ``array('I')`` columns (rows sorted
  ascending), plus a deduplicated *any-label* CSR for wildcard pattern
  edges.  Rows probed during search are materialized once into a
  ``frozenset`` cache, so constraint checks are C-speed set
  intersections instead of per-call successor-set copies.

Views are cached in a process-wide weak registry keyed by graph
*identity* (the same scheme as :mod:`repro.indexing.registry`) and
guarded by the graph's mutation counter: any mutation retires the view
— and with it every compiled plan it holds — so plan-cache
invalidation is exactly "the graph version moved".
"""

from __future__ import annotations

from array import array

from repro.graph.graph import Graph
from repro.utils.registry import WeakIdRegistry

#: One CSR direction: ``label -> (indptr, indices)`` (plus the any-label
#: union under the key ``None``).
CsrColumns = tuple[array, array]


class GraphView:
    """One graph, frozen into interned flat-array form (build with
    :func:`build_view`; instances are immutable once built)."""

    __slots__ = (
        "version",
        "num_nodes",
        "num_edges",
        "node_of",
        "slot_of",
        "labels",
        "label_of",
        "pools_by_label",
        "out_csr",
        "in_csr",
        "_rows",
        "plans",
        "plan_compiles",
        "plan_installs",
        "sigma_dags",
        "sigma_compiles",
        "cost_profile",
    )

    def __init__(self) -> None:
        self.version: int = -1
        self.num_nodes: int = 0
        self.num_edges: int = 0
        self.node_of: tuple[str, ...] = ()  # slot -> node id (canonical order)
        self.slot_of: dict[str, int] = {}  # node id -> slot
        self.labels: tuple[str, ...] = ()  # interned node-label pool
        self.label_of: array = array("I")  # slot -> index into ``labels``
        self.pools_by_label: dict[str, tuple[int, ...]] = {}
        self.out_csr: dict[str | None, CsrColumns] = {}
        self.in_csr: dict[str | None, CsrColumns] = {}
        self._rows: dict[tuple[bool, str | None, int], frozenset[int]] = {}
        # Compiled-plan cache, keyed (pattern, index-attached?).  Plans
        # die with the view: a graph mutation replaces the view, so no
        # per-plan invalidation protocol is needed.
        self.plans: dict[tuple[object, bool], object] = {}
        self.plan_compiles: int = 0  # plans compiled from candidate sets
        self.plan_installs: int = 0  # plans installed from a broadcast payload
        # Σ-DAG cache, keyed (deduped pattern tuple, index-attached?).
        # Same lifetime rule as ``plans``: dies with the view.
        self.sigma_dags: dict[tuple[tuple[object, ...], bool], object] = {}
        self.sigma_compiles: int = 0  # Σ-DAGs compiled against this view
        # The cost model's selectivity statistics, computed lazily once
        # per view (they depend only on (graph, version) — the indexed
        # and edge-scan derivations agree on every count).
        self.cost_profile: object | None = None

    # ------------------------------------------------------------------
    # Row access (the executor's only adjacency probe)
    # ------------------------------------------------------------------
    def row_set(self, out_dir: bool, label: str | None, slot: int) -> frozenset[int]:
        """The adjacency row as a frozenset of slots.

        ``out_dir`` selects successors vs predecessors; ``label=None``
        is the wildcard (any-label, deduplicated) row.  Rows are built
        lazily from the CSR columns and cached — the search only pays
        for the neighborhoods it actually visits.
        """
        key = (out_dir, label, slot)
        row = self._rows.get(key)
        if row is None:
            csr = (self.out_csr if out_dir else self.in_csr).get(label)
            if csr is None:
                row = frozenset()
            else:
                indptr, indices = csr
                row = frozenset(indices[indptr[slot] : indptr[slot + 1]])
            self._rows[key] = row
        return row

    def degree(self, out_dir: bool, label: str | None, slot: int) -> int:
        """Per-label degree straight from the CSR index pointers."""
        csr = (self.out_csr if out_dir else self.in_csr).get(label)
        if csr is None:
            return 0
        indptr = csr[0]
        return indptr[slot + 1] - indptr[slot]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphView(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"v={self.version}, plans={len(self.plans)})"
        )


def _to_csr(n: int, rows: dict[int, list[int]]) -> CsrColumns:
    """Pack ``slot -> sorted neighbor list`` into indptr/indices columns."""
    indptr = array("I", [0])
    indices = array("I")
    for slot in range(n):
        row = rows.get(slot)
        if row:
            indices.extend(row)
        indptr.append(len(indices))
    return indptr, indices


def build_view(graph: Graph) -> GraphView:
    """Intern ``graph`` into a fresh :class:`GraphView` (one node scan
    plus one edge scan; rows sorted once at build)."""
    view = GraphView()
    view.version = graph.version
    order = sorted(graph.node_ids)
    view.num_nodes = len(order)
    view.node_of = tuple(order)
    slot_of = {node_id: slot for slot, node_id in enumerate(order)}
    view.slot_of = slot_of

    label_slots: dict[str, int] = {}
    label_of = array("I")
    pools: dict[str, list[int]] = {}
    for slot, node_id in enumerate(order):
        label = graph.node(node_id).label
        label_slot = label_slots.setdefault(label, len(label_slots))
        label_of.append(label_slot)
        pools.setdefault(label, []).append(slot)
    view.labels = tuple(label_slots)
    view.label_of = label_of
    # Pools appended in ascending slot order — already sorted.
    view.pools_by_label = {label: tuple(slots) for label, slots in pools.items()}

    out_rows: dict[str, dict[int, list[int]]] = {}
    in_rows: dict[str, dict[int, list[int]]] = {}
    any_out: dict[int, list[int]] = {}
    any_in: dict[int, list[int]] = {}
    edges = sorted(graph.edges)  # (source, label, target) ascending
    view.num_edges = len(edges)
    for source, label, target in edges:
        s, t = slot_of[source], slot_of[target]
        out_rows.setdefault(label, {}).setdefault(s, []).append(t)
        in_rows.setdefault(label, {}).setdefault(t, []).append(s)
        any_out.setdefault(s, []).append(t)
        any_in.setdefault(t, []).append(s)
    n = view.num_nodes
    # Per-(label, node) rows land pre-sorted: canonical interning makes
    # slot order string order, and the ascending (source, label, target)
    # edge sweep therefore appends each out-row's targets and each
    # in-row's sources in ascending slot order.
    for label, rows in out_rows.items():
        view.out_csr[label] = _to_csr(n, rows)
    for label, rows in in_rows.items():
        view.in_csr[label] = _to_csr(n, rows)
    # Any-label union rows (wildcard pattern edges) interleave labels,
    # so they do need a sort — and a dedup (parallel edges).
    for rows, bucket in ((any_out, view.out_csr), (any_in, view.in_csr)):
        deduped = {slot: sorted(set(row)) for slot, row in rows.items()}
        bucket[None] = _to_csr(n, deduped)
    return view


# Identity-keyed weak registry (see repro.utils.registry): probes are
# O(1) integer lookups, entries die with their graphs, and a view holds
# no strong reference back to its graph.
_views: WeakIdRegistry = WeakIdRegistry()


def get_view(graph: Graph) -> GraphView:
    """The current view for ``graph``, rebuilding on version mismatch."""
    view = _views.get(graph)
    if view is None or view.version != graph.version:
        view = build_view(graph)
        _views.set(graph, view)
    return view


def peek_view(graph: Graph) -> GraphView | None:
    """The registered view if it is still in sync, else ``None`` (tests
    and stats; never builds)."""
    view = _views.get(graph)
    if view is None or view.version != graph.version:
        return None
    return view


__all__ = ["GraphView", "build_view", "get_view", "peek_view"]
