"""Plan-compiled pattern matching: compile once, execute many.

The seed matcher re-derived everything per call: candidate sets from
scratch, ``sorted(candidates[variable])`` inside every backtracking
frame, successor-set copies for every edge check.  This module splits
that work into three reusable layers:

* a **pattern program** — per variable-order step list (scan /
  extend-forward / extend-backward / edge-check / self-loop-check),
  memoized per ``(pattern, order)`` since patterns are immutable and
  shared across dependencies;
* a **:class:`MatchPlan`** — the program bound to one
  :class:`~repro.matching.view.GraphView`: candidate pools materialized
  once as sorted interned slot tuples (plus frozensets for C-speed
  intersection), the default variable order chosen by the cost model,
  and per-step cost estimates for ``explain``;
* an **iterative executor** (:func:`_execute`) — an explicit-stack
  enumerator whose per-depth candidates come from intersecting the
  variable's pool with the adjacency rows of already-bound neighbors
  (smallest operand first), instead of scanning the pool and probing
  every edge per candidate.

**Byte-identity.**  The executor yields exactly the seed matcher's
stream: canonical interning makes ascending slot order equal ascending
node-id order, the variable order is the same cost ranking the seed
used (candidate cardinality, then pattern degree, then name — see
:func:`repro.matching.candidates.order_for_sizes`), and row-membership
is equivalent to the seed's per-candidate edge checks.  The
differential suite (``tests/matching/test_plan_equivalence.py``)
asserts this byte for byte, with and without an index, under ``fixed``
/ ``restrict`` / ``limit``.

**Cost model.**  Pool cardinalities come from the same index-backed
pruner the seed consulted; extension fan-outs come from
:func:`repro.indexing.stats.matching_cost_profile` (per-label degree
counters when an index is attached, one edge scan otherwise).  Because
the emitted order is part of the public contract, the cost model ranks
variables with the seed's own key; its estimates additionally annotate
every step for ``cli explain`` and order nothing that could change the
stream.

Runtime parameters (``fixed`` / ``restrict``) shrink candidate pools
and therefore the order: :meth:`MatchPlan.matches` re-ranks variables
from the *effective* pool sizes — a cheap O(k²) pass — while reusing
the expensive artifacts (interning, CSR rows, materialized pools).
``restrict`` is the plan vocabulary's **attr-filter** step: the
validation layer derives those pools from X-literals via the attribute
inverted index and the executor intersects them in before the search.

:func:`execute_over_pools` is the view-free twin for callers that bring
their own candidate pools over a *mutating* graph (the streaming delta
kernel's pattern-radius balls): same program cache, same executor, but
adjacency rows come straight from the graph's internal per-label sets,
so no O(|G|) view build is paid per batch.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import PatternError
from repro.graph.graph import Graph
from repro.indexing.registry import get_index
from repro.indexing.stats import MatchCostProfile, matching_cost_profile
from repro.matching.candidates import candidate_sets, order_for_sizes
from repro.matching.view import GraphView, get_view
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern
from repro.telemetry import metrics as _metrics

Match = dict[str, str]

_EMPTY: tuple = ()


# ----------------------------------------------------------------------
# Pattern programs (graph-independent, memoized per (pattern, order))
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EdgeCheck:
    """One membership probe against a bound variable's adjacency row.

    The candidate for this step must lie in the ``out_dir`` row (True =
    successors, False = predecessors) of the image bound at stack depth
    ``depth``.  ``label=None`` is the wildcard row.  ``via`` names the
    bound variable (explain output only).
    """

    out_dir: bool
    label: str | None
    depth: int
    via: str


@dataclass(frozen=True)
class PlanStep:
    """One executor step: bind ``variable`` at its depth.

    ``checks`` empty — a **scan** over the variable's pool;
    ``checks`` non-empty — an **extend** (forward and/or backward): the
    pool is intersected with every check's adjacency row.
    ``self_loops`` lists the labels of ``(v, ι, v)`` pattern edges,
    verified per candidate against its own successor row.
    """

    variable: str
    checks: tuple[EdgeCheck, ...]
    self_loops: tuple[str | None, ...]

    @property
    def kind(self) -> str:
        return "extend" if self.checks else "scan"


@lru_cache(maxsize=4096)
def _steps_for(pattern: Pattern, order: tuple[str, ...]) -> tuple[PlanStep, ...]:
    """The step list for one binding order (cached — this is the plan
    cache the streaming delta kernel hits once per dependency, not once
    per pinned node)."""
    depth_of = {variable: depth for depth, variable in enumerate(order)}
    steps: list[PlanStep] = []
    for depth, variable in enumerate(order):
        checks: list[EdgeCheck] = []
        loops: list[str | None] = []
        for label, target in pattern.out_edges(variable):
            wire = None if label == WILDCARD else label
            if target == variable:
                loops.append(wire)
            elif depth_of[target] < depth:
                # Edge v -> t with t bound: candidate ∈ pred(image_t).
                checks.append(EdgeCheck(False, wire, depth_of[target], target))
        for label, source in pattern.in_edges(variable):
            if source == variable:
                continue  # self-loop already covered via out_edges
            if depth_of[source] < depth:
                # Edge s -> v with s bound: candidate ∈ succ(image_s).
                wire = None if label == WILDCARD else label
                checks.append(EdgeCheck(True, wire, depth_of[source], source))
        steps.append(PlanStep(variable, tuple(checks), tuple(loops)))
    return tuple(steps)


# ----------------------------------------------------------------------
# The iterative executor (shared by view mode and pool mode)
# ----------------------------------------------------------------------


class _ExecObserver:
    """Per-run execution accounting, created only when telemetry is on.

    Accumulates locally (plain ints and one local histogram — no sink
    traffic inside the enumeration) and flushes once per run: global
    counters ``plan.frames_expanded`` / ``plan.candidates_produced`` /
    ``plan.intersections``, the ``plan.frame_candidates`` size
    histogram, and — for view-bound plans — the plan's own ``observed``
    per-variable totals that :meth:`MatchPlan.explain` renders next to
    its estimates.
    """

    __slots__ = ("per_var", "sizes", "target", "_counts", "_bounds")

    def __init__(self, target: dict | None = None):
        self.per_var: dict[str, list[int]] = {}
        self.sizes = _metrics.Histogram(_metrics.DEFAULT_BOUNDS)
        self.target = target
        # Hot-path locals: only the bucket increment happens per frame;
        # the histogram's sum/count are derivable from the per-variable
        # totals and patched in at flush time.
        self._counts = self.sizes.counts
        self._bounds = self.sizes.bounds

    def frame(self, variable: str, produced: int, probes: int) -> None:
        entry = self.per_var.get(variable)
        if entry is None:
            entry = self.per_var[variable] = [0, 0, 0]
        entry[0] += 1
        entry[1] += produced
        entry[2] += probes
        self._counts[bisect_left(self._bounds, produced)] += 1

    def flush(self, sink) -> None:
        per_var = self.per_var
        if not per_var:
            return
        frames = sum(entry[0] for entry in per_var.values())
        produced = sum(e[1] for e in per_var.values())
        sink.incr("plan.frames_expanded", frames)
        sink.incr("plan.candidates_produced", produced)
        sink.incr("plan.intersections", sum(e[2] for e in per_var.values()))
        self.sizes.count = frames
        self.sizes.sum = produced
        sink.merge_histogram("plan.frame_candidates", self.sizes)
        if self.target is not None:
            for variable, entry in per_var.items():
                totals = self.target.get(variable)
                if totals is None:
                    self.target[variable] = list(entry)
                else:
                    totals[0] += entry[0]
                    totals[1] += entry[1]
                    totals[2] += entry[2]


def _execute(order, steps, pools_sorted, pools_set, row_set, to_id, limit, observer=None):
    """Enumerate matches with an explicit stack.

    ``pools_sorted`` / ``pools_set`` hold each variable's effective
    candidate pool (ascending sequence + set); ``row_set(out_dir,
    label, image)`` returns an adjacency row as a set; ``to_id`` maps
    executor-space images back to node-id strings.  Yields matches in
    ascending lexicographic order of the binding order — the seed
    matcher's exact stream.
    """
    k = len(order)
    last = k - 1
    emitted = 0
    assign = [0] * k

    def candidates_at(depth: int):
        step = steps[depth]
        checks = step.checks
        if checks:
            operands = [pools_set[step.variable]]
            for check in checks:
                row = row_set(check.out_dir, check.label, assign[check.depth])
                if not row:
                    if observer is not None:
                        # len(operands) == adjacency rows probed so far
                        # (the pool slot stands in for the failing row).
                        observer.frame(step.variable, 0, len(operands))
                    return _EMPTY
                operands.append(row)
            operands.sort(key=len)
            found = operands[0].intersection(*operands[1:])
            if step.self_loops:
                loops = step.self_loops
                found = [
                    image
                    for image in found
                    if all(image in row_set(True, wire, image) for wire in loops)
                ]
            result = sorted(found)
            if observer is not None:
                observer.frame(step.variable, len(result), len(checks))
            return result
        pool = pools_sorted[step.variable]
        if step.self_loops:
            loops = step.self_loops
            result = [
                image
                for image in pool
                if all(image in row_set(True, wire, image) for wire in loops)
            ]
            if observer is not None:
                observer.frame(step.variable, len(result), 0)
            return result
        if observer is not None:
            observer.frame(step.variable, len(pool), 0)
        return pool

    stack = [iter(candidates_at(0))]
    while stack:
        depth = len(stack) - 1
        frame = stack[-1]
        if depth == last:
            for image in frame:
                assign[depth] = image
                emitted += 1
                yield {order[d]: to_id(assign[d]) for d in range(k)}
                if limit is not None and emitted >= limit:
                    return
            stack.pop()
        else:
            descended = False
            for image in frame:
                assign[depth] = image
                below = candidates_at(depth + 1)
                if below:
                    stack.append(iter(below))
                    descended = True
                    break
                # Fruitless descent: the seed recursed into an empty
                # frame, returned, and *then* checked the limit — which
                # matters for the degenerate limit<=0 case (0 >= limit
                # stops the whole enumeration there, before any yield).
                if limit is not None and emitted >= limit:
                    return
            if not descended:
                stack.pop()


# ----------------------------------------------------------------------
# Compiled plans (pattern program × graph view × materialized pools)
# ----------------------------------------------------------------------


class MatchPlan:
    """A pattern compiled against one graph view.

    Build via :func:`compile_plan` (cached per view) — or, on engine
    workers, via :func:`install_plan` from a broadcast payload.
    """

    __slots__ = (
        "pattern",
        "view",
        "indexed",
        "pools_sorted",
        "pools_set",
        "order",
        "steps",
        "profile",
        "observed",
    )

    def __init__(
        self,
        pattern: Pattern,
        view: GraphView,
        indexed: bool,
        pool_slots: Mapping[str, "list[int] | tuple[int, ...]"],
        profile: MatchCostProfile,
    ):
        self.pattern = pattern
        self.view = view
        self.indexed = indexed
        self.pools_sorted: dict[str, tuple[int, ...]] = {}
        self.pools_set: dict[str, frozenset[int]] = {}
        for variable in pattern.variables:
            slots = tuple(pool_slots[variable])
            self.pools_sorted[variable] = slots
            self.pools_set[variable] = frozenset(slots)
        sizes = {v: len(self.pools_sorted[v]) for v in pattern.variables}
        self.order: tuple[str, ...] = tuple(order_for_sizes(pattern, sizes))
        self.steps: tuple[PlanStep, ...] = _steps_for(pattern, self.order)
        self.profile = profile
        #: Observed execution totals per variable — ``[frames,
        #: candidates, probes]`` — accumulated across telemetry-enabled
        #: runs of this plan (``explain(observed=True)`` renders them).
        self.observed: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    def prepare(
        self,
        fixed: Mapping[str, str] | None = None,
        restrict: Mapping[str, "set[str] | frozenset[str]"] | None = None,
    ) -> "tuple[tuple[str, ...], tuple[PlanStep, ...], dict, dict] | None":
        """The effective execution state for one run.

        Applies ``fixed`` / ``restrict`` exactly as :meth:`matches`
        (slot translation, re-ranking from effective pool sizes) and
        returns ``(order, steps, pools_sorted, pools_set)`` — or
        ``None`` when a pinned image cannot host its variable, i.e. the
        stream is empty.  Shared by :meth:`matches` and the Σ-DAG
        executor so both run from byte-identical state.
        """
        pattern = self.pattern
        view = self.view
        fixed_slots: dict[str, int] = {}
        if fixed:
            for variable, node_id in fixed.items():
                if not pattern.has_variable(variable):
                    raise PatternError(f"fixed variable {variable!r} is not in the pattern")
                slot = view.slot_of.get(node_id)
                if slot is None:
                    raise PatternError(f"fixed image {node_id!r} is not a node of the graph")
                fixed_slots[variable] = slot
        if not fixed_slots and not restrict:
            return self.order, self.steps, self.pools_sorted, self.pools_set
        pools_set = dict(self.pools_set)
        if restrict:
            slot_of, node_of = view.slot_of, view.node_of
            for variable, pool in restrict.items():
                if not pattern.has_variable(variable):
                    raise PatternError(
                        f"restricted variable {variable!r} is not in the pattern"
                    )
                base = pools_set[variable]
                if len(pool) < len(base):
                    pools_set[variable] = frozenset(
                        slot
                        for node_id in pool
                        if (slot := slot_of.get(node_id)) is not None and slot in base
                    )
                else:
                    pools_set[variable] = frozenset(
                        slot for slot in base if node_of[slot] in pool
                    )
        for variable, slot in fixed_slots.items():
            if slot not in pools_set[variable]:
                return None  # The pinned node can never host this variable.
            pools_set[variable] = frozenset((slot,))
        sizes = {v: len(pools_set[v]) for v in pattern.variables}
        order = tuple(order_for_sizes(pattern, sizes))
        steps = _steps_for(pattern, order)
        pools_sorted = {
            v: self.pools_sorted[v]
            if pools_set[v] is self.pools_set[v]
            else tuple(sorted(pools_set[v]))
            for v in pattern.variables
        }
        return order, steps, pools_sorted, pools_set

    def matches(
        self,
        fixed: Mapping[str, str] | None = None,
        restrict: Mapping[str, "set[str] | frozenset[str]"] | None = None,
        limit: int | None = None,
    ) -> Iterator[Match]:
        """Enumerate matches; same contract and stream as the seed
        matcher's ``fixed`` / ``restrict`` / ``limit`` parameters."""
        view = self.view
        prepared = self.prepare(fixed, restrict)
        if prepared is None:
            return
        order, steps, pools_sorted, pools_set = prepared
        sink = _metrics.sink()
        if not sink.enabled:
            yield from _execute(
                order,
                steps,
                pools_sorted,
                pools_set,
                view.row_set,
                view.node_of.__getitem__,
                limit,
            )
            return
        observer = _ExecObserver(self.observed)
        try:
            yield from _execute(
                order,
                steps,
                pools_sorted,
                pools_set,
                view.row_set,
                view.node_of.__getitem__,
                limit,
                observer,
            )
        finally:
            observer.flush(_metrics.sink())

    # ------------------------------------------------------------------
    def step_cost(self, depth: int) -> float:
        """Estimated candidates examined at one step (explain output)."""
        step = self.steps[depth]
        pool = len(self.pools_sorted[step.variable])
        if not step.checks:
            return float(pool)
        fanouts = (self.profile.fanout(check.label) for check in step.checks)
        return min([float(pool)] + [f for f in fanouts if f is not None])

    def explain(self, observed: bool = False) -> str:
        """A stable, human-readable rendering of the compiled plan.

        With ``observed=True``, each step additionally shows the actual
        execution totals telemetry-enabled runs accumulated — frames
        expanded, candidates produced (and the per-frame mean, directly
        comparable to the ``est. ~X/frame`` estimate), and adjacency
        rows probed.  The default rendering is byte-identical to what it
        was before observation existed.
        """
        view = self.view
        lines = [
            f"match plan for Q[{', '.join(self.pattern.variables)}] — "
            f"view: {view.num_nodes} node(s), {view.num_edges} edge(s), "
            f"{'indexed' if self.indexed else 'unindexed'} pools"
        ]
        for depth, step in enumerate(self.steps):
            pool = len(self.pools_sorted[step.variable])
            label = self.pattern.label_of(step.variable)
            head = (
                f"  step {depth + 1}: {step.kind} {step.variable} "
                f"[label {label}] — pool {pool} candidate(s)"
            )
            if step.checks:
                probes = ", ".join(
                    (
                        f"{step.variable} -[{check.label or '_'}]-> {check.via}"
                        if not check.out_dir
                        else f"{check.via} -[{check.label or '_'}]-> {step.variable}"
                    )
                    for check in step.checks
                )
                head += f" ∩ {{{probes}}}"
            if step.self_loops:
                loops = ", ".join(wire or "_" for wire in step.self_loops)
                head += f"; self-loop check({loops})"
            head += f"  [est. ~{self.step_cost(depth):.1f}/frame]"
            if observed:
                totals = self.observed.get(step.variable)
                if totals is None:
                    head += "  [obs. not executed]"
                else:
                    frames, produced, probed = totals
                    mean = produced / frames if frames else 0.0
                    head += (
                        f"  [obs. {frames} frame(s), ~{mean:.1f}/frame, "
                        f"{probed} row probe(s)]"
                    )
            lines.append(head)
        if observed and not self.observed:
            lines.append(
                "  (no observed execution — run with telemetry enabled first)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchPlan({list(self.pattern.variables)!r}, order={list(self.order)!r}, "
            f"indexed={self.indexed})"
        )


def compile_plan(graph: Graph, pattern: Pattern) -> MatchPlan:
    """The compiled plan for ``(pattern, graph)`` — cached on the
    graph's current view, keyed by index attachment, and invalidated
    wholesale when the graph version moves (the view is replaced)."""
    view = get_view(graph)
    indexed = get_index(graph) is not None
    key = (pattern, indexed)
    plan = view.plans.get(key)
    if plan is None:
        pools = candidate_sets(pattern, graph)
        slot_of = view.slot_of
        pool_slots = {
            variable: sorted(slot_of[node_id] for node_id in pool)
            for variable, pool in pools.items()
        }
        plan = MatchPlan(pattern, view, indexed, pool_slots, _view_profile(view, graph))
        view.plans[key] = plan
        view.plan_compiles += 1
        _metrics.sink().incr("plan.compiles")
    else:
        _metrics.sink().incr("plan.cache_hits")
    return plan


def _view_profile(view: GraphView, graph: Graph) -> MatchCostProfile:
    """The view's cost profile, computed once per (graph, version) —
    not once per pattern (one full node+edge pass either way)."""
    profile = view.cost_profile
    if profile is None:
        profile = view.cost_profile = matching_cost_profile(graph)
    return profile


def install_plan(
    graph: Graph,
    pattern: Pattern,
    pool_slots: Mapping[str, "tuple[int, ...] | list[int]"],
) -> MatchPlan | None:
    """Install a coordinator-compiled plan from its broadcast pools.

    Engine workers call this while restoring a snapshot: the slots are
    valid verbatim because canonical interning assigns identical slots
    to identical node sets.  Returns ``None`` (and compiles lazily on
    first use instead) if the payload does not line up with the
    restored graph.
    """
    view = get_view(graph)
    n = view.num_nodes
    for pool in pool_slots.values():
        if any(slot >= n for slot in pool):
            return None
    indexed = get_index(graph) is not None
    plan = MatchPlan(pattern, view, indexed, pool_slots, _view_profile(view, graph))
    view.plans[(pattern, indexed)] = plan
    view.plan_installs += 1
    _metrics.sink().incr("plan.installs")
    return plan


# ----------------------------------------------------------------------
# Pool mode: caller-supplied candidates over a (possibly mutating) graph
# ----------------------------------------------------------------------


def _identity(value: str) -> str:
    return value


def _adjacency_rows(graph: Graph):
    """A ``row_set`` provider over the graph's own adjacency indexes.

    Labeled rows are the internal per-label sets (no copies); wildcard
    rows are unions built lazily and cached for the duration of one
    executor run.
    """
    any_out: dict[str, set[str]] = {}
    any_in: dict[str, set[str]] = {}

    def row_set(out_dir: bool, label: str | None, node_id: str):
        if label is None:
            cache = any_out if out_dir else any_in
            row = cache.get(node_id)
            if row is None:
                row = graph.successors(node_id) if out_dir else graph.predecessors(node_id)
                cache[node_id] = row
            return row
        return graph.out_row(node_id, label) if out_dir else graph.in_row(node_id, label)

    return row_set


def execute_over_pools(
    pattern: Pattern,
    graph: Graph,
    candidates: Mapping[str, "set[str]"],
    fixed: Mapping[str, str] | None = None,
    restrict: Mapping[str, "set[str] | frozenset[str]"] | None = None,
    limit: int | None = None,
) -> Iterator[Match]:
    """Run the plan executor over caller-supplied candidate pools.

    This is the view-free path: no interning, no O(|G|) build — the
    pattern program comes from the shared :func:`_steps_for` cache and
    adjacency rows from the graph's own indexes.  The streaming delta
    kernel uses it with pattern-radius ball pools so per-batch work
    stays proportional to the update's neighborhood.
    """
    fixed = dict(fixed) if fixed else {}
    for variable, node_id in fixed.items():
        if not pattern.has_variable(variable):
            raise PatternError(f"fixed variable {variable!r} is not in the pattern")
        if not graph.has_node(node_id):
            raise PatternError(f"fixed image {node_id!r} is not a node of the graph")
    pools: dict[str, set] = {
        variable: set(candidates[variable]) for variable in pattern.variables
    }
    if restrict:
        for variable, pool in restrict.items():
            if not pattern.has_variable(variable):
                raise PatternError(f"restricted variable {variable!r} is not in the pattern")
            pools[variable] = pools[variable] & pool
    for variable, node_id in fixed.items():
        if node_id not in pools[variable]:
            return  # The pinned node can never host this variable.
        pools[variable] = {node_id}
    sizes = {variable: len(pool) for variable, pool in pools.items()}
    order = tuple(order_for_sizes(pattern, sizes))
    steps = _steps_for(pattern, order)
    pools_sorted = {variable: tuple(sorted(pool)) for variable, pool in pools.items()}
    sink = _metrics.sink()
    if not sink.enabled:
        yield from _execute(
            order, steps, pools_sorted, pools, _adjacency_rows(graph), _identity, limit
        )
        return
    observer = _ExecObserver()
    try:
        yield from _execute(
            order,
            steps,
            pools_sorted,
            pools,
            _adjacency_rows(graph),
            _identity,
            limit,
            observer,
        )
    finally:
        observer.flush(_metrics.sink())


def program_cache_info():
    """Hit/miss counters of the pattern-program cache (tests/stats)."""
    return _steps_for.cache_info()


__all__ = [
    "EdgeCheck",
    "Match",
    "MatchPlan",
    "PlanStep",
    "compile_plan",
    "execute_over_pools",
    "install_plan",
    "program_cache_info",
]
