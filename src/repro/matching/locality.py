"""Locality of pattern matching: distances, balls, and ball-completeness.

A match of ``Q[x̄]`` that pins one variable to a concrete node is a
*local* object: every pattern edge maps to a graph edge, so for
variables ``u, w`` in the same weakly connected component of Q any match
sends their images to nodes within undirected graph distance
``dist_Q(u, w)`` of each other.  This module holds the shared locality
toolkit:

* :func:`pattern_distances` / :func:`pattern_radius` — the memoized
  pairwise distance table and its maximum (the largest radius any pin
  can impose); :func:`pivot_radius` is the per-pivot eccentricity, and
  is ``None`` when the pattern has variables the pivot cannot reach
  (a cross-component pattern leaves them unconstrained by the pin, so
  no finite ball contains all images);
* :func:`ball_levels` — cumulative undirected BFS balls around a node;
* **ball-completeness** (:func:`ball_closes_locally` /
  :func:`split_local_pivots`) — the rule that makes fragment-local
  matching exact on an edge-cut partition (:mod:`repro.graph.fragments`).

**The ball-completeness rule.**  A fragment stores the subgraph induced
on ``interior ∪ border`` where every border node is adjacent to an
interior node.  For a pivot ``v`` in the interior and radius ``r``: if
every node within local distance ``≤ r − 1`` of ``v`` is interior, then

1. the local radius-``r`` ball equals the global one (each ball node is
   reached through a node of depth ``< r`` whose full adjacency is
   present, interior adjacency being complete by construction), and
2. every edge of the global subgraph induced on the ball is present
   locally: an edge with an interior endpoint is local by the edge-cut
   definition, and an edge between two depth-``r`` border nodes is local
   because the fragment stores the *induced* subgraph — border-border
   edges included.

Matches pinning ``v`` live entirely inside that ball, so enumerating
them on the fragment equals enumerating them on the whole graph — the
equivalence the fragment backend's byte-identity tests assert.  Pivots
failing the rule are *escalated* to a coordinator-side whole-graph pass.

These helpers grew out of the streaming delta kernel (which still
re-exports them from :mod:`repro.streaming.delta`); they now sit in the
matching layer because fragment-local validation needs them too.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from functools import lru_cache

from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern


@lru_cache(maxsize=None)
def pattern_distances(pattern: Pattern) -> dict[str, dict[str, int]]:
    """Undirected pairwise distances between a pattern's variables.

    ``result[u][w]`` is defined exactly for w in u's weakly connected
    component (``result[u][u] == 0``).  Patterns are immutable and
    shared across dependencies, so the table is memoized per pattern.
    """
    result: dict[str, dict[str, int]] = {}
    for start in pattern.variables:
        distances = {start: 0}
        frontier = [start]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: list[str] = []
            for variable in frontier:
                neighbors = [t for _, t in pattern.out_edges(variable)] + [
                    s for _, s in pattern.in_edges(variable)
                ]
                for neighbor in neighbors:
                    if neighbor not in distances:
                        distances[neighbor] = depth
                        next_frontier.append(neighbor)
            frontier = next_frontier
        result[start] = distances
    return result


def pattern_radius(pattern: Pattern) -> int:
    """The largest pattern distance any pin can impose (max eccentricity)."""
    distances = pattern_distances(pattern)
    return max((d for row in distances.values() for d in row.values()), default=0)


def pivot_radius(pattern: Pattern, pivot: str) -> int | None:
    """The eccentricity of ``pivot``: the ball radius containing every
    image of a match that pins it — or ``None`` when some variable lies
    in another weakly connected component (no finite ball suffices, so
    fragment-local evaluation must escalate every pivot)."""
    reachable = pattern_distances(pattern)[pivot]
    if len(reachable) != len(pattern.variables):
        return None
    return max(reachable.values(), default=0)


def ball_levels(graph: Graph, center: str, radius: int) -> list[set[str]]:
    """Cumulative undirected BFS balls: ``levels[d]`` = nodes within
    distance d of ``center`` (``levels[0] == {center}``)."""
    within = {center}
    levels = [set(within)]
    frontier = {center}
    for _ in range(radius):
        next_frontier: set[str] = set()
        for node_id in frontier:
            next_frontier |= graph.successors(node_id)
            next_frontier |= graph.predecessors(node_id)
        next_frontier -= within
        if not next_frontier:
            # Ball saturated: reuse the last level for remaining radii.
            levels.extend(set(within) for _ in range(radius - len(levels) + 1))
            break
        within |= next_frontier
        levels.append(set(within))
        frontier = next_frontier
    return levels


def ball_closes_locally(
    local_graph: Graph,
    interior: Collection[str],
    pivot: str,
    radius: int,
) -> bool:
    """Whether the radius-``radius`` ball around ``pivot`` is decidable
    on this fragment (see the module docstring for the proof sketch).

    ``local_graph`` is the fragment's induced subgraph, ``interior`` its
    owned node set; the pivot must be interior.  Radius 0 (single-
    variable patterns) is always local.
    """
    if radius <= 0:
        return True
    core = ball_levels(local_graph, pivot, radius - 1)[-1]
    return core <= set(interior) if not isinstance(interior, (set, frozenset)) else core <= interior


def split_local_pivots(
    local_graph: Graph,
    interior: Collection[str],
    pivots: Iterable[str],
    radius: int | None,
) -> tuple[list[str], list[str]]:
    """Partition interior ``pivots`` into (locally decidable, escalated).

    ``radius=None`` (cross-component pattern) escalates everything; with
    an empty border every pivot is trivially local.  Both lists come
    back sorted — the deterministic order the validation kernels pin.
    """
    ordered = sorted(pivots)
    if radius is None:
        return [], ordered
    interior_set = interior if isinstance(interior, (set, frozenset)) else set(interior)
    if radius <= 0 or local_graph.num_nodes == len(interior_set):
        return ordered, []
    local: list[str] = []
    escalated: list[str] = []
    for pivot in ordered:
        if ball_closes_locally(local_graph, interior_set, pivot, radius):
            local.append(pivot)
        else:
            escalated.append(pivot)
    return local, escalated


__all__ = [
    "ball_closes_locally",
    "ball_levels",
    "pattern_distances",
    "pattern_radius",
    "pivot_radius",
    "split_local_pivots",
]
