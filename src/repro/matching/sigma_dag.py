"""Σ-DAG compilation: compile the dependency *set* once, share pattern
prefixes across every rule.

Dependency sets are not independent rules: real Σ share subpatterns —
the same shape-and-label skeleton with different attribute literals —
yet a per-rule :class:`~repro.matching.plan.MatchPlan` re-enumerates
the shared scan/extend prefix once per rule.  This module merges the
compiled plans of a pattern set into one **shared plan DAG**:

* each pattern's cost-ordered step prefix (scan / extend / edge-check /
  self-loop — attr-filters excluded, they are per-rule) is
  canonicalized and merged into a **trie of shared interior nodes**
  over the interned :class:`~repro.matching.view.GraphView` slots.  Two
  steps merge iff their effective candidate pool (a frozenset of
  slots), their canonicalized edge-check set, and their self-loop set
  are all equal — which, by induction along the trie path, guarantees
  the shared node computes the *identical* candidate list every merged
  rule would have computed on its own;
* per-rule work hangs off the shared spine as **leaves**: a leaf marks
  the depth where its pattern's variables are fully bound, carrying the
  pattern's own binding order and runtime ``limit``.  Attr-filter
  pools (``restrict``) enter through
  :meth:`~repro.matching.plan.MatchPlan.prepare` exactly as they do for
  a solo run, so a restricted rule simply diverges from the shared
  spine at the first depth where its pools differ — sharing happens
  precisely where it is sound, never where it is not;
* the **executor** walks the DAG with the same explicit-stack,
  smallest-operand-first intersection machinery as
  :func:`~repro.matching.plan._execute`, expanding every shared frame
  once and emitting each leaf's match stream **byte-identical** to the
  leaf's standalone ``MatchPlan.matches`` run (the differential suite
  ``tests/matching/test_sigma_dag.py`` asserts this across backends,
  ±index, under ``fixed`` / ``restrict`` / ``limit``).

Compiled DAGs live beside the per-pattern plans in the view's weak
id-keyed registry (:func:`compile_sigma` is cached per (deduped pattern
tuple, index attachment) and invalidated wholesale when the graph
version moves).  Engine workers get the same DAG for free: the
broadcast snapshot already ships every pattern's compiled pools through
the ``install_plan`` channel, and restoring workers re-link them into
the worker-side Σ-DAG without recomputing candidate sets.

When do per-rule plans still win?  When rules share no prefix (every
root is private, the trie is a forest of chains — the DAG degenerates
to the per-rule plans plus bookkeeping) and when a caller wants a
bounded scan of a *single* rule (``validates`` stops at the first
violation; batching other rules' work into that walk would do strictly
more work than the solo plan).  Both paths keep using ``compile_plan``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import PatternError
from repro.graph.graph import Graph
from repro.indexing.registry import get_index
from repro.matching.plan import Match, MatchPlan, compile_plan
from repro.matching.view import GraphView, get_view
from repro.patterns.pattern import Pattern
from repro.telemetry import metrics as _metrics

_EMPTY: tuple = ()


@dataclass(frozen=True)
class SigmaQuery:
    """One per-rule request against a compiled :class:`SigmaDag`.

    ``pattern`` must be one of the DAG's compiled patterns; ``fixed`` /
    ``restrict`` / ``limit`` carry the same per-run semantics as
    :meth:`~repro.matching.plan.MatchPlan.matches`.
    """

    pattern: Pattern
    fixed: Mapping[str, str] | None = None
    restrict: Mapping[str, "set[str] | frozenset[str]"] | None = None
    limit: int | None = None


class _Node:
    """One shared trie node: a (pool, checks, self-loops) step merged
    across every rule whose prepared prefix reaches it."""

    __slots__ = (
        "idx",
        "depth",
        "variable",
        "pool_sorted",
        "pool_set",
        "checks",
        "self_loops",
        "children",
        "child_index",
        "completions",
        "leaf_ids",
    )

    def __init__(self, idx, depth, variable, pool_sorted, pool_set, checks, loops):
        self.idx = idx
        self.depth = depth
        self.variable = variable  # representative name (first merged rule)
        self.pool_sorted = pool_sorted
        self.pool_set = pool_set
        self.checks = checks  # canonical ((out_dir, label, depth), ...)
        self.self_loops = loops
        self.children: list[_Node] = []
        self.child_index: dict = {}
        #: binding order -> leaf ids completing here (insertion-ordered).
        self.completions: dict[tuple[str, ...], list[int]] = {}
        #: every leaf whose spine passes through (or ends at) this node.
        self.leaf_ids: list[int] = []


class _Trie:
    """One built trie: shared nodes plus per-leaf spine paths."""

    __slots__ = ("roots", "nodes", "leaf_paths", "live")

    def __init__(self, roots, nodes, leaf_paths, live):
        self.roots = roots
        self.nodes = nodes
        self.leaf_paths = leaf_paths
        self.live = live  # leaf ids actually inserted (prepare() non-None)


def _canon_checks(checks) -> tuple:
    """Edge checks in canonical order (set semantics: the executor
    intersects all rows, so reordering cannot change the stream)."""
    keyed = sorted(
        (check.out_dir, check.label is None, check.label or "", check.depth)
        for check in checks
    )
    return tuple(
        (out_dir, None if is_none else label, depth)
        for out_dir, is_none, label, depth in keyed
    )


def _canon_loops(loops) -> tuple:
    return tuple(sorted(loops, key=lambda wire: (wire is None, wire or "")))


def _build_trie(prepared: "Sequence[tuple | None]") -> _Trie:
    """Merge prepared per-rule prefixes into a trie of shared nodes.

    ``prepared[i]`` is leaf *i*'s ``MatchPlan.prepare`` result (or
    ``None`` for a statically-empty stream, which is simply left out).
    """
    roots: list[_Node] = []
    root_index: dict = {}
    nodes: list[_Node] = []
    leaf_paths: list[tuple[int, ...]] = []
    live: list[int] = []
    for leaf_id, prep in enumerate(prepared):
        if prep is None:
            leaf_paths.append(())
            continue
        order, steps, pools_sorted, pools_set = prep
        level_index, level_list = root_index, roots
        node = None
        path: list[int] = []
        for depth, step in enumerate(steps):
            variable = step.variable
            key = (
                pools_set[variable],
                _canon_checks(step.checks),
                _canon_loops(step.self_loops),
            )
            node = level_index.get(key)
            if node is None:
                node = _Node(
                    len(nodes),
                    depth,
                    variable,
                    tuple(pools_sorted[variable]),
                    key[0],
                    key[1],
                    key[2],
                )
                nodes.append(node)
                level_index[key] = node
                level_list.append(node)
            node.leaf_ids.append(leaf_id)
            path.append(node.idx)
            level_index, level_list = node.child_index, node.children
        bucket = node.completions.get(order)
        if bucket is None:
            node.completions[order] = [leaf_id]
        else:
            bucket.append(leaf_id)
        leaf_paths.append(tuple(path))
        live.append(leaf_id)
    return _Trie(roots, nodes, leaf_paths, live)


class _SigmaObserver:
    """Per-run DAG execution accounting (created only when telemetry is
    on, same zero-overhead discipline as the plan executor's observer).

    ``frames saved`` counts, for every expanded shared frame, the
    rules that did *not* have to expand it themselves: a frame at a
    node merged across *m* rules stands in for ``m`` per-rule frames
    but was expanded once, saving ``m - 1``.
    """

    __slots__ = ("frames", "produced", "probes", "saved", "per_node")

    def __init__(self):
        self.frames = 0
        self.produced = 0
        self.probes = 0
        self.saved = 0
        self.per_node: dict[int, list[int]] = {}

    def frame(self, node: _Node, produced: int, probes: int) -> None:
        self.frames += 1
        self.produced += produced
        self.probes += probes
        self.saved += len(node.leaf_ids) - 1
        entry = self.per_node.get(node.idx)
        if entry is None:
            self.per_node[node.idx] = [1, produced, probes]
        else:
            entry[0] += 1
            entry[1] += produced
            entry[2] += probes

    def flush(self, sink, target: "dict[int, list[int]] | None") -> None:
        if not self.frames:
            return
        sink.incr("matching.sigma.frames_expanded", self.frames)
        sink.incr("matching.sigma.frames_saved", self.saved)
        sink.incr("matching.sigma.candidates_produced", self.produced)
        sink.incr("matching.sigma.intersections", self.probes)
        if target is not None:
            for idx, entry in self.per_node.items():
                totals = target.get(idx)
                if totals is None:
                    target[idx] = list(entry)
                else:
                    totals[0] += entry[0]
                    totals[1] += entry[1]
                    totals[2] += entry[2]


class SigmaDag:
    """A pattern set compiled against one graph view as a shared trie.

    Build via :func:`compile_sigma` (cached on the view).  ``patterns``
    is the deduplicated tuple; every executor entry point addresses
    rules by *query* (:class:`SigmaQuery`) or, for the common
    whole-set case, by pattern position.
    """

    __slots__ = (
        "view",
        "indexed",
        "patterns",
        "plans",
        "_pattern_index",
        "_default",
        "observed",
    )

    def __init__(
        self,
        view: GraphView,
        indexed: bool,
        patterns: tuple[Pattern, ...],
        plans: tuple[MatchPlan, ...],
    ):
        self.view = view
        self.indexed = indexed
        self.patterns = patterns
        self.plans = plans
        self._pattern_index = {pattern: i for i, pattern in enumerate(patterns)}
        self._default: _Trie | None = None
        #: Observed execution totals per default-trie node idx —
        #: ``[frames, candidates, probes]`` — accumulated across
        #: telemetry-enabled whole-set runs (``explain(observed=True)``).
        self.observed: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    def _default_trie(self) -> _Trie:
        """The whole-set trie (no fixed/restrict): built once, reused by
        every unparameterized execution and by ``counts``."""
        trie = self._default
        if trie is None:
            trie = self._default = _build_trie(
                [plan.prepare() for plan in self.plans]
            )
        return trie

    def _queries(self, queries) -> list[SigmaQuery]:
        if queries is None:
            return [SigmaQuery(pattern) for pattern in self.patterns]
        out = []
        for query in queries:
            if query.pattern not in self._pattern_index:
                raise PatternError(
                    "query pattern is not compiled into this Σ-DAG"
                )
            out.append(query)
        return out

    # ------------------------------------------------------------------
    def iter_matches(self, queries=None) -> Iterator[tuple[int, Match]]:
        """Enumerate ``(query_index, match)`` pairs down the shared trie.

        Each query's match subsequence is byte-identical to its solo
        ``plan.matches(fixed=..., restrict=..., limit=...)`` stream.
        Emitted dicts may be shared between queries whose binding
        orders coincide — treat them as read-only (every in-repo
        consumer does; they copy into sorted item tuples).
        """
        queries = self._queries(queries)
        default = all(
            q.fixed is None and q.restrict is None for q in queries
        ) and [q.pattern for q in queries] == list(self.patterns)
        if default:
            trie = self._default_trie()
        else:
            trie = _build_trie(
                [
                    self.plans[self._pattern_index[q.pattern]].prepare(
                        q.fixed, q.restrict
                    )
                    for q in queries
                ]
            )
        limits = [q.limit for q in queries]
        sink = _metrics.sink()
        sink.incr("matching.sigma.executions")
        sink.incr("matching.sigma.leaves", len(trie.live))
        sink.incr("matching.sigma.spines", len(trie.roots))
        if not sink.enabled:
            yield from self._walk(trie, limits, None)
            return
        observer = _SigmaObserver()
        try:
            yield from self._walk(trie, limits, observer)
        finally:
            observer.flush(
                _metrics.sink(),
                self.observed if trie is self._default else None,
            )

    def execute(self, queries=None) -> list[list[Match]]:
        """All match streams, one list per query (whole set by default)."""
        queries = self._queries(queries)
        streams: list[list[Match]] = [[] for _ in queries]
        for index, match in self.iter_matches(queries):
            streams[index].append(match)
        return streams

    # ------------------------------------------------------------------
    def _walk(self, trie: _Trie, limits, observer) -> Iterator[tuple[int, Match]]:
        """The shared-frame enumerator (explicit stack, smallest operand
        first — the plan executor's machinery, one frame per *node*
        instead of one per rule)."""
        view = self.view
        row_set = view.row_set
        to_id = view.node_of.__getitem__
        leaf_paths = trie.leaf_paths
        num_leaves = len(leaf_paths)
        emitted = [0] * num_leaves
        done = [False] * num_leaves
        active = [len(node.leaf_ids) for node in trie.nodes]
        remaining = len(trie.live)
        if not remaining:
            return
        max_depth = max(node.depth for node in trie.nodes) + 1
        assign = [0] * max_depth

        def finish(leaf_id: int) -> int:
            done[leaf_id] = True
            for idx in leaf_paths[leaf_id]:
                active[idx] -= 1
            return remaining - 1

        def compute(node: _Node):
            checks = node.checks
            if checks:
                operands = [node.pool_set]
                for out_dir, label, depth in checks:
                    row = row_set(out_dir, label, assign[depth])
                    if not row:
                        if observer is not None:
                            observer.frame(node, 0, len(operands))
                        return _EMPTY
                    operands.append(row)
                operands.sort(key=len)
                found = operands[0].intersection(*operands[1:])
                if node.self_loops:
                    loops = node.self_loops
                    found = [
                        image
                        for image in found
                        if all(image in row_set(True, wire, image) for wire in loops)
                    ]
                result = sorted(found)
                if observer is not None:
                    observer.frame(node, len(result), len(checks))
                return result
            pool = node.pool_sorted
            if node.self_loops:
                loops = node.self_loops
                result = [
                    image
                    for image in pool
                    if all(image in row_set(True, wire, image) for wire in loops)
                ]
                if observer is not None:
                    observer.frame(node, len(result), 0)
                return result
            if observer is not None:
                observer.frame(node, len(pool), 0)
            return pool

        for root in trie.roots:
            if remaining == 0:
                return
            if active[root.idx] == 0:
                continue
            images = compute(root)
            if not images:
                # Root-level empty computation: the solo executor ends
                # without a limit check, so no finish-marking here.
                continue
            # Frame: [node, images, image_pos, child_pos]; child_pos ==
            # len(children) requests binding of the next image.
            stack = [[root, images, 0, len(root.children)]]
            while stack:
                frame = stack[-1]
                node = frame[0]
                children = node.children
                child_pos = frame[3]
                if child_pos < len(children):
                    frame[3] = child_pos + 1
                    child = children[child_pos]
                    if active[child.idx] == 0:
                        continue
                    below = compute(child)
                    if below:
                        stack.append([child, below, 0, len(child.children)])
                        continue
                    # Fruitless descent: the solo executor recursed into
                    # an empty frame, returned, and *then* checked the
                    # limit — reproduce that for every rule whose spine
                    # runs through the empty child (degenerate limit<=0
                    # stops such a rule here, before any yield).
                    for leaf_id in child.leaf_ids:
                        if not done[leaf_id]:
                            lim = limits[leaf_id]
                            if lim is not None and emitted[leaf_id] >= lim:
                                remaining = finish(leaf_id)
                    if remaining == 0:
                        return
                    continue
                images_here = frame[1]
                if frame[2] >= len(images_here) or active[node.idx] == 0:
                    stack.pop()
                    continue
                image = images_here[frame[2]]
                frame[2] += 1
                frame[3] = 0
                assign[node.depth] = image
                bound = node.depth + 1
                for order, leaf_ids in node.completions.items():
                    match = None
                    for leaf_id in leaf_ids:
                        if done[leaf_id]:
                            continue
                        if match is None:
                            match = {order[d]: to_id(assign[d]) for d in range(bound)}
                        emitted[leaf_id] += 1
                        yield leaf_id, match
                        lim = limits[leaf_id]
                        if lim is not None and emitted[leaf_id] >= lim:
                            remaining = finish(leaf_id)
                if remaining == 0:
                    return

    # ------------------------------------------------------------------
    def counts(self) -> list[int]:
        """Match counts per pattern, one whole-set walk.

        Counting skips match materialization entirely: a trie node with
        no children completes every rule that reaches it, so the walk
        adds ``len(candidates)`` per completing rule instead of
        iterating images — the dominant cost of count-driven consumers
        (discovery support counting) at the deepest shared level.
        """
        trie = self._default_trie()
        result = [0] * len(self.patterns)
        sink = _metrics.sink()
        sink.incr("matching.sigma.executions")
        sink.incr("matching.sigma.leaves", len(trie.live))
        sink.incr("matching.sigma.spines", len(trie.roots))
        observer = _SigmaObserver() if sink.enabled else None
        try:
            self._count_into(trie, result, observer)
        finally:
            if observer is not None:
                observer.flush(_metrics.sink(), self.observed)
        return result

    def _count_into(self, trie: _Trie, result: list[int], observer) -> None:
        view = self.view
        row_set = view.row_set
        max_depth = max((node.depth for node in trie.nodes), default=0) + 1
        assign = [0] * max_depth

        def compute(node: _Node):
            checks = node.checks
            if checks:
                operands = [node.pool_set]
                for out_dir, label, depth in checks:
                    row = row_set(out_dir, label, assign[depth])
                    if not row:
                        if observer is not None:
                            observer.frame(node, 0, len(operands))
                        return _EMPTY
                    operands.append(row)
                operands.sort(key=len)
                found = operands[0].intersection(*operands[1:])
                if node.self_loops:
                    loops = node.self_loops
                    found = [
                        image
                        for image in found
                        if all(image in row_set(True, wire, image) for wire in loops)
                    ]
                result_list = sorted(found)
                if observer is not None:
                    observer.frame(node, len(result_list), len(checks))
                return result_list
            pool = node.pool_sorted
            if node.self_loops:
                loops = node.self_loops
                result_list = [
                    image
                    for image in pool
                    if all(image in row_set(True, wire, image) for wire in loops)
                ]
                if observer is not None:
                    observer.frame(node, len(result_list), 0)
                return result_list
            if observer is not None:
                observer.frame(node, len(pool), 0)
            return pool

        def tally(node: _Node, count: int) -> None:
            for leaf_ids in node.completions.values():
                for leaf_id in leaf_ids:
                    result[leaf_id] += count

        for root in trie.roots:
            images = compute(root)
            if not images:
                continue
            if not root.children:
                tally(root, len(images))
                continue
            stack = [[root, images, 0, len(root.children)]]
            while stack:
                frame = stack[-1]
                node = frame[0]
                children = node.children
                child_pos = frame[3]
                if child_pos < len(children):
                    frame[3] = child_pos + 1
                    child = children[child_pos]
                    below = compute(child)
                    if not below:
                        continue
                    if child.children:
                        stack.append([child, below, 0, len(child.children)])
                    else:
                        # Leaf level: every rule reaching this node
                        # completes here — count without iterating.
                        tally(child, len(below))
                    continue
                if frame[2] >= len(frame[1]):
                    stack.pop()
                    continue
                assign[node.depth] = frame[1][frame[2]]
                frame[2] += 1
                frame[3] = 0
                if node.completions:
                    tally(node, 1)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Static shape of the whole-set trie (tests / explain / CLI)."""
        trie = self._default_trie()
        per_rule_steps = sum(
            len(self.plans[leaf_id].steps) for leaf_id in trie.live
        )
        shared = sum(1 for node in trie.nodes if len(node.leaf_ids) > 1)
        return {
            "patterns": len(self.patterns),
            "nodes": len(trie.nodes),
            "roots": len(trie.roots),
            "leaves": len(trie.live),
            "shared_nodes": shared,
            "per_rule_steps": per_rule_steps,
            "steps_saved": per_rule_steps - len(trie.nodes),
        }

    def explain(self, observed: bool = False) -> str:
        """A stable rendering of the shared spine with per-leaf
        attribution.

        Shared interior nodes print once with their sharing multiplicity
        (``shared by k rule(s)``); each rule's completion point prints a
        leaf line.  With ``observed=True``, nodes additionally show the
        frames/candidates telemetry-enabled whole-set runs accumulated,
        and each leaf shows how many expanded frames on its spine were
        reused from other rules rather than re-expanded.
        """
        trie = self._default_trie()
        shape = self.stats()
        view = self.view
        lines = [
            f"Σ-DAG for {shape['patterns']} pattern(s) — "
            f"view: {view.num_nodes} node(s), {view.num_edges} edge(s), "
            f"{'indexed' if self.indexed else 'unindexed'} pools",
            f"shared spine: {shape['nodes']} node(s) for "
            f"{shape['per_rule_steps']} per-rule step(s) "
            f"({shape['steps_saved']} saved), {shape['roots']} root(s), "
            f"{shape['shared_nodes']} shared node(s)",
        ]

        def render(node: _Node, indent: str) -> None:
            kind = "extend" if node.checks else "scan"
            head = (
                f"{indent}{kind} {node.variable} — pool "
                f"{len(node.pool_sorted)} candidate(s)"
            )
            if node.checks:
                head += f" ∩ {len(node.checks)} row check(s)"
            if node.self_loops:
                head += f"; self-loop check({len(node.self_loops)})"
            if len(node.leaf_ids) > 1:
                head += f"  [shared by {len(node.leaf_ids)} rule(s)]"
            if observed:
                totals = self.observed.get(node.idx)
                if totals is None:
                    head += "  [obs. not executed]"
                else:
                    frames, produced, probes = totals
                    mean = produced / frames if frames else 0.0
                    head += (
                        f"  [obs. {frames} frame(s), ~{mean:.1f}/frame, "
                        f"{probes} row probe(s)]"
                    )
            lines.append(head)
            for order, leaf_ids in node.completions.items():
                for leaf_id in leaf_ids:
                    leaf_line = (
                        f"{indent}  leaf #{leaf_id + 1}: "
                        f"Q[{', '.join(order)}]"
                    )
                    if observed:
                        reused = sum(
                            self.observed.get(idx, (0,))[0]
                            for idx in trie.leaf_paths[leaf_id]
                            if len(trie.nodes[idx].leaf_ids) > 1
                        )
                        leaf_line += f"  [obs. {reused} shared frame(s) on spine]"
                    lines.append(leaf_line)
            for child in node.children:
                render(child, indent + "  ")

        for root in trie.roots:
            render(root, "  ")
        if observed and not self.observed:
            lines.append(
                "  (no observed execution — run with telemetry enabled first)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SigmaDag({len(self.patterns)} pattern(s), indexed={self.indexed})"
        )


# ----------------------------------------------------------------------
# Registry entry points (cached beside compile_plan on the view)
# ----------------------------------------------------------------------


def compile_sigma(graph: Graph, patterns: Iterable[Pattern]) -> SigmaDag:
    """The Σ-DAG for a pattern set — cached on the graph's current view,
    keyed by (deduplicated pattern tuple, index attachment), and
    invalidated wholesale when the graph version moves.

    Per-pattern plans come from :func:`compile_plan`, so the DAG shares
    (and warms) the same plan cache every other consumer uses —
    including engine workers, whose plans arrive pre-compiled through
    the snapshot broadcast.
    """
    view = get_view(graph)
    indexed = get_index(graph) is not None
    deduped = tuple(dict.fromkeys(patterns))
    key = (deduped, indexed)
    dag = view.sigma_dags.get(key)
    if dag is None:
        plans = tuple(compile_plan(graph, pattern) for pattern in deduped)
        dag = SigmaDag(view, indexed, deduped, plans)
        view.sigma_dags[key] = dag
        view.sigma_compiles += 1
        _metrics.sink().incr("matching.sigma.compiles")
    else:
        _metrics.sink().incr("matching.sigma.cache_hits")
    return dag


def count_sigma(graph: Graph, patterns: "Sequence[Pattern]") -> list[int]:
    """Match counts for a pattern sequence as one Σ-DAG pass.

    Returns counts in *input* order (duplicates allowed — they share
    one leaf).  Equal, pattern for pattern, to
    ``[count_matches(p, graph) for p in patterns]``.
    """
    patterns = list(patterns)
    if not patterns:
        return []
    dag = compile_sigma(graph, patterns)
    per_leaf = dag.counts()
    index = dag._pattern_index
    return [per_leaf[index[pattern]] for pattern in patterns]


__all__ = [
    "SigmaDag",
    "SigmaQuery",
    "compile_sigma",
    "count_sigma",
]
