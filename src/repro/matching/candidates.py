"""Candidate computation for pattern matching.

For each pattern variable we precompute the set of graph nodes it could
possibly map to, filtering by

* label compatibility under ``≼`` (wildcard pattern labels accept any
  node), and
* degree: a node must have at least as many out/in edges as the pattern
  variable requires (a necessary condition for homomorphisms, since a
  single graph edge can serve several parallel pattern edges only when
  they agree on label and endpoint images — degree pruning here is the
  cheaper per-label form).

This is the standard filtering step of backtracking subgraph matchers;
it makes matching on large data graphs practical without changing the
semantics.

When a :mod:`repro.indexing` index is attached to the graph (and still
in sync), candidate computation is delegated to the index's
:class:`~repro.indexing.pruning.CandidatePruner`, which adds 1-hop
neighborhood-signature pruning on top of the label and degree filters —
still purely necessary conditions, so the pools shrink but the match
sets do not change.  Pass ``use_index=False`` to force the unindexed
computation (the equality tests compare the two).
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.indexing.pruning import CandidatePruner
from repro.indexing.registry import get_index
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern


def candidate_sets(
    pattern: Pattern, graph: Graph, *, use_index: bool = True
) -> dict[str, set[str]]:
    """``variable -> {plausible node ids}`` for every pattern variable."""
    if use_index:
        index = get_index(graph)
        if index is not None:
            return CandidatePruner(graph, index).candidate_sets(pattern)
    result: dict[str, set[str]] = {}
    for variable in pattern.variables:
        label = pattern.label_of(variable)
        if label == WILDCARD:
            pool = set(graph.node_ids)
        else:
            pool = graph.nodes_with_label(label)
        result[variable] = {
            node_id for node_id in pool if _degree_ok(pattern, variable, graph, node_id)
        }
    return result


def _degree_ok(pattern: Pattern, variable: str, graph: Graph, node_id: str) -> bool:
    """Necessary per-label degree conditions for ``variable -> node_id``.

    Per-label degrees come from :meth:`Graph.out_degree` /
    :meth:`Graph.in_degree` label accessors — O(1) set-length probes on
    the adjacency index, not successor-set materializations.
    """
    for edge_label, _ in pattern.out_edges(variable):
        label = None if edge_label == WILDCARD else edge_label
        if graph.out_degree(node_id, label) < 1:
            return False
    for edge_label, _ in pattern.in_edges(variable):
        label = None if edge_label == WILDCARD else edge_label
        if graph.in_degree(node_id, label) < 1:
            return False
    return True


def order_for_sizes(pattern: Pattern, sizes: "dict[str, int]") -> list[str]:
    """The search-order ranking from candidate-pool *cardinalities*.

    This is the single definition both matcher generations share: the
    seed enumerator feeds it ``len(pool)`` of its freshly computed sets,
    the plan compiler/executor feeds it the lengths of its interned (and
    run-time restricted) pools — so the two always rank variables, and
    therefore emit matches, identically.

    Ranking: fewest candidates first, then highest pattern degree, ties
    by variable name; after the first variable, prefer variables
    adjacent to already-ordered ones so edge constraints prune early.
    """
    remaining = set(pattern.variables)
    ordered: list[str] = []
    ordered_set: set[str] = set()

    def cost(v: str) -> tuple[int, int, str]:
        return (sizes[v], -pattern.degree(v), v)

    while remaining:
        adjacent = {
            v
            for v in remaining
            if any(t in ordered_set for _, t in pattern.out_edges(v))
            or any(s in ordered_set for _, s in pattern.in_edges(v))
        }
        pool = adjacent if adjacent else remaining
        best = min(pool, key=cost)
        ordered.append(best)
        ordered_set.add(best)
        remaining.remove(best)
    return ordered


def variable_order(pattern: Pattern, candidates: dict[str, set[str]]) -> list[str]:
    """A search order: fewest candidates first, then highest degree
    (see :func:`order_for_sizes` for the shared ranking)."""
    return order_for_sizes(pattern, {v: len(candidates[v]) for v in candidates})
