"""Random graph workloads for the validation benchmarks.

The bounded-pattern-size validation benchmark (Section 5.3) needs data
graphs of growing size whose pattern-match counts stay controlled;
this module wraps the generators of :mod:`repro.graph.generators` with
workload-level parameters (size sweeps, fixed label vocabularies) and
provides a small GED rule set whose patterns all have size ≤ 4.
"""

from __future__ import annotations

import random

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, VariableLiteral
from repro.graph.generators import random_labeled_graph
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern


def validation_workload(
    n_nodes: int,
    rng: random.Random | int | None = None,
    edge_probability: float | None = None,
) -> Graph:
    """A labeled data graph for validation sweeps.

    Edge probability defaults to 4/n so the expected degree stays
    constant as n grows — validation cost then scales with the number
    of pattern matches, not the raw edge count.
    """
    if edge_probability is None:
        edge_probability = min(0.5, 4.0 / max(1, n_nodes))
    return random_labeled_graph(
        n_nodes,
        edge_probability,
        node_labels=["user", "item", "shop"],
        edge_labels=["buys", "sells", "rates"],
        rng=rng,
        attribute_names=["score", "region"],
        attribute_values=[1, 2, 3],
        attribute_probability=0.8,
    )


def bounded_rule_set() -> list[GED]:
    """GEDs whose patterns have size ≤ 4 (the Section 5.3 regime)."""
    buys = Pattern({"u": "user", "i": "item"}, [("u", "buys", "i")])
    sells = Pattern({"s": "shop", "i": "item"}, [("s", "sells", "i")])
    item = Pattern({"i": "item"})
    return [
        GED(
            buys,
            [ConstantLiteral("i", "score", 3)],
            [VariableLiteral("u", "region", "i", "region")],
            name="same-region-for-top-items",
        ),
        GED(
            sells,
            [ConstantLiteral("s", "region", 1)],
            [ConstantLiteral("i", "region", 1)],
            name="region-1-shops-sell-region-1-items",
        ),
        GED(
            item,
            [ConstantLiteral("i", "score", 1)],
            [VariableLiteral("i", "region", "i", "region")],
            name="low-score-items-have-region",
        ),
    ]
