"""Churn streams: seeded insert/delete/attr-write workloads.

The streaming subsystem's benchmark and property tests need *valid*
update streams — every batch must pass
:func:`repro.graph.update.validate_update` against the state the stream
has reached — with a controllable mix of additions, attribute writes and
deletions over the repository's standard workload graphs (the
random-graph validation workload and the social network with planted
spam rings).

The generator mirrors the batch semantics exactly: each batch's
deletions are chosen against (and applied to) a shadow state first, its
additions against the post-deletion state second, so generated batches
replay cleanly through every apply path.  Streams are fully determined
by their seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.deps.ged import GED
from repro.graph.graph import Graph
from repro.graph.update import GraphUpdate

from repro.workloads.random_graphs import bounded_rule_set, validation_workload
from repro.workloads.social import synthetic_social_network


@dataclass
class ChurnStream:
    """A base graph, a rule set, and a seeded stream of update batches.

    ``base`` is the state before batch 1; callers that mutate it should
    work on a copy (``base.copy()``) if they need the original later.
    """

    base: Graph
    sigma: list[GED]
    updates: list[GraphUpdate] = field(default_factory=list)

    @property
    def num_batches(self) -> int:
        return len(self.updates)

    def total_operations(self) -> int:
        return sum(update.size() for update in self.updates)


def _spam_rule_set() -> list[GED]:
    """A small rule set for the social churn stream (Example 1 flavor:
    posters of keyword-sharing blogs must carry the fake flag)."""
    from repro.deps.literals import ConstantLiteral, VariableLiteral
    from repro.patterns.pattern import Pattern

    poster = Pattern({"x": "account", "z": "blog"}, [("x", "post", "z")])
    liker = Pattern({"x": "account", "y": "blog"}, [("x", "like", "y")])
    return [
        GED(
            poster,
            [ConstantLiteral("z", "keyword", "peculiar")],
            [ConstantLiteral("x", "is_fake", 1)],
            name="peculiar-posters-are-fake",
        ),
        GED(
            liker,
            [],
            [VariableLiteral("x", "is_fake", "x", "is_fake")],
            name="likers-carry-fake-flag",
        ),
    ]


class _ChurnGenerator:
    """Shared batch generator over a shadow copy of the evolving graph."""

    def __init__(
        self,
        shadow: Graph,
        rng: random.Random,
        *,
        node_labels: list[str],
        edge_labels: list[str],
        attribute_names: list[str],
        attribute_values: list[object],
        delete_fraction: float,
        min_nodes: int,
        id_prefix: str,
    ):
        self.shadow = shadow
        self.rng = rng
        self.node_labels = node_labels
        self.edge_labels = edge_labels
        self.attribute_names = attribute_names
        self.attribute_values = attribute_values
        self.delete_fraction = delete_fraction
        self.min_nodes = min_nodes
        self.id_prefix = id_prefix
        self.counter = 0

    def batch(self, batch_size: int) -> GraphUpdate:
        rng, shadow = self.rng, self.shadow
        del_nodes: list[str] = []
        del_edges: list[tuple[str, str, str]] = []
        del_attrs: list[tuple[str, str]] = []
        nodes: list[tuple[str, str, dict]] = []
        edges: list[tuple[str, str, str]] = []
        attrs: list[tuple[str, str, object]] = []

        # -- deletions against the current shadow state ----------------
        deletions = sum(1 for _ in range(batch_size) if rng.random() < self.delete_fraction)
        for _ in range(deletions):
            kind = rng.choice(("edge", "attr", "node"))
            if kind == "edge" and shadow.num_edges:
                edge = rng.choice(sorted(shadow.edges))
                shadow.remove_edge(*edge)
                del_edges.append(edge)
            elif kind == "attr":
                carriers = [n for n in shadow.node_ids if shadow.node(n).attributes]
                if carriers:
                    node_id = rng.choice(carriers)
                    attr = rng.choice(sorted(shadow.node(node_id).attributes))
                    shadow.remove_attribute(node_id, attr)
                    del_attrs.append((node_id, attr))
            elif kind == "node" and shadow.num_nodes > self.min_nodes:
                node_id = rng.choice(shadow.node_ids)
                shadow.remove_node(node_id)
                del_nodes.append(node_id)

        # -- additions against the post-deletion state -----------------
        additions = max(1, batch_size - deletions)
        for _ in range(additions):
            kind = rng.choice(("node", "edge", "attr"))
            if kind == "node":
                self.counter += 1
                node_id = f"{self.id_prefix}{self.counter}"
                label = rng.choice(self.node_labels)
                node_attrs = {}
                if rng.random() < 0.8:
                    node_attrs[rng.choice(self.attribute_names)] = rng.choice(
                        self.attribute_values
                    )
                shadow.add_node(node_id, label, node_attrs)
                nodes.append((node_id, label, node_attrs))
                if shadow.num_nodes > 1:
                    other = rng.choice([n for n in shadow.node_ids if n != node_id])
                    edge_label = rng.choice(self.edge_labels)
                    source, target = (node_id, other) if rng.random() < 0.5 else (other, node_id)
                    shadow.add_edge(source, edge_label, target)
                    edges.append((source, edge_label, target))
            elif kind == "edge" and shadow.num_nodes > 1:
                source, target = rng.sample(shadow.node_ids, 2)
                edge_label = rng.choice(self.edge_labels)
                shadow.add_edge(source, edge_label, target)
                edges.append((source, edge_label, target))
            elif kind == "attr" and shadow.num_nodes:
                node_id = rng.choice(shadow.node_ids)
                attr = rng.choice(self.attribute_names)
                value = rng.choice(self.attribute_values)
                shadow.set_attribute(node_id, attr, value)
                attrs.append((node_id, attr, value))

        return GraphUpdate(nodes, edges, attrs, del_nodes, del_edges, del_attrs)


def churn_stream(
    n_nodes: int = 200,
    batches: int = 20,
    batch_size: int = 8,
    delete_fraction: float = 0.35,
    rng: random.Random | int | None = None,
) -> ChurnStream:
    """A churn stream over the random-graph validation workload.

    ``delete_fraction`` is the expected share of each batch's operations
    that are deletions (edge / attribute / node, uniformly); the rest
    are node adds (usually wired into the graph), edge adds, and
    attribute writes.  Rules: :func:`bounded_rule_set`.
    """
    seed = rng if not isinstance(rng, random.Random) else None
    rng = rng if isinstance(rng, random.Random) else random.Random(rng or 0)
    base = validation_workload(n_nodes, rng=seed if seed is not None else 0)
    generator = _ChurnGenerator(
        base.copy(),
        rng,
        node_labels=["user", "item", "shop"],
        edge_labels=["buys", "sells", "rates"],
        attribute_names=["score", "region"],
        attribute_values=[1, 2, 3],
        delete_fraction=delete_fraction,
        min_nodes=max(4, n_nodes // 4),
        id_prefix="churn",
    )
    updates = [generator.batch(batch_size) for _ in range(batches)]
    return ChurnStream(base, bounded_rule_set(), updates)


def social_churn_stream(
    n_rings: int = 8,
    batches: int = 20,
    batch_size: int = 8,
    delete_fraction: float = 0.35,
    rng: random.Random | int | None = None,
) -> ChurnStream:
    """A churn stream over the social network with planted spam rings.

    Accounts appear and vanish, likes/posts are added and retracted,
    fake flags and keywords get written and deleted — the traffic shape
    of the paper's Example 1 (2) under continuous moderation.
    """
    seed_value = rng if not isinstance(rng, random.Random) else 0
    rng = rng if isinstance(rng, random.Random) else random.Random(rng or 0)
    base, _truth = synthetic_social_network(n_rings=n_rings, rng=seed_value or 0)
    generator = _ChurnGenerator(
        base.copy(),
        rng,
        node_labels=["account", "blog"],
        edge_labels=["post", "like"],
        attribute_names=["is_fake", "keyword"],
        attribute_values=[0, 1, "peculiar", "benign"],
        delete_fraction=delete_fraction,
        min_nodes=max(4, base.num_nodes // 4),
        id_prefix="soc",
    )
    updates = [generator.batch(batch_size) for _ in range(batches)]
    return ChurnStream(base, _spam_rule_set(), updates)


__all__ = ["ChurnStream", "churn_stream", "social_churn_stream"]
