"""Synthetic workload generators (stand-ins for Yago3/DBPedia/social data)."""

from repro.workloads.kb import PlantedErrors, synthetic_knowledge_base
from repro.workloads.random_graphs import bounded_rule_set, validation_workload
from repro.workloads.social import SpamGroundTruth, synthetic_social_network

__all__ = [
    "PlantedErrors",
    "SpamGroundTruth",
    "bounded_rule_set",
    "synthetic_knowledge_base",
    "synthetic_social_network",
    "validation_workload",
]
