"""Synthetic workload generators (stand-ins for Yago3/DBPedia/social data)."""

from repro.workloads.churn import ChurnStream, churn_stream, social_churn_stream
from repro.workloads.clustered import clustered_workload
from repro.workloads.kb import PlantedErrors, synthetic_knowledge_base
from repro.workloads.overlapping import overlapping_rule_set, overlapping_workload
from repro.workloads.random_graphs import bounded_rule_set, validation_workload
from repro.workloads.social import SpamGroundTruth, synthetic_social_network

__all__ = [
    "ChurnStream",
    "PlantedErrors",
    "SpamGroundTruth",
    "bounded_rule_set",
    "churn_stream",
    "clustered_workload",
    "overlapping_rule_set",
    "overlapping_workload",
    "social_churn_stream",
    "synthetic_knowledge_base",
    "synthetic_social_network",
    "validation_workload",
]
