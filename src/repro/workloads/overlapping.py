"""A deliberately Σ-overlapping workload: shared shape skeletons,
varying literals.

Real dependency sets are families: one shape-and-label skeleton
instantiated with many attribute literals (Example 1's store rules all
ride the same ``user -buys-> item`` core).  This generator builds a
graph *regular enough* that those skeletons compile to identical
cost-ordered prefixes — the Σ-DAG's best case, and the workload the
perf gate's ``sigma`` section measures DAG-vs-per-rule speedup on.

Two properties are load-bearing:

* **Regularity** — prefix sharing requires *equal effective pools*:
  every user both buys and rates, every item is bought and sold, every
  shop sells and is rated, so degree pruning never splits the
  per-skeleton pools apart, and users are deliberately the smallest
  label pool so every skeleton's cost model binds ``u`` first.  The
  three skeletons then share one ``u -> i`` spine: ``edge`` completes
  at depth 1, ``path`` extends it with a sells probe, and ``tri``
  forks off the same depth-1 node with one extra row check.
* **Low triangle closure** — the regularity floor edges are assigned
  *independently* (a correlated floor would plant one triangle per
  shop), so ``tri`` enumerates many ``(u, i)`` frames but completes
  few matches.  Rule families are weighted toward ``tri``
  (``variants`` copies, vs ``variants // 12`` paths and
  ``variants // 24`` edges) because that is where sharing pays most:
  per-rule plans re-walk the whole spine per literal variant, while
  the per-match literal evaluation both executors must do stays tiny.

:func:`overlapping_rule_set` instantiates the skeletons with different
Y-literals and an empty X — identical patterns merge into a *single*
shared enumeration, so the DAG walks each skeleton once however many
literal variants ride it (and, X being empty, an attached index
imposes no restriction pools that could split the spine).
"""

from __future__ import annotations

import random

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, VariableLiteral
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern


def overlapping_workload(
    n_nodes: int,
    rng: random.Random | int | None = None,
    buys_per_user: int = 3,
    rates_per_user: int = 1,
) -> Graph:
    """A regular user/item/shop graph sized for Σ-prefix sharing.

    Node budget splits ~1/6 users, ~2/6 items, ~3/6 shops.  Every user
    buys ``buys_per_user`` items and rates ``rates_per_user`` shops;
    a decorrelated floor then gives every item a buyer and a selling
    shop and every shop a sale and a rating, so each label pool
    survives degree pruning intact without planting triangles.
    """
    if rng is None or isinstance(rng, int):
        rng = random.Random(rng if rng is not None else 0)
    n_users = max(2, n_nodes // 6)
    n_items = max(2, n_nodes // 3)
    n_shops = max(2, n_nodes - n_users - n_items)
    graph = Graph()
    users = [f"u{i:04d}" for i in range(n_users)]
    items = [f"i{i:04d}" for i in range(n_items)]
    shops = [f"s{i:04d}" for i in range(n_shops)]
    # ``tier`` is deliberately skewed (~90% tier 1): the rule literals
    # target it so most matches *satisfy* their rule — a validation
    # where every match becomes a Violation measures report
    # construction, not enumeration sharing.
    def attrs() -> dict:
        return {
            "score": rng.randint(1, 3),
            "region": rng.randint(1, 3),
            "tier": 1 if rng.random() < 0.9 else 2,
        }

    for node_id in users:
        graph.add_node(node_id, "user", attrs())
    for node_id in items:
        graph.add_node(node_id, "item", attrs())
    for node_id in shops:
        graph.add_node(node_id, "shop", attrs())

    def connect(source: str, label: str, target: str) -> None:
        if not graph.has_edge(source, label, target):
            graph.add_edge(source, label, target)

    for user in users:
        for item in rng.sample(items, min(buys_per_user, n_items)):
            connect(user, "buys", item)
        for shop in rng.sample(shops, min(rates_per_user, n_shops)):
            connect(user, "rates", shop)
    # Regularity floor, drawn independently per edge: correlated
    # assignments (shop k sells item k, user k rates shop k) would
    # plant one guaranteed triangle per shop and blow up the tri
    # skeleton's match count.
    for item in items:
        connect(rng.choice(shops), "sells", item)
        connect(rng.choice(users), "buys", item)
    for shop in shops:
        connect(shop, "sells", rng.choice(items))
        connect(rng.choice(users), "rates", shop)
    return graph


#: The three shared skeletons (module-level so every caller gets the
#: *same* Pattern objects and the plan/Σ-DAG caches can do their job).
EDGE_SKELETON = Pattern({"u": "user", "i": "item"}, [("u", "buys", "i")])
PATH_SKELETON = Pattern(
    {"u": "user", "i": "item", "s": "shop"},
    [("u", "buys", "i"), ("s", "sells", "i")],
)
TRI_SKELETON = Pattern(
    {"u": "user", "i": "item", "s": "shop"},
    [("u", "buys", "i"), ("s", "sells", "i"), ("u", "rates", "s")],
)


def overlapping_rule_set(variants: int = 24) -> list[GED]:
    """A Σ of literal variants over the three skeletons.

    ``variants`` tri rules, ``max(1, variants // 12)`` path rules and
    ``max(1, variants // 24)`` edge rules — every rule's X is empty and
    Y varies per rule, so the set is exactly the Σ-DAG's target shape:
    few distinct patterns, many literal leaves, weighted hard toward
    the low-closure ``tri`` skeleton whose enumeration-to-match ratio
    is where prefix sharing pays.  Every Y targets the skewed ``tier``
    attribute, so most matches satisfy their rule — violations stay a
    realistic minority instead of dominating the validation wall clock
    with report construction.
    """
    rules: list[GED] = []
    for variant in range(variants):
        rules.append(
            GED(
                TRI_SKELETON,
                [],
                [VariableLiteral("i", "tier", "s", "tier")]
                if variant % 2
                else [ConstantLiteral("i" if variant % 4 else "u", "tier", 1)],
                name=f"tri-tier-{variant}",
            )
        )
        if variant < max(1, variants // 12):
            rules.append(
                GED(
                    PATH_SKELETON,
                    [],
                    [VariableLiteral("u", "tier", "s", "tier")]
                    if variant % 2
                    else [ConstantLiteral("s", "tier", 1)],
                    name=f"path-tier-{variant}",
                )
            )
        if variant < max(1, variants // 24):
            rules.append(
                GED(
                    EDGE_SKELETON,
                    [],
                    [ConstantLiteral("i", "tier", 1)],
                    name=f"edge-tier-{variant}",
                )
            )
    return rules


__all__ = [
    "EDGE_SKELETON",
    "PATH_SKELETON",
    "TRI_SKELETON",
    "overlapping_rule_set",
    "overlapping_workload",
]
