"""Synthetic social network with planted spam rings (Example 1 (2)).

Accounts post and like blogs; a configurable number of *spam rings*
replicate the paper's Q5 structure: a confirmed-fake seed account x′
and an undetected partner x that like the same k blogs and post blogs
sharing a peculiar keyword.  The generator also produces benign
look-alikes (shared likes but no keyword overlap, or keyword overlap
without enough shared likes) so detection precision is measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graph.graph import Graph


@dataclass
class SpamGroundTruth:
    """Accounts the detector should flag (and those it should not)."""

    seeds: list[str] = field(default_factory=list)
    undetected_fakes: list[str] = field(default_factory=list)
    benign_lookalikes: list[str] = field(default_factory=list)


def synthetic_social_network(
    n_rings: int = 5,
    n_benign_pairs: int = 10,
    n_background_accounts: int = 30,
    k: int = 2,
    keyword: str = "peculiar",
    rng: random.Random | int | None = None,
) -> tuple[Graph, SpamGroundTruth]:
    """Generate a social graph and spam ground truth.

    The Q5 pattern needs: accounts x, x′; blogs z1 (posted by x),
    z2 (posted by x′), and y1..yk liked by both.
    """
    rng = rng if isinstance(rng, random.Random) else random.Random(rng or 0)
    g = Graph()
    truth = SpamGroundTruth()

    def add_account(node_id: str, is_fake: int | None) -> None:
        attrs = {} if is_fake is None else {"is_fake": is_fake}
        g.add_node(node_id, "account", attrs)

    def add_blog(node_id: str, kw: str | None) -> None:
        attrs = {} if kw is None else {"keyword": kw}
        g.add_node(node_id, "blog", attrs)

    # -- spam rings: the full Q5 structure ------------------------------
    for r in range(n_rings):
        seed, partner = f"fake{r}", f"mule{r}"
        add_account(seed, is_fake=1)
        add_account(partner, is_fake=0)  # mislabeled; ϕ5 should flag it
        truth.seeds.append(seed)
        truth.undetected_fakes.append(partner)
        z1, z2 = f"post_m{r}", f"post_f{r}"
        add_blog(z1, keyword)
        add_blog(z2, keyword)
        g.add_edge(partner, "post", z1)
        g.add_edge(seed, "post", z2)
        for i in range(k):
            shared = f"shared{r}_{i}"
            add_blog(shared, None)
            g.add_edge(partner, "like", shared)
            g.add_edge(seed, "like", shared)

    # -- benign look-alikes: shared likes, innocent keywords -------------
    for b in range(n_benign_pairs):
        a1, a2 = f"pal{b}a", f"pal{b}b"
        add_account(a1, is_fake=0)
        add_account(a2, is_fake=0)
        truth.benign_lookalikes.append(a1)
        z1, z2 = f"palpost{b}a", f"palpost{b}b"
        add_blog(z1, f"topic{b}")
        add_blog(z2, f"topic{b}")
        g.add_edge(a1, "post", z1)
        g.add_edge(a2, "post", z2)
        for i in range(k):
            shared = f"palshared{b}_{i}"
            add_blog(shared, None)
            g.add_edge(a1, "like", shared)
            g.add_edge(a2, "like", shared)

    # -- background noise -------------------------------------------------
    blogs = [f"noise_blog{i}" for i in range(n_background_accounts)]
    for blog in blogs:
        add_blog(blog, None)
    for i in range(n_background_accounts):
        account = f"user{i}"
        add_account(account, is_fake=0)
        for blog in rng.sample(blogs, k=min(3, len(blogs))):
            g.add_edge(account, rng.choice(["like", "post"]), blog)

    return g, truth
