"""Community-structured workloads: the graphs fragmentation is for.

Uniform random graphs are the worst case for any edge-cut partitioner —
every node's neighbors are spread uniformly, so borders approach the
whole exterior and fragment-resident state approaches |G| (the
fragments benchmark reports this honestly).  Real graphs are not like
that: social and knowledge graphs cluster.  :func:`clustered_workload`
plants that structure deliberately — ``n_clusters`` communities with
dense intra-cluster wiring and a controllable trickle of cross-cluster
edges — so the greedy partitioner can find cuts whose borders are small
and the fragment layer can demonstrate its O(|G|/k + borders) broadcast
and memory profile.

Nodes, labels, attributes and the rule set are the same vocabulary as
:mod:`repro.workloads.random_graphs` (``user`` / ``item`` / ``shop``,
``buys`` / ``sells`` / ``rates``, :func:`bounded_rule_set`), so every
validation path runs unchanged on either family.
"""

from __future__ import annotations

import random

from repro.graph.graph import Graph

#: Same vocabulary as the random validation workload.
_NODE_LABELS = ("user", "item", "shop")
_EDGE_LABELS = ("buys", "sells", "rates")
_ATTRIBUTE_NAMES = ("score", "region")
_ATTRIBUTE_VALUES = (1, 2, 3)


def clustered_workload(
    n_nodes: int,
    n_clusters: int = 8,
    intra_degree: float = 4.0,
    cross_fraction: float = 0.05,
    rng: random.Random | int | None = None,
    attribute_probability: float = 0.8,
) -> Graph:
    """A community-structured labeled graph.

    ``n_nodes`` spread over ``n_clusters`` equal communities; each node
    gets ~``intra_degree`` edges to members of its own community, and a
    ``cross_fraction`` share of all edges is rewired across communities
    (the cut a partitioner must discover).  Deterministic for a given
    ``rng`` seed.
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if not 0.0 <= cross_fraction <= 1.0:
        raise ValueError(f"cross_fraction must be in [0, 1], got {cross_fraction}")
    rng = rng if isinstance(rng, random.Random) else random.Random(rng or 0)

    graph = Graph()
    clusters: list[list[str]] = [[] for _ in range(n_clusters)]
    for position in range(n_nodes):
        cluster = position % n_clusters
        node_id = f"c{cluster}_n{position // n_clusters}"
        label = _NODE_LABELS[position % len(_NODE_LABELS)]
        graph.add_node(node_id, label)
        clusters[cluster].append(node_id)
        for name in _ATTRIBUTE_NAMES:
            if rng.random() < attribute_probability:
                graph.set_attribute(node_id, name, rng.choice(_ATTRIBUTE_VALUES))

    target_edges = int(n_nodes * intra_degree / 2)
    for _ in range(target_edges):
        if rng.random() < cross_fraction and n_clusters > 1:
            source_cluster, target_cluster = rng.sample(range(n_clusters), 2)
        else:
            source_cluster = target_cluster = rng.randrange(n_clusters)
        members_s = clusters[source_cluster]
        members_t = clusters[target_cluster]
        if not members_s or not members_t:
            continue
        source = rng.choice(members_s)
        target = rng.choice(members_t)
        if source == target:
            continue
        graph.add_edge(source, rng.choice(_EDGE_LABELS), target)
    return graph


__all__ = ["clustered_workload"]
