"""Synthetic knowledge base with planted Example 1 inconsistencies.

Real knowledge bases (Yago3, DBPedia) cannot ship with the repository,
so this generator produces property graphs with the same entity types
and relationship shapes the paper's Example 1 draws on — products and
their creators, countries and capitals, taxonomies with inherited
attributes, family relations, and the album/artist world of the key
examples — and plants each inconsistency class at a controlled rate.
Every planting is recorded so detection quality can be scored exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graph.graph import Graph


@dataclass
class PlantedErrors:
    """Ground truth: ids of the nodes involved in each planted error."""

    wrong_creator: list[str] = field(default_factory=list)
    double_capital: list[str] = field(default_factory=list)
    broken_inheritance: list[str] = field(default_factory=list)
    child_and_parent: list[str] = field(default_factory=list)
    duplicate_albums: list[tuple[str, str]] = field(default_factory=list)

    def total(self) -> int:
        return (
            len(self.wrong_creator)
            + len(self.double_capital)
            + len(self.broken_inheritance)
            + len(self.child_and_parent)
            + len(self.duplicate_albums)
        )


def synthetic_knowledge_base(
    n_products: int = 20,
    n_countries: int = 10,
    n_species: int = 10,
    n_families: int = 10,
    n_albums: int = 10,
    error_rate: float = 0.2,
    rng: random.Random | int | None = None,
) -> tuple[Graph, PlantedErrors]:
    """Generate a KB graph and the ground-truth planted errors.

    ``error_rate`` is the per-entity probability of planting the
    corresponding inconsistency.
    """
    rng = rng if isinstance(rng, random.Random) else random.Random(rng or 0)
    g = Graph()
    errors = PlantedErrors()

    # -- products and creators (ϕ1 territory) --------------------------
    for i in range(n_products):
        product = f"prod{i}"
        creator = f"maker{i}"
        g.add_node(product, "product", type="video game", title=f"Game {i}")
        if rng.random() < error_rate:
            g.add_node(creator, "person", type="psychologist", name=f"Maker {i}")
            errors.wrong_creator.append(product)
        else:
            g.add_node(creator, "person", type="programmer", name=f"Maker {i}")
        g.add_edge(creator, "create", product)

    # -- countries and capitals (ϕ2) ------------------------------------
    for i in range(n_countries):
        country = f"country{i}"
        g.add_node(country, "country", name=f"Country {i}")
        capital = f"cap{i}"
        g.add_node(capital, "city", name=f"Capital {i}")
        g.add_edge(country, "capital", capital)
        if rng.random() < error_rate:
            extra = f"cap{i}x"
            g.add_node(extra, "city", name=f"Other Capital {i}")
            g.add_edge(country, "capital", extra)
            errors.double_capital.append(country)

    # -- taxonomy with attribute inheritance (ϕ3) -----------------------
    for i in range(n_species):
        parent = f"class{i}"
        child = f"species{i}"
        g.add_node(parent, "class", can_fly="yes")
        if rng.random() < error_rate:
            g.add_node(child, "species", can_fly="no")
            errors.broken_inheritance.append(child)
        else:
            g.add_node(child, "species", can_fly="yes")
        g.add_edge(child, "is_a", parent)

    # -- family relations (ϕ4) ------------------------------------------
    for i in range(n_families):
        junior = f"junior{i}"
        senior = f"senior{i}"
        g.add_node(junior, "person", name=f"Junior {i}")
        g.add_node(senior, "person", name=f"Senior {i}")
        g.add_edge(junior, "child", senior)
        if rng.random() < error_rate:
            g.add_edge(junior, "parent", senior)
            errors.child_and_parent.append(junior)

    # -- albums and artists (ψ1/ψ2 entity resolution) --------------------
    for i in range(n_albums):
        album = f"album{i}"
        artist = f"artist{i}"
        g.add_node(album, "album", title=f"Album {i}", release=1980 + i)
        g.add_node(artist, "artist", name=f"Artist {i}")
        g.add_edge(album, "primary_artist", artist)
        if rng.random() < error_rate:
            # A duplicate entity: same title/release, same artist node.
            duplicate = f"album{i}dup"
            g.add_node(duplicate, "album", title=f"Album {i}", release=1980 + i)
            g.add_edge(duplicate, "primary_artist", artist)
            errors.duplicate_albums.append((album, duplicate))

    return g, errors
