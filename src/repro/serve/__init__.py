"""repro.serve — the violation-subscription push server.

The streaming layer made violation maintenance continuous
(:class:`~repro.streaming.ledger.ViolationLedger` emits exact per-batch
deltas); this package makes it a **service**: a long-running, stdlib-only
asyncio server that accepts :class:`~repro.graph.update.GraphUpdate`
batches over a socket, applies them atomically through the durable
update log and the ledger (any backend — serial, engine-pooled, or
fragment-routed), and *pushes* each batch's violation delta to every
subscribed client the moment it exists.

The architecture is the coordinator-entity pattern: the ledger is the
coordinator (one writer applying updates), subscribers are the entities
(many readers, each with a server-side filter over dependency ids, node
sets, and label predicates), and a late attacher is bootstrapped with a
snapshot of the current violation set instead of a replay.  Slow
consumers get bounded per-subscriber queues with an explicit
drop-oldest + ``resync`` overflow policy, so one stalled reader never
backpressures the ledger.

* :mod:`repro.serve.protocol` — the wire codec: canonical JSON frames
  in length-prefixed or line-delimited framing (auto-detected from the
  first byte).  The contract is specified in ``docs/serve-protocol.md``
  and conformance-tested against this module.
* :mod:`repro.serve.filters` — server-side subscription filters.
* :mod:`repro.serve.server` — :class:`ViolationServer`, the coordinator.
* :mod:`repro.serve.client` — :class:`ServeClient`, the asyncio client
  behind ``cli subscribe``, the live-monitoring example, and the load
  harness.

Typical use::

    server = ViolationServer.from_log("updates.jsonl", sigma,
                                      base_graph=g, checkpoint_every=50)
    await server.start()
    ...
    client = await ServeClient.connect("127.0.0.1", server.port)
    bootstrap = await client.subscribe({"labels": ["city"]})
    async for event in client.events():   # delta / resync / bye
        handle(event)
"""

from repro.serve.client import ServeClient
from repro.serve.filters import SubscriptionFilter
from repro.serve.protocol import (
    CLIENT_FRAME_TYPES,
    FRAME_TYPES,
    LENGTH_PREFIXED,
    LINE_DELIMITED,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    SERVER_FRAME_TYPES,
    decode_frames,
    decode_payload,
    encode_frame,
    encode_payload,
)
from repro.serve.server import DEFAULT_QUEUE_SIZE, ViolationServer

__all__ = [
    "CLIENT_FRAME_TYPES",
    "DEFAULT_QUEUE_SIZE",
    "FRAME_TYPES",
    "LENGTH_PREFIXED",
    "LINE_DELIMITED",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SERVER_FRAME_TYPES",
    "ServeClient",
    "SubscriptionFilter",
    "ViolationServer",
    "decode_frames",
    "decode_payload",
    "encode_frame",
    "encode_payload",
]
