"""An asyncio client for the violation-subscription push protocol.

:class:`ServeClient` speaks the wire contract of
``docs/serve-protocol.md``: it connects, consumes the ``hello``
greeting, and then multiplexes the connection between request/response
traffic (``subscribe`` → ``bootstrap``, ``update`` → ``ack``/``error``)
and the asynchronous push stream (``delta`` / ``resync`` / ``bootstrap``
re-bases / ``bye``).  A background reader task routes each incoming
frame: ``ack`` and non-fatal ``error`` frames resolve the oldest
pending request, everything else lands on the event queue read by
:meth:`events` / :meth:`next_event`.

The CLI ``subscribe`` subcommand and the load harness are thin wrappers
over this class; ``examples/live_monitoring.py`` shows the intended
shape of a monitoring consumer.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, AsyncIterator

from repro.graph.io import update_to_dict
from repro.graph.update import GraphUpdate
from repro.telemetry import trace as _trace

from repro.serve.filters import SubscriptionFilter
from repro.serve.protocol import (
    LENGTH_PREFIXED,
    MAX_FRAME_BYTES,
    ProtocolError,
    attach_trace,
    read_frame,
    write_frame,
)

#: Frame types routed to a pending request instead of the event stream.
_RESPONSE_TYPES = ("ack", "error")


class ServeClient:
    """One connection to a :class:`~repro.serve.server.ViolationServer`.

    Use :meth:`connect` (the constructor wires an already-open stream
    pair).  The client works in either framing; the server adapts to
    whichever the first frame uses.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        framing: str = LENGTH_PREFIXED,
    ):
        self._reader = reader
        self._writer = writer
        self.framing = framing
        self.hello: dict[str, Any] | None = None
        self._events: asyncio.Queue = asyncio.Queue()
        self._pending: deque[asyncio.Future] = deque()
        self._task: asyncio.Task | None = None
        self.closed = False

    @classmethod
    async def connect(
        cls, host: str, port: int, *, framing: str = LENGTH_PREFIXED
    ) -> "ServeClient":
        """Open a connection, consume ``hello``, start the reader task."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES + 16
        )
        client = cls(reader, writer, framing)
        await client._start()
        return client

    async def _start(self) -> None:
        """Spawn the reader task.

        The server stays silent until the client's first byte has told
        it which framing to speak, so the ``hello`` greeting is consumed
        lazily (:meth:`_ensure_hello`) after the first frame is written
        rather than here — reading it at connect time would deadlock.
        """
        self._task = asyncio.get_running_loop().create_task(self._route())

    async def _ensure_hello(self) -> None:
        if self.hello is None:
            frame = await self._events.get()
            if frame.get("type") != "hello":
                raise ProtocolError(f"expected hello, got {frame.get('type')!r}")
            self.hello = frame

    async def _route(self) -> None:
        """The reader task: dispatch responses, queue pushed events."""
        try:
            while True:
                frame = await read_frame(self._reader, self.framing)
                if frame is None:
                    break
                if frame["type"] in _RESPONSE_TYPES and self._pending:
                    future = self._pending.popleft()
                    if not future.done():
                        future.set_result(frame)
                    continue
                await self._events.put(frame)
                if frame["type"] == "bye":
                    break
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            self.closed = True
            await self._events.put({"type": "bye", "reason": "connection closed"})
            for future in self._pending:
                if not future.done():
                    future.set_exception(ConnectionError("connection closed"))

    async def _request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Send one frame and await its ``ack``/``error`` response."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(future)
        await write_frame(self._writer, frame, self.framing)
        await self._ensure_hello()
        return await future

    async def subscribe(
        self, filter: SubscriptionFilter | dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Subscribe (or re-subscribe with a new filter) and return the
        bootstrap frame.  ``filter`` is a :class:`SubscriptionFilter`
        or a plain dictionary following ``docs/serve-protocol.md``
        (``rules`` / ``nodes`` / ``labels``; omitted = everything)."""
        if isinstance(filter, SubscriptionFilter):
            filter = filter.to_dict()
        frame: dict[str, Any] = {"type": "subscribe"}
        if filter:
            frame["filter"] = filter
        await write_frame(self._writer, frame, self.framing)
        await self._ensure_hello()
        event = await self.next_event()
        if event.get("type") == "error":
            raise ProtocolError(event.get("message", "subscribe rejected"))
        if event.get("type") != "bootstrap":
            raise ProtocolError(f"expected bootstrap, got {event.get('type')!r}")
        return event

    async def send_update(
        self,
        update: "GraphUpdate | dict[str, Any]",
        *,
        trace: "_trace.TraceContext | None" = None,
    ) -> dict[str, Any]:
        """Submit one batch; returns the ``ack`` frame, or raises
        :class:`~repro.serve.protocol.ProtocolError` on rejection.

        ``trace`` attaches a trace context to the frame's optional
        ``trace`` field; when omitted, the client's active trace (if
        telemetry is enabled and a :func:`repro.telemetry.trace.tracing`
        block is open) propagates automatically, so the server-side
        batch tree hangs off the caller's span.  The ``ack`` echoes the
        batch's ``trace_id``.
        """
        if isinstance(update, GraphUpdate):
            update = update_to_dict(update)
        if trace is None:
            trace = _trace.propagation_context()
        frame = attach_trace({"type": "update", "update": update}, trace)
        response = await self._request(frame)
        if response["type"] == "error":
            raise ProtocolError(response.get("message", "update rejected"))
        return response

    async def next_event(self, timeout: float | None = None) -> dict[str, Any]:
        """The next pushed frame (bootstrap / delta / resync / bye)."""
        await self._ensure_hello()
        if timeout is None:
            return await self._events.get()
        return await asyncio.wait_for(self._events.get(), timeout)

    async def events(self) -> AsyncIterator[dict[str, Any]]:
        """Iterate pushed frames until the connection says ``bye``."""
        while True:
            frame = await self.next_event()
            yield frame
            if frame.get("type") == "bye":
                return

    async def close(self) -> None:
        """Say ``bye`` (best effort) and tear the connection down."""
        if not self.closed:
            try:
                await write_frame(
                    self._writer, {"type": "bye", "reason": "client closing"}, self.framing
                )
            except (ConnectionError, OSError):
                pass
        self.closed = True
        if self._task is not None:
            self._task.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()


__all__ = ["ServeClient"]
