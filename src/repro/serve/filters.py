"""Server-side subscription filters over violation streams.

A subscriber attaches with an optional filter narrowing which violations
it wants pushed.  Three predicates, combined with AND (an omitted or
empty predicate matches everything):

* ``rules`` — dependency selectors: rule names (strings) or Σ positions
  (integers).  A violation matches when its dependency's name or
  position is in the set.
* ``nodes`` — node ids.  A violation matches when any node of its match
  embedding is in the set.
* ``labels`` — node labels.  A violation matches when any matched
  pattern variable's label is in the set; a :data:`~repro.patterns.WILDCARD`
  variable is resolved against the live graph (and skipped when its
  node has since been deleted, which keeps evaluation deterministic for
  retired violations).

Filters are evaluated **server-side**, once per (subscriber, violation):
the subscriber receives every delta frame (so sequence numbers stay
gap-free, see ``docs/serve-protocol.md``), but each frame carries only
its matching violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.graph.graph import Graph
from repro.patterns import WILDCARD
from repro.reasoning.validation import Violation
from repro.serve.protocol import ProtocolError

_FILTER_FIELDS = ("rules", "nodes", "labels")


@dataclass(frozen=True)
class SubscriptionFilter:
    """One subscriber's violation predicate (see the module docstring)."""

    rule_names: frozenset[str] = frozenset()
    rule_positions: frozenset[int] = frozenset()
    nodes: frozenset[str] = frozenset()
    labels: frozenset[str] = frozenset()

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "SubscriptionFilter":
        """Build a filter from a ``subscribe`` frame's ``filter`` field.

        ``None`` or ``{}`` is the match-all filter.  Unknown fields and
        ill-typed entries raise :class:`~repro.serve.protocol.ProtocolError`
        (surfaced to the client as a ``bad-filter`` error frame).
        """
        if data is None:
            return cls()
        if not isinstance(data, dict):
            raise ProtocolError(f"filter must be a JSON object, got {type(data).__name__}")
        unknown = sorted(set(data) - set(_FILTER_FIELDS))
        if unknown:
            raise ProtocolError(f"unknown filter field(s): {', '.join(unknown)}")
        rule_names: set[str] = set()
        rule_positions: set[int] = set()
        for entry in _string_or_int_list(data, "rules"):
            if isinstance(entry, bool):
                raise ProtocolError(f"filter rules entry must be a name or position, got {entry!r}")
            if isinstance(entry, int):
                rule_positions.add(entry)
            else:
                rule_names.add(entry)
        nodes = frozenset(_string_list(data, "nodes"))
        labels = frozenset(_string_list(data, "labels"))
        return cls(frozenset(rule_names), frozenset(rule_positions), nodes, labels)

    def to_dict(self) -> dict[str, Any]:
        """The frame representation (empty predicates omitted)."""
        payload: dict[str, Any] = {}
        rules = sorted(self.rule_names) + sorted(self.rule_positions)
        if rules:
            payload["rules"] = rules
        if self.nodes:
            payload["nodes"] = sorted(self.nodes)
        if self.labels:
            payload["labels"] = sorted(self.labels)
        return payload

    @property
    def is_all(self) -> bool:
        """True for the match-everything filter (no predicates set)."""
        return not (self.rule_names or self.rule_positions or self.nodes or self.labels)

    def matches(self, position: int, violation: Violation, graph: Graph) -> bool:
        """Does one violation pass this filter?

        ``position`` is the dependency's index in the server's Σ;
        ``graph`` is consulted only to resolve wildcard variable labels.
        """
        if self.rule_names or self.rule_positions:
            name = violation.ged.name
            if position not in self.rule_positions and (
                name is None or name not in self.rule_names
            ):
                return False
        if self.nodes and not any(node in self.nodes for _, node in violation.match):
            return False
        if self.labels:
            pattern = violation.ged.pattern
            for variable, node in violation.match:
                label = pattern.label_of(variable)
                if label == WILDCARD:
                    if not graph.has_node(node):
                        continue
                    label = graph.node(node).label
                if label in self.labels:
                    break
            else:
                return False
        return True


def _string_list(data: dict[str, Any], field: str) -> list[str]:
    """A filter field as a list of strings (missing = empty)."""
    entries = data.get(field, [])
    if not isinstance(entries, list) or not all(isinstance(e, str) for e in entries):
        raise ProtocolError(f"filter {field} must be a list of strings")
    return entries


def _string_or_int_list(data: dict[str, Any], field: str) -> list[str | int]:
    """A filter field as a list of strings or integers (missing = empty)."""
    entries = data.get(field, [])
    if not isinstance(entries, list) or not all(
        isinstance(e, (str, int)) for e in entries
    ):
        raise ProtocolError(f"filter {field} must be a list of rule names or positions")
    return entries


__all__ = ["SubscriptionFilter"]
