"""The violation-subscription push server.

:class:`ViolationServer` is the coordinator of the coordinator-entity
pattern the streaming layer was built toward: one
:class:`~repro.streaming.ledger.ViolationLedger` applies every update
batch (any backend — serial, engine-pooled, or fragment-routed), and a
dispatcher fans the exact per-batch violation delta out to every
subscribed connection.  Subscribers are the entities: they attach with
a server-side :class:`~repro.serve.filters.SubscriptionFilter`, receive
a **bootstrap snapshot** of the current violation set on attach (late
attachers are first-class), and from then on get one ``delta`` frame
per applied batch — gap-free ``seq`` numbering, so a client can verify
it lost nothing.

Durability rides the existing update log
(:class:`~repro.graph.io.UpdateLogWriter`): a batch is acknowledged
only after it is appended to the log *and* applied through the ledger,
and a restarted server resumes — state, ``seq`` numbering, and all —
from :func:`~repro.graph.io.replay_update_log` (see
:meth:`ViolationServer.from_log`).

Slow consumers never backpressure the ledger: each subscriber owns a
**bounded queue** drained by its own writer task, and the apply path
only ever enqueues without awaiting.  On overflow the oldest queued
frames are dropped and a ``resync`` marker is enqueued; when the writer
task drains the marker it sends the ``resync`` frame followed by a
fresh bootstrap, and suppresses any stale queued deltas at or below the
new bootstrap's ``seq`` — the client never sees a gap or a duplicate,
only an explicit re-base.  The full wire contract lives in
``docs/serve-protocol.md``.

The same listener doubles as the live ops surface (spec §9): a
connection whose first byte is an HTTP method letter is answered as a
one-shot HTTP/1.1 exchange — ``GET /healthz`` (liveness JSON) or
``GET /metrics`` (the Prometheus exposition) — and closed.  Protocol
clients are unaffected: their first byte is ``0x00`` or ``{``.

With telemetry enabled every applied batch runs under a
:class:`~repro.telemetry.trace.TraceContext` — adopted from the update
frame's optional ``trace`` field when the client sent one, freshly
minted otherwise — so the batch's validate / log-append / ledger
refresh / worker shards / push deliveries assemble into one causal
tree (docs/telemetry.md).
"""

from __future__ import annotations

import asyncio
import json
import time
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.deps.ged import GED
from repro.errors import GraphError, ReproError
from repro.graph.graph import Graph
from repro.graph.io import UpdateLogWriter, replay_update_log, update_from_dict
from repro.graph.update import GraphUpdate, validate_update
from repro.streaming.ledger import StreamDelta, ViolationLedger, violation_to_dict
from repro.telemetry import metrics as _metrics
from repro.telemetry import spans as _spans
from repro.telemetry import trace as _trace
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.report import histogram_quantile

from repro.serve.filters import SubscriptionFilter
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    detect_framing,
    extract_trace,
    read_frame,
    write_frame,
)

#: First bytes that select the HTTP ops surface instead of the wire
#: protocol (GET / HEAD — all the surface serves).
_HTTP_FIRST_BYTES = b"GH"

#: Default bound on one subscriber's outbound queue (frames).
DEFAULT_QUEUE_SIZE = 256

_RESYNC = "resync"
_FRAME = "frame"
_CLOSE = "close"


class _Subscriber:
    """One subscribed connection: a filter, a bounded outbound queue,
    and the writer task that drains it.

    The queue holds ``(kind, enqueued_at, frame, trace)`` items;
    ``kind`` is a delta/bootstrap frame, a resync marker, or the close
    sentinel, and ``trace`` is the batch's
    :class:`~repro.telemetry.trace.TraceContext` (``None`` for frames
    outside a batch).  All enqueueing is non-blocking (the apply path
    must never await a slow consumer); the writer task owns every
    actual socket write and records one ``serve.push`` span per traced
    delivery — post-hoc via :func:`repro.telemetry.spans.record_span`,
    because holding a thread-local trace across an ``await`` would
    leak it into unrelated asyncio tasks.
    """

    def __init__(
        self,
        server: "ViolationServer",
        writer: asyncio.StreamWriter,
        framing: str,
        queue_size: int,
    ):
        self.server = server
        self.writer = writer
        self.framing = framing
        self.filter = SubscriptionFilter()
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.task: asyncio.Task | None = None
        self.alive = True
        self.dropped = 0  # frames dropped since the last resync marker
        self.last_bootstrap_seq = -1  # writer-task side: stale-delta suppression

    def start(self) -> None:
        """Spawn the writer task (once, after the first subscribe)."""
        if self.task is None:
            self.task = asyncio.get_running_loop().create_task(self._drain())

    def enqueue_frame(
        self, frame: dict[str, Any], trace: "_trace.TraceContext | None" = None
    ) -> None:
        """Queue one frame, applying the overflow policy on a full queue."""
        self._put((_FRAME, time.perf_counter(), frame, trace))

    def enqueue_close(self) -> None:
        """Queue the close sentinel (drains ahead of it, then ``bye``)."""
        self._put((_CLOSE, time.perf_counter(), None, None))

    def _put(self, item: tuple) -> None:
        if not self.alive:
            return
        try:
            self.queue.put_nowait(item)
        except asyncio.QueueFull:
            self._overflow(item)
        sink = _metrics.sink()
        if sink.enabled:
            sink.observe(
                "serve.queue_depth", self.queue.qsize(), _metrics.DEFAULT_BOUNDS
            )

    def _overflow(self, item: tuple) -> None:
        """Drop-oldest overflow: every queued frame ahead of the marker
        is stale once any frame is lost (a gap forces a re-bootstrap),
        so the whole backlog is dropped and one resync marker takes its
        place, followed by the item that overflowed."""
        dropped = 0
        while True:
            try:
                kind, _, _, _ = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if kind == _FRAME:
                dropped += 1
            elif kind == _CLOSE:
                # Never lose a close: put it back behind the marker.
                item = (_CLOSE, time.perf_counter(), None, None)
        self.dropped += dropped
        self.server._count("serve.frames_dropped", dropped)
        self.queue.put_nowait((_RESYNC, time.perf_counter(), None, None))
        if item[0] != _RESYNC:
            self.queue.put_nowait(item)

    async def _drain(self) -> None:
        """The writer task: one socket write at a time, in queue order."""
        try:
            while True:
                kind, enqueued_at, frame, trace = await self.queue.get()
                if kind == _CLOSE:
                    await self._send({"type": "bye", "reason": "shutdown"})
                    break
                if kind == _RESYNC:
                    await self._resync()
                    continue
                if frame.get("type") == "delta" and frame["seq"] <= self.last_bootstrap_seq:
                    continue  # stale: already covered by the last bootstrap
                if frame.get("type") == "bootstrap":
                    self.last_bootstrap_seq = frame["seq"]
                await self._send(frame)
                elapsed = time.perf_counter() - enqueued_at
                sink = _metrics.sink()
                if sink.enabled:
                    sink.observe(
                        "serve.push_seconds", elapsed, _metrics.SECONDS_BOUNDS
                    )
                    if trace is not None:
                        _spans.record_span(
                            "serve.push",
                            elapsed,
                            trace=trace,
                            frame=frame.get("type"),
                            seq=frame.get("seq"),
                        )
                self.server._push_samples.append(elapsed)
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            self.alive = False
            self.server._unsubscribe(self)

    async def _resync(self) -> None:
        """Send the resync marker plus a fresh bootstrap of current state."""
        dropped, self.dropped = self.dropped, 0
        self.server._count("serve.resyncs")
        await self._send(
            {"type": "resync", "seq": self.server.seq, "dropped": dropped}
        )
        frame = self.server._bootstrap_frame(self.filter)
        self.last_bootstrap_seq = frame["seq"]
        await self._send(frame)

    async def _send(self, frame: dict[str, Any]) -> None:
        await write_frame(self.writer, frame, self.framing)
        self.server._count("serve.frames_sent")


class ViolationServer:
    """A long-running asyncio push server over one (G, Σ, update log).

    Parameters
    ----------
    graph:
        the live data graph; with ``log_path`` set it must correspond to
        the log's tail state (:meth:`from_log` guarantees this).
    sigma:
        the dependency set, fixed for the server's lifetime.
    log_path:
        the durable JSONL update log (``docs/update-log.md``); every
        accepted batch is appended before it is applied, so a restarted
        server resumes exactly.  ``None`` runs ephemeral (no durability).
    backend / workers / fragment_mode:
        forwarded to the :class:`~repro.streaming.ledger.ViolationLedger`.
    checkpoint_every:
        forwarded to the log writer (a checkpoint every k batches keeps
        recovery O(tail)); a clean :meth:`stop` also checkpoints.
    queue_size:
        per-subscriber outbound queue bound (frames) before the
        drop-oldest + resync overflow policy engages.
    host / port:
        listen address; port 0 picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        graph: Graph,
        sigma: Sequence[GED],
        *,
        log_path: str | Path | None = None,
        backend: str = "serial",
        workers: int | None = None,
        fragment_mode: str = "hash",
        checkpoint_every: int | None = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.graph = graph
        self.sigma = list(sigma)
        self.host = host
        self._requested_port = port
        self._log_writer: UpdateLogWriter | None = None
        if log_path is not None:
            fresh = not Path(log_path).exists()
            self._log_writer = UpdateLogWriter(log_path, checkpoint_every=checkpoint_every)
            if fresh:
                self._log_writer.write_base(graph)
        self.ledger = ViolationLedger(
            graph, sigma, backend=backend, workers=workers, fragment_mode=fragment_mode
        )
        self.ledger.bootstrap()
        if self._log_writer is not None:
            self.ledger.seq = self._log_writer.seq
        #: The log seq this incarnation resumed at; changes on restart,
        #: so a reconnecting client can observe that it crossed one.
        self.epoch = self.ledger.seq
        self._queue_size = queue_size
        self._apply_lock = asyncio.Lock()
        self._server: asyncio.base_events.Server | None = None
        self._subscribers: list[_Subscriber] = []
        self._stopped = asyncio.Event()
        self._batches_applied = 0
        self._max_batches: int | None = None
        self._counters: dict[str, int] = {}
        self._apply_seconds = 0.0
        self._push_samples: list[float] = []

    # ------------------------------------------------------------------
    # Construction from the durable log
    # ------------------------------------------------------------------
    @classmethod
    def from_log(
        cls,
        log_path: str | Path,
        sigma: Sequence[GED],
        *,
        base_graph: Graph | None = None,
        **kwargs: Any,
    ) -> "ViolationServer":
        """Resume (or begin) serving from a durable update log.

        An existing log is replayed — latest checkpoint plus tail — and
        the server continues its ``seq`` numbering; a fresh log records
        ``base_graph`` as its seq-0 base checkpoint.  Exactly one of
        the two sources must determine the base state.
        """
        path = Path(log_path)
        if path.exists():
            replay = replay_update_log(path, base_graph)
            graph = replay.graph
        else:
            if base_graph is None:
                raise GraphError(
                    f"update log {path} does not exist; pass base_graph to start fresh"
                )
            graph = base_graph
        return cls(graph, sigma, log_path=path, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolve :attr:`port`) and begin accepting."""
        self._server = await asyncio.start_server(
            self._handle,
            self.host,
            self._requested_port,
            limit=MAX_FRAME_BYTES + 16,
        )

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def seq(self) -> int:
        """The last applied batch's sequence number."""
        return self.ledger.seq

    @property
    def subscriber_count(self) -> int:
        """Currently attached subscribers."""
        return len(self._subscribers)

    async def run(self, max_batches: int | None = None) -> None:
        """Serve until :meth:`stop` (or until ``max_batches`` batches
        have been applied — the CLI's bounded smoke mode)."""
        if self._server is None:
            await self.start()
        self._max_batches = max_batches
        await self._stopped.wait()

    async def stop(self, *, checkpoint: bool = True) -> None:
        """Graceful shutdown: ``bye`` every subscriber, close the
        listener, optionally checkpoint the log (making the next boot's
        recovery O(1)), and release the ledger's worker pool.

        ``checkpoint=False`` skips the shutdown checkpoint — the
        crash-simulation mode the resume tests use, leaving recovery to
        replay the update tail.
        """
        for subscriber in list(self._subscribers):
            subscriber.enqueue_close()
        tasks = [s.task for s in list(self._subscribers) if s.task is not None]
        if tasks:
            await asyncio.wait(tasks, timeout=1.0)
        for subscriber in list(self._subscribers):
            if subscriber.task is not None and not subscriber.task.done():
                subscriber.task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._log_writer is not None:
            if checkpoint and self._batches_applied:
                self._log_writer.checkpoint(self.graph)
            self._log_writer.close()
            self._log_writer = None
        self.ledger.close()
        self._stopped.set()

    async def __aenter__(self) -> "ViolationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        if not self._stopped.is_set():
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """One connection: detect framing, greet, then serve frames.

        A first byte of ``G``/``H`` (GET/HEAD) diverts the connection
        to the one-shot HTTP ops surface before framing detection —
        :func:`detect_framing` rejects anything but ``0x00``/``{``.
        """
        self._count("serve.connections")
        subscriber: _Subscriber | None = None
        try:
            first = await reader.readexactly(1)
            reader._buffer[0:0] = first  # type: ignore[attr-defined]
            if first in _HTTP_FIRST_BYTES:
                await self._handle_http(reader, writer)
                return
            framing = await detect_framing(reader)
            await write_frame(writer, self._hello_frame(), framing)
            while True:
                try:
                    frame = await read_frame(reader, framing)
                except ProtocolError as exc:
                    await write_frame(
                        writer,
                        {"type": "error", "code": "bad-frame", "message": str(exc), "fatal": True},
                        framing,
                    )
                    await write_frame(writer, {"type": "bye", "reason": "protocol error"}, framing)
                    break
                if frame is None or frame["type"] == "bye":
                    break
                if frame["type"] == "subscribe":
                    subscriber = await self._on_subscribe(frame, writer, framing, subscriber)
                elif frame["type"] == "update":
                    await self._on_update(frame, writer, framing)
                else:
                    await write_frame(
                        writer,
                        {
                            "type": "error",
                            "code": "bad-type",
                            "message": f"clients may not send {frame['type']!r} frames",
                            "fatal": False,
                        },
                        framing,
                    )
        except (ConnectionError, asyncio.IncompleteReadError, ProtocolError, OSError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown: run the cleanup below and end *uncancelled*,
            # or 3.11's stream-protocol callback logs a spurious error
            # when it probes the finished task's exception.
            pass
        finally:
            if subscriber is not None:
                subscriber.alive = False
                self._unsubscribe(subscriber)
                if subscriber.task is not None:
                    subscriber.task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _on_subscribe(
        self,
        frame: dict[str, Any],
        writer: asyncio.StreamWriter,
        framing: str,
        subscriber: _Subscriber | None,
    ) -> _Subscriber | None:
        """Attach (or re-filter) a subscriber and enqueue its bootstrap."""
        try:
            flt = SubscriptionFilter.from_dict(frame.get("filter"))
        except ProtocolError as exc:
            await write_frame(
                writer,
                {"type": "error", "code": "bad-filter", "message": str(exc), "fatal": False},
                framing,
            )
            return subscriber
        if subscriber is None:
            subscriber = _Subscriber(self, writer, framing, self._queue_size)
            self._subscribers.append(subscriber)
            self._gauge_subscribers()
        subscriber.filter = flt
        self._count("serve.subscribes")
        # Bootstrap through the queue: it orders ahead of every delta
        # the apply path enqueues afterwards, and the writer task's
        # stale-delta suppression keys off its seq.
        subscriber.enqueue_frame(self._bootstrap_frame(flt))
        subscriber.start()
        return subscriber

    async def _on_update(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter, framing: str
    ) -> None:
        """Decode, validate, log, apply, fan out, acknowledge.

        With telemetry enabled the batch is traced: the context rides
        in from the frame's optional ``trace`` field (a traced client),
        or is minted here — either way the ack echoes the trace id so
        the publisher can find its batch in the export.
        """
        try:
            update = update_from_dict(frame.get("update"))
        except (GraphError, TypeError, ValueError) as exc:
            self._count("serve.updates_rejected")
            await write_frame(
                writer,
                {"type": "error", "code": "bad-update", "message": str(exc), "fatal": False},
                framing,
            )
            return
        ctx: _trace.TraceContext | None = None
        if _metrics.sink().enabled:
            ctx = extract_trace(frame)
            if ctx is None:
                ctx = _trace.start_trace()
        async with self._apply_lock:
            try:
                delta = self._apply(update, ctx)
            except ReproError as exc:
                self._count("serve.updates_rejected")
                await write_frame(
                    writer,
                    {"type": "error", "code": "bad-update", "message": str(exc), "fatal": False},
                    framing,
                )
                return
        ack = {
            "type": "ack",
            "seq": delta.seq,
            "introduced": len(delta.introduced),
            "retired": len(delta.retired),
            "updated": len(delta.updated),
        }
        if ctx is not None:
            ack["trace_id"] = ctx.trace_id
        await write_frame(writer, ack, framing)
        if self._max_batches is not None and self._batches_applied >= self._max_batches:
            await self.stop()

    # ------------------------------------------------------------------
    # The coordinator: apply one batch, fan the delta out
    # ------------------------------------------------------------------
    def _apply(
        self, update: GraphUpdate, ctx: "_trace.TraceContext | None" = None
    ) -> StreamDelta:
        """Validate, append to the durable log, refresh the ledger, and
        enqueue the per-subscriber filtered delta frames.

        Synchronous by design: no await between validation and fan-out,
        so subscribe/bootstrap handling can never observe a half-applied
        batch — which also makes it safe to run under ``tracing(ctx)``
        (the thread-local trace cannot leak across a task switch).
        Runs under the apply lock (batches are strictly serial).  With
        an export open, buffered trace records are flushed to disk
        after every batch.
        """
        started = time.perf_counter()
        with _trace.tracing(ctx):
            with _spans.span("serve.batch", size=update.size()):
                with _spans.span("serve.validate"):
                    # Validate against the live graph *before* touching the
                    # log: a rejected batch must leave no durable trace.
                    validate_update(self.graph, update)
                if self._log_writer is not None:
                    with _spans.span("serve.log_append"):
                        # No graph here: the batch is not applied yet, and a
                        # periodic checkpoint must capture post-batch state
                        # (written below).
                        self._log_writer.append(update)
                delta = self.ledger.refresh(update)
                if (
                    self._log_writer is not None
                    and self._log_writer.checkpoint_every
                    and delta.seq % self._log_writer.checkpoint_every == 0
                ):
                    self._log_writer.checkpoint(self.graph)
                self._batches_applied += 1
                self._count("serve.updates")
                push_ctx = _trace.propagation_context()
                for subscriber in list(self._subscribers):
                    subscriber.enqueue_frame(
                        self._delta_frame(delta, subscriber.filter), push_ctx
                    )
                    self._count("serve.deltas_pushed")
        elapsed = time.perf_counter() - started
        self._apply_seconds += elapsed
        sink = _metrics.sink()
        if sink.enabled:
            sink.observe("serve.apply_seconds", elapsed, _metrics.SECONDS_BOUNDS)
        _spans.flush_export()
        return delta

    # ------------------------------------------------------------------
    # The HTTP ops surface: /healthz and /metrics on the same listener
    # ------------------------------------------------------------------
    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP/1.1 request and let the caller close.

        Deliberately minimal (stdlib readers, two routes, always
        ``Connection: close``): this is a scrape/liveness surface, not
        a web server.  The caller's ``finally`` closes the writer.
        """
        try:
            request = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=5.0)
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            asyncio.LimitOverrunError,
        ):
            return
        request_line = request.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = request_line.split()
        method = parts[0] if parts else ""
        path = (parts[1] if len(parts) > 1 else "/").split("?", 1)[0]
        self._count("serve.http_requests")
        if path == "/healthz":
            body = (
                json.dumps(self._healthz_payload(), sort_keys=True) + "\n"
            ).encode("utf-8")
            status, content_type = "200 OK", "application/json"
        elif path == "/metrics":
            body = render_prometheus(self._scrape_snapshot()).encode("utf-8")
            status, content_type = "200 OK", "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = b'{"error":"not found"}\n'
            status, content_type = "404 Not Found", "application/json"
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head if method == "HEAD" else head + body)
        await writer.drain()

    def _healthz_payload(self) -> dict[str, Any]:
        """The ``/healthz`` body: liveness plus the headline gauges."""
        histograms = _metrics.snapshot().get("histograms", {})
        return {
            "status": "ok",
            "seq": self.seq,
            "epoch": self.epoch,
            "backend": self.ledger.backend,
            "subscribers": len(self._subscribers),
            "violations": len(self.ledger),
            "batches_applied": self._batches_applied,
            "queue_depth_p99": histogram_quantile(
                histograms.get("serve.queue_depth"), 0.99
            ),
            "telemetry": _metrics.enabled(),
        }

    def _scrape_snapshot(self) -> dict[str, Any]:
        """The snapshot ``/metrics`` renders.

        The telemetry registry, with the server's always-on counters
        folded in by max() — when telemetry is enabled the registry
        mirrors them already (``_count`` writes both), so taking the
        larger value avoids double counting while keeping the scrape
        meaningful with telemetry off.
        """
        snapshot = _metrics.snapshot()
        counters = snapshot["counters"]
        for name, value in self._counters.items():
            if counters.get(name, 0) < value:
                counters[name] = value
        gauges = snapshot["gauges"]
        gauges["serve.seq"] = self.seq
        gauges["serve.epoch"] = self.epoch
        gauges.setdefault("serve.subscribers", len(self._subscribers))
        return snapshot

    # ------------------------------------------------------------------
    # Frame builders
    # ------------------------------------------------------------------
    def _hello_frame(self) -> dict[str, Any]:
        """The greeting sent once per connection, before any request."""
        return {
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "server": "repro.serve",
            "epoch": self.epoch,
            "seq": self.seq,
            "rules": len(self.sigma),
            "violations": len(self.ledger),
        }

    def _bootstrap_frame(self, flt: SubscriptionFilter) -> dict[str, Any]:
        """The filtered current-state snapshot for one subscriber."""
        violations = [
            violation_to_dict(violation)
            for position, violation in self.ledger.entries()
            if self._filter_match(flt, position, violation)
        ]
        return {
            "type": "bootstrap",
            "seq": self.seq,
            "epoch": self.epoch,
            "violations": violations,
        }

    def _delta_frame(self, delta: StreamDelta, flt: SubscriptionFilter) -> dict[str, Any]:
        """One batch's delta, narrowed to a subscriber's filter.

        Every subscriber gets a frame for every batch — possibly with
        all three lists empty — so its ``seq`` stream stays gap-free
        and losing a frame is detectable.
        """
        position = self.ledger.position_of
        return {
            "type": "delta",
            "seq": delta.seq,
            "introduced": [
                violation_to_dict(v)
                for v in delta.introduced
                if self._filter_match(flt, position(v.ged), v)
            ],
            "retired": [
                violation_to_dict(v)
                for v in delta.retired
                if self._filter_match(flt, position(v.ged), v)
            ],
            "updated": [
                violation_to_dict(v)
                for v in delta.updated
                if self._filter_match(flt, position(v.ged), v)
            ],
        }

    def _filter_match(self, flt: SubscriptionFilter, position: int, violation) -> bool:
        """One filter evaluation, counted for the hit-rate telemetry."""
        if flt.is_all:
            return True
        matched = flt.matches(position, violation, self.graph)
        sink = _metrics.sink()
        if sink.enabled:
            sink.incr("serve.filter.hits" if matched else "serve.filter.misses")
        return matched

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _unsubscribe(self, subscriber: _Subscriber) -> None:
        """Detach a subscriber (death of its connection or writer task)."""
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)
            self._gauge_subscribers()

    def _gauge_subscribers(self) -> None:
        sink = _metrics.sink()
        if sink.enabled:
            sink.gauge("serve.subscribers", len(self._subscribers))

    def _count(self, name: str, value: int = 1) -> None:
        """Built-in counter (always on) plus the telemetry sink when enabled."""
        if value:
            self._counters[name] = self._counters.get(name, 0) + value
            sink = _metrics.sink()
            if sink.enabled:
                sink.incr(name, value)

    def stats(self) -> dict[str, Any]:
        """Lifetime serving statistics, independent of the telemetry
        registry (the load harness reads these; ``cli stats`` reads the
        registry's mirror of the same counters)."""
        return {
            **dict(sorted(self._counters.items())),
            "batches_applied": self._batches_applied,
            "apply_seconds": self._apply_seconds,
            "subscribers": len(self._subscribers),
            "seq": self.seq,
            "epoch": self.epoch,
            "push_samples": len(self._push_samples),
        }

    def push_latencies(self) -> list[float]:
        """Enqueue-to-written latency samples (seconds), in push order."""
        return list(self._push_samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ViolationServer(seq={self.seq}, epoch={self.epoch}, "
            f"subscribers={len(self._subscribers)}, backend={self.ledger.backend!r})"
        )


__all__ = ["DEFAULT_QUEUE_SIZE", "ViolationServer"]
