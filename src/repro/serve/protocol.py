"""The wire codec for the violation-subscription push protocol.

Frames are JSON objects with a mandatory ``type`` field, serialized in
one canonical byte encoding (:func:`encode_payload`: compact separators,
sorted keys, UTF-8) and shipped in one of two framings:

* **length-prefixed** (the default) — a 4-byte big-endian unsigned
  payload length followed by the payload.  Payloads are capped at
  :data:`MAX_FRAME_BYTES` (16 MiB − 1), so the first byte of every
  length prefix is ``0x00``.
* **line-delimited** — the payload followed by ``b"\\n"``, for
  ``nc``-style debugging.  Canonical payloads never contain newlines.

The two framings are distinguishable from the first byte of a
connection (``0x00`` versus ``{`` = ``0x7B``); the server uses
:func:`detect_framing` to adopt whichever the client speaks.

Every frame type, field, and guarantee is specified in
``docs/serve-protocol.md``; the fenced JSON examples there are
round-tripped through this module by ``tests/serve/test_protocol_doc.py``
so the document cannot drift from the code.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ReproError
from repro.telemetry.trace import TraceContext

#: Wire protocol version, carried by every ``hello`` frame.
PROTOCOL_VERSION = 1

#: Optional trace-context field on ``update`` frames (spec §8: adding
#: an optional field is compatible evolution — old peers ignore it).
TRACE_FIELD = "trace"

#: Hard cap on one frame's payload (16 MiB − 1).  Keeping the cap under
#: 2**24 guarantees the first length-prefix byte is 0x00, which is what
#: makes the two framings distinguishable from the first byte.
MAX_FRAME_BYTES = 2**24 - 1

#: Every frame type the protocol defines, by direction.
SERVER_FRAME_TYPES = ("hello", "bootstrap", "delta", "resync", "ack", "error", "bye")
CLIENT_FRAME_TYPES = ("subscribe", "update", "bye")
FRAME_TYPES = tuple(dict.fromkeys(SERVER_FRAME_TYPES + CLIENT_FRAME_TYPES))

#: The two framing modes.
LENGTH_PREFIXED = "length"
LINE_DELIMITED = "lines"
FRAMINGS = (LENGTH_PREFIXED, LINE_DELIMITED)


class ProtocolError(ReproError):
    """A malformed frame, oversized payload, or unknown frame type."""


def encode_payload(frame: dict[str, Any]) -> bytes:
    """Canonical frame bytes: compact, key-sorted JSON, UTF-8 encoded.

    The canonical encoding is what the conformance test pins down: a
    frame decodes and re-encodes byte-identically, regardless of the
    key order its producer used.
    """
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(frame).__name__}")
    frame_type = frame.get("type")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    try:
        payload = json.dumps(frame, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame is not JSON-representable: {exc}") from None
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return payload


def decode_payload(data: bytes) -> dict[str, Any]:
    """Parse and validate one frame payload (the inverse of
    :func:`encode_payload`, modulo key order)."""
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        frame = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(frame).__name__}")
    if frame.get("type") not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame.get('type')!r}")
    return frame


def encode_frame(frame: dict[str, Any], framing: str = LENGTH_PREFIXED) -> bytes:
    """One frame as wire bytes in the given framing."""
    payload = encode_payload(frame)
    if framing == LENGTH_PREFIXED:
        return len(payload).to_bytes(4, "big") + payload
    if framing == LINE_DELIMITED:
        return payload + b"\n"
    raise ProtocolError(f"framing must be one of {FRAMINGS}, got {framing!r}")


def decode_frames(data: bytes, framing: str = LENGTH_PREFIXED) -> list[dict[str, Any]]:
    """Decode a byte string holding zero or more complete frames.

    A convenience for tests and offline tooling; trailing partial
    frames raise :class:`ProtocolError` (the stream readers below are
    what handles incremental arrival).
    """
    frames: list[dict[str, Any]] = []
    if framing == LINE_DELIMITED:
        if data and not data.endswith(b"\n"):
            raise ProtocolError("trailing bytes after the last line-delimited frame")
        for line in data.splitlines():
            if line:
                frames.append(decode_payload(line))
        return frames
    if framing != LENGTH_PREFIXED:
        raise ProtocolError(f"framing must be one of {FRAMINGS}, got {framing!r}")
    offset = 0
    while offset < len(data):
        if offset + 4 > len(data):
            raise ProtocolError("truncated length prefix")
        length = int.from_bytes(data[offset : offset + 4], "big")
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"length prefix {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        offset += 4
        if offset + length > len(data):
            raise ProtocolError("truncated frame payload")
        frames.append(decode_payload(data[offset : offset + length]))
        offset += length
    return frames


def attach_trace(frame: dict[str, Any], ctx: TraceContext | None) -> dict[str, Any]:
    """Attach a trace context to a frame as the optional ``trace`` field.

    Mutates and returns ``frame``; a ``None`` context leaves the frame
    untouched, so callers thread an optional context without branching.
    """
    if ctx is not None:
        frame[TRACE_FIELD] = ctx.to_dict()
    return frame


def extract_trace(frame: dict[str, Any]) -> TraceContext | None:
    """Read a frame's optional trace field, tolerant of junk.

    A malformed trace payload — an old client echoing bytes it does not
    understand — decodes to ``None`` rather than failing the frame.
    """
    return TraceContext.from_dict(frame.get(TRACE_FIELD))


async def detect_framing(reader: asyncio.StreamReader) -> str:
    """Peek the first byte of a connection to pick its framing.

    ``0x00`` (the guaranteed first length-prefix byte) selects
    length-prefixed mode; ``{`` selects line-delimited mode.  EOF before
    the first byte or any other first byte is a protocol error.
    """
    first = await reader.readexactly(1)
    # Push the byte back in place: readers below consume whole frames.
    reader._buffer[0:0] = first  # type: ignore[attr-defined]
    if first == b"\x00":
        return LENGTH_PREFIXED
    if first == b"{":
        return LINE_DELIMITED
    raise ProtocolError(
        f"cannot detect framing from first byte {first!r} "
        "(expected 0x00 for length-prefixed or '{' for line-delimited)"
    )


async def read_frame(reader: asyncio.StreamReader, framing: str) -> dict[str, Any] | None:
    """Read one frame from a stream; ``None`` at a clean EOF between
    frames.  Truncation mid-frame raises :class:`ProtocolError`."""
    if framing == LENGTH_PREFIXED:
        try:
            prefix = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise ProtocolError("connection closed mid length prefix") from None
        length = int.from_bytes(prefix, "big")
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"length prefix {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid frame payload") from None
        return decode_payload(payload)
    if framing != LINE_DELIMITED:
        raise ProtocolError(f"framing must be one of {FRAMINGS}, got {framing!r}")
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial.strip():
            return None
        raise ProtocolError("connection closed mid line-delimited frame") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("line-delimited frame exceeds the stream limit") from None
    line = line.strip()
    if not line:
        return None
    return decode_payload(line)


async def write_frame(
    writer: asyncio.StreamWriter, frame: dict[str, Any], framing: str
) -> None:
    """Encode one frame, write it, and drain the transport."""
    writer.write(encode_frame(frame, framing))
    await writer.drain()


__all__ = [
    "CLIENT_FRAME_TYPES",
    "FRAMINGS",
    "FRAME_TYPES",
    "LENGTH_PREFIXED",
    "LINE_DELIMITED",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SERVER_FRAME_TYPES",
    "TRACE_FIELD",
    "attach_trace",
    "decode_frames",
    "decode_payload",
    "detect_framing",
    "encode_frame",
    "encode_payload",
    "extract_trace",
    "read_frame",
    "write_frame",
]
