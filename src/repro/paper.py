"""The paper's running examples (Figures 1–4, Examples 1–10), as code.

Figures in the source text are partially reconstructed: where the PDF
figure is not fully legible, the structures below follow the prose of
the examples exactly (e.g. Example 4's chase steps, Example 5's
homomorphism f from Q2 to Q1, Example 7's note that x3 and x4 carry
distinct labels and merge with wildcard-labeled nodes).  Every property
the paper states about these objects is asserted by the golden tests in
``tests/``, so the reconstructions are behaviourally faithful.

This module is used by the test suite (golden tests), the runnable
examples, and the figure benchmarks.
"""

from __future__ import annotations

from repro.deps.ged import GED, GKey, make_gkey
from repro.deps.literals import FALSE, ConstantLiteral, IdLiteral, VariableLiteral
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern

# ----------------------------------------------------------------------
# Figure 1 — patterns Q1..Q7
# ----------------------------------------------------------------------


def q1() -> Pattern:
    """Q1[x, y]: product x created by person y."""
    return Pattern({"x": "product", "y": "person"}, [("y", "create", "x")])


def q2() -> Pattern:
    """Q2[x, y, z]: country x with capitals y and z."""
    return Pattern(
        {"x": "country", "y": "city", "z": "city"},
        [("x", "capital", "y"), ("x", "capital", "z")],
    )


def q3() -> Pattern:
    """Q3[x, y]: generic ``y is_a x`` between wildcard entities."""
    return Pattern({"x": WILDCARD, "y": WILDCARD}, [("y", "is_a", "x")])


def q4() -> Pattern:
    """Q4[x, y]: x both child and parent of y."""
    return Pattern(
        {"x": "person", "y": "person"},
        [("x", "child", "y"), ("x", "parent", "y")],
    )


def q5(k: int = 2) -> Pattern:
    """Q5[x, x', z1, z2, y1..yk]: the spam-detection pattern.

    Accounts x and x' both like blogs y1..yk; x posts blog z1, x' posts
    blog z2.
    """
    nodes = {"x": "account", "xp": "account", "z1": "blog", "z2": "blog"}
    edges = [("x", "post", "z1"), ("xp", "post", "z2")]
    for i in range(1, k + 1):
        nodes[f"y{i}"] = "blog"
        edges.append(("x", "like", f"y{i}"))
        edges.append(("xp", "like", f"y{i}"))
    return Pattern(nodes, edges)


def q6_half() -> Pattern:
    """Q6's first half Q16[x, x']: album x with primary artist x'."""
    return Pattern({"x": "album", "xp": "artist"}, [("x", "primary_artist", "xp")])


def q7_half() -> Pattern:
    """Q7's first half: a single album entity."""
    return Pattern({"x": "album"})


# ----------------------------------------------------------------------
# Example 3 — GEDs ϕ1..ϕ5 and GKeys ψ1..ψ3
# ----------------------------------------------------------------------


def phi1() -> GED:
    """ϕ1: a video game can only be created by programmers."""
    return GED(
        q1(),
        [ConstantLiteral("x", "type", "video game")],
        [ConstantLiteral("y", "type", "programmer")],
        name="phi1",
    )


def phi2() -> GED:
    """ϕ2: two capitals of one country have the same name."""
    return GED(q2(), [], [VariableLiteral("y", "name", "z", "name")], name="phi2")


def phi3(attr: str = "can_fly") -> GED:
    """ϕ3: if y is_a x and x has attribute A, then y.A = x.A."""
    return GED(
        q3(),
        [VariableLiteral("x", attr, "x", attr)],
        [VariableLiteral("y", attr, "x", attr)],
        name="phi3",
    )


def phi4() -> GED:
    """ϕ4: nobody is both a child and a parent of the same person."""
    return GED(q4(), [], [FALSE], name="phi4")


def phi5(k: int = 2, keyword: str = "peculiar") -> GED:
    """ϕ5: the spam rule of Example 1(2)."""
    return GED(
        q5(k),
        [
            ConstantLiteral("xp", "is_fake", 1),
            ConstantLiteral("z1", "keyword", keyword),
            ConstantLiteral("z2", "keyword", keyword),
        ],
        [ConstantLiteral("x", "is_fake", 1)],
        name="phi5",
    )


def psi1() -> GKey:
    """ψ1: album key — same title + identified primary artists."""
    return make_gkey(
        q6_half(), "x", value_attrs={"x": ["title"]}, id_vars=["xp"], name="psi1"
    )


def psi2() -> GKey:
    """ψ2: album key — same title + same release year."""
    return make_gkey(q7_half(), "x", value_attrs={"x": ["title", "release"]}, name="psi2")


def psi3() -> GKey:
    """ψ3: artist key — same name + an identified recorded album."""
    return make_gkey(
        q6_half(), "xp", value_attrs={"xp": ["name"]}, id_vars=["x"], name="psi3"
    )


# ----------------------------------------------------------------------
# Figure 2 / Example 4 — the chase, valid and invalid sequences
# ----------------------------------------------------------------------


def example4_graph() -> Graph:
    """G of Example 4: v1, v2 (label a, A = 1) pointing at v1', v2'
    which carry *distinct* labels b and c — so identifying v1' and v2'
    is a label conflict."""
    return (
        GraphBuilder()
        .node("v1", "a", A=1)
        .node("v2", "a", A=1)
        .node("w1", "b")
        .node("w2", "c")
        .edge("v1", "r", "w1")
        .edge("v2", "r", "w2")
        .build()
    )


def example4_phi1() -> GED:
    """φ1 = Q1[x, y](x.A = y.A → x.id = y.id), Q1 = two a-nodes."""
    return GED(
        Pattern({"x": "a", "y": "a"}),
        [VariableLiteral("x", "A", "y", "A")],
        [IdLiteral("x", "y")],
        name="ex4-phi1",
    )


def example4_phi2() -> GED:
    """φ2 = Q2[x, y, z](∅ → y.id = z.id), Q2 = a-node with two r-edges."""
    return GED(
        Pattern(
            {"x": "a", "y": WILDCARD, "z": WILDCARD},
            [("x", "r", "y"), ("x", "r", "z")],
        ),
        [],
        [IdLiteral("y", "z")],
        name="ex4-phi2",
    )


# ----------------------------------------------------------------------
# Figure 3 / Examples 5-6 — satisfiability interaction
# ----------------------------------------------------------------------


def example5_q1() -> Pattern:
    """Q1[x, y, z]: a-node x with r-edges to b-node y and c-node z."""
    return Pattern(
        {"x": "a", "y": "b", "z": "c"},
        [("x", "r", "y"), ("x", "r", "z")],
    )


def example5_q2() -> Pattern:
    """Q2[x1, y1, z1, x2, y2, z2]: two wildcard copies of Q1's shape.

    All-wildcard labels make f : Q2 → Q1 a homomorphism while Q1 is not
    homomorphic to Q2 (concrete labels do not match ``_``).
    """
    return Pattern(
        {v: WILDCARD for v in ("x1", "y1", "z1", "x2", "y2", "z2")},
        [
            ("x1", "r", "y1"),
            ("x1", "r", "z1"),
            ("x2", "r", "y2"),
            ("x2", "r", "z2"),
        ],
    )


def example5_q2_prime() -> Pattern:
    """Q2' = Q2 plus a connected component C2 with private labels d, e —
    now Q1 is not homomorphic to Q2' *and vice versa*, yet Σ2 is still
    unsatisfiable (Example 5 (2))."""
    q2p = example5_q2()
    nodes = dict(q2p.labels)
    nodes.update({"w1": "d", "w2": "e"})
    edges = list(q2p.edges) + [("w1", "r", "w2")]
    return Pattern(nodes, edges)


def example5_phi1() -> GED:
    """φ1 = Q1[x, y, z](x.A = x.B → y.id = z.id)."""
    return GED(
        example5_q1(),
        [VariableLiteral("x", "A", "x", "B")],
        [IdLiteral("y", "z")],
        name="ex5-phi1",
    )


def example5_phi2() -> GED:
    """φ2 = Q2[...](∅ → x1.A = x1.B)."""
    return GED(example5_q2(), [], [VariableLiteral("x1", "A", "x1", "B")], name="ex5-phi2")


def example5_phi2_prime() -> GED:
    """φ2' = Q2'[...](∅ → x1.A = x1.B)."""
    return GED(
        example5_q2_prime(), [], [VariableLiteral("x1", "A", "x1", "B")], name="ex5-phi2p"
    )


def example5_sigma1() -> list[GED]:
    return [example5_phi1(), example5_phi2()]


def example5_sigma2() -> list[GED]:
    return [example5_phi1(), example5_phi2_prime()]


# ----------------------------------------------------------------------
# Figure 4 / Example 7 — implication
# ----------------------------------------------------------------------


def example7_sigma() -> list[GED]:
    """Σ1 = {φ1, φ2} over two-wildcard-node patterns."""
    two_nodes = Pattern({"x1": WILDCARD, "x2": WILDCARD})
    phi_1 = GED(
        two_nodes,
        [VariableLiteral("x1", "A", "x2", "A")],
        [IdLiteral("x1", "x2")],
        name="ex7-phi1",
    )
    phi_2 = GED(
        two_nodes,
        [VariableLiteral("x1", "B", "x2", "B")],
        [VariableLiteral("x1", "A", "x1", "B")],
        name="ex7-phi2",
    )
    return [phi_1, phi_2]


def example7_phi() -> GED:
    """ϕ = Q[x1..x4](x1.A = x3.A ∧ x2.B = x4.B → x1.id = x3.id ∧ x2.id = x4.id).

    x1, x2 carry ``_``; x3, x4 carry distinct concrete labels — the
    chase merges each concrete-labeled node with a wildcard one, which
    is exactly why label comparison uses ``≼`` (Example 7's closing
    remark).
    """
    q = Pattern({"x1": WILDCARD, "x2": WILDCARD, "x3": "a", "x4": "b"})
    X = [
        VariableLiteral("x1", "A", "x3", "A"),
        VariableLiteral("x2", "B", "x4", "B"),
    ]
    Y = [IdLiteral("x1", "x3"), IdLiteral("x2", "x4")]
    return GED(q, X, Y, name="ex7-phi")


# ----------------------------------------------------------------------
# Examples 9/10 — domain constraints (GDC / GED∨ versions in
# repro.extensions build on these patterns)
# ----------------------------------------------------------------------


def qe(label: str = "item") -> Pattern:
    """Q_e: a single node of "type" τ (Examples 9 and 10)."""
    return Pattern({"x": label})


def existence_ged(label: str = "item", attr: str = "A") -> GED:
    """φ1 of Example 9: every τ-node has an A attribute (a GED)."""
    return GED(qe(label), [], [VariableLiteral("x", attr, "x", attr)], name="ex9-phi1")
