"""Human-facing views of a metrics snapshot: derived stats and text.

:func:`derived_stats` computes the headline ratios the raw counters
imply — escalated-pivot share, warm-pool hit rate, border-replica
share, per-fragment frames expanded — the numbers ``cli stats`` leads
with and ROADMAP item 5 (adaptive repartitioning) will trigger on.
:func:`format_text` renders the derived block plus the full snapshot as
an aligned text dump.  :func:`format_trace` renders one assembled trace
(see :func:`repro.telemetry.trace.assemble_traces`) as an indented tree
with per-span durations and a self-time attribution — the ``cli trace``
view of "where did this batch's milliseconds go".
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.trace import TraceNode, ref_process

_FRAGMENT_FRAMES_PREFIX = "fragment.frames_expanded."


def histogram_quantile(histogram: dict[str, Any] | None, q: float) -> float | None:
    """A Prometheus-style quantile estimate from bucket counts.

    Linear interpolation within the bucket that crosses rank ``q``;
    ``None`` for a missing or empty histogram.  Values beyond the last
    bound are clamped to it (the +Inf bucket has no width to
    interpolate over), so tail quantiles are conservative lower bounds.
    """
    if not histogram or not histogram.get("count"):
        return None
    bounds = histogram["bounds"]
    counts = histogram["counts"]
    rank = q * histogram["count"]
    cumulative = 0
    for position, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= rank and bucket_count:
            if position >= len(bounds):
                return float(bounds[-1])
            lower = bounds[position - 1] if position else 0.0
            fraction = (rank - (cumulative - bucket_count)) / bucket_count
            return lower + (bounds[position] - lower) * fraction
    return float(bounds[-1])


def derived_stats(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Headline ratios derived from raw counters/gauges.

    Missing inputs yield ``None`` (rendered as ``n/a``) rather than
    zero, so "never measured" is distinguishable from "measured zero".
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})

    local = counters.get("fragment.pivots.local", 0)
    escalated = counters.get("fragment.pivots.escalated", 0)
    pivots = local + escalated
    escalated_share = (escalated / pivots) if pivots else None

    warm = counters.get("engine.pool.warm_hits", 0)
    builds = counters.get("engine.pool.cold_builds", 0)
    lookups = warm + builds
    warm_rate = (warm / lookups) if lookups else None

    per_fragment = {
        name[len(_FRAGMENT_FRAMES_PREFIX) :]: value
        for name, value in counters.items()
        if name.startswith(_FRAGMENT_FRAMES_PREFIX)
    }

    index_hits = counters.get("index.hits", 0)
    index_misses = counters.get("index.misses", 0) + counters.get("index.stale", 0)
    index_lookups = index_hits + index_misses
    index_rate = (index_hits / index_lookups) if index_lookups else None

    routed = counters.get("fragment.route.ops_routed", 0)
    full = counters.get("fragment.route.ops_full", 0)
    routing_saved = (1.0 - routed / full) if full else None

    filter_hits = counters.get("serve.filter.hits", 0)
    filter_misses = counters.get("serve.filter.misses", 0)
    filter_checks = filter_hits + filter_misses
    filter_hit_rate = (filter_hits / filter_checks) if filter_checks else None
    push = histograms.get("serve.push_seconds")

    sigma_expanded = counters.get("matching.sigma.frames_expanded", 0)
    sigma_saved = counters.get("matching.sigma.frames_saved", 0)
    sigma_frames = sigma_expanded + sigma_saved
    sigma_hit_rate = (sigma_saved / sigma_frames) if sigma_frames else None
    sigma_leaves = counters.get("matching.sigma.leaves", 0)
    sigma_spines = counters.get("matching.sigma.spines", 0)
    sigma_leaves_per_spine = (sigma_leaves / sigma_spines) if sigma_spines else None

    return {
        "escalated_pivot_share": escalated_share,
        "warm_pool_hit_rate": warm_rate,
        "border_replica_share": gauges.get("fragment.border_replica_share"),
        "per_fragment_frames_expanded": per_fragment,
        "frames_expanded": counters.get("plan.frames_expanded", 0),
        "index_hit_rate": index_rate,
        "routing_ops_saved": routing_saved,
        "sigma_prefix_hit_rate": sigma_hit_rate,
        "sigma_frames_saved": sigma_saved,
        "sigma_leaves_per_spine": sigma_leaves_per_spine,
        "lpt_imbalance": gauges.get("engine.lpt_imbalance"),
        "push_p50_seconds": histogram_quantile(push, 0.50),
        "push_p99_seconds": histogram_quantile(push, 0.99),
        "serve_filter_hit_rate": filter_hit_rate,
        "serve_queue_depth_p99": histogram_quantile(
            histograms.get("serve.queue_depth"), 0.99
        ),
    }


def _ratio(value: float | None) -> str:
    if value is None:
        return "n/a"
    return f"{value:.1%}"


def _seconds(value: float | None) -> str:
    if value is None:
        return "n/a"
    return f"{value * 1000:.2f}ms"


def _number(value: float | None) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float) and value != int(value):
        return f"{value:.4g}"
    return str(int(value))


def format_text(snapshot: dict[str, Any]) -> str:
    """Render the derived block plus the raw snapshot as text."""
    derived = derived_stats(snapshot)
    lines = ["== derived =="]
    lines.append(f"escalated-pivot share:   {_ratio(derived['escalated_pivot_share'])}")
    lines.append(f"warm-pool hit rate:      {_ratio(derived['warm_pool_hit_rate'])}")
    lines.append(f"border-replica share:    {_ratio(derived['border_replica_share'])}")
    lines.append(f"index hit rate:          {_ratio(derived['index_hit_rate'])}")
    lines.append(f"routing ops saved:       {_ratio(derived['routing_ops_saved'])}")
    lines.append(f"LPT imbalance:           {_number(derived['lpt_imbalance'])}")
    lines.append(f"frames expanded (total): {_number(derived['frames_expanded'])}")
    lines.append(f"Σ shared-prefix hit rate: {_ratio(derived['sigma_prefix_hit_rate'])}")
    lines.append(f"Σ frames saved:          {_number(derived['sigma_frames_saved'])}")
    lines.append(f"Σ leaves per spine:      {_number(derived['sigma_leaves_per_spine'])}")
    lines.append(f"push latency p50/p99:    {_seconds(derived['push_p50_seconds'])} / {_seconds(derived['push_p99_seconds'])}")
    lines.append(f"serve filter hit rate:   {_ratio(derived['serve_filter_hit_rate'])}")
    lines.append(f"serve queue depth p99:   {_number(derived['serve_queue_depth_p99'])}")
    lines.append("per-fragment frames expanded:")
    per_fragment = derived["per_fragment_frames_expanded"]
    if per_fragment:
        for key in sorted(per_fragment):
            lines.append(f"  {key}: {_number(per_fragment[key])}")
    else:
        lines.append("  n/a")

    counters = snapshot.get("counters", {})
    lines.append("")
    lines.append("== counters ==")
    if counters:
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"{name.ljust(width)}  {_number(counters[name])}")
    else:
        lines.append("(none)")

    gauges = snapshot.get("gauges", {})
    lines.append("")
    lines.append("== gauges ==")
    if gauges:
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"{name.ljust(width)}  {_number(gauges[name])}")
    else:
        lines.append("(none)")

    histograms = snapshot.get("histograms", {})
    lines.append("")
    lines.append("== histograms ==")
    if histograms:
        for name in sorted(histograms):
            payload = histograms[name]
            count = payload["count"]
            mean = payload["sum"] / count if count else 0.0
            lines.append(f"{name}: count={count} sum={payload['sum']:.4g} mean={mean:.4g}")
    else:
        lines.append("(none)")
    return "\n".join(lines)


def _attrs_inline(record: dict[str, Any]) -> str:
    attrs = record.get("attrs")
    if not attrs:
        return ""
    rendered = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    return f"  [{rendered}]"


def format_trace(
    trace_id: str,
    roots: list[TraceNode],
    *,
    slow_plans: list[dict[str, Any]] | None = None,
) -> str:
    """Render one assembled trace as an indented tree plus attribution.

    Each line shows the span's duration and its share of the trace
    total; spans recorded in a different process than the trace root
    are marked with their process tag — the boundary crossings at a
    glance.  The trailing "where the milliseconds went" block
    aggregates *self time* (duration minus direct children) by span
    name, which is the honest answer to "what was actually slow": a
    parent that merely waits on children attributes nothing to itself.
    """
    total = sum(root.duration_s for root in roots)
    root_proc = ref_process(roots[0].ref) if roots and roots[0].ref else ""
    lines = [f"trace {trace_id}  ({total * 1000:.2f}ms, {len(roots)} root(s))"]
    self_by_name: dict[str, float] = {}
    for root in roots:
        for depth, node in root.walk():
            share = f"{node.duration_s / total:5.1%}" if total else "    -"
            proc = ref_process(node.ref) if node.ref else ""
            marker = f"  @{proc}" if proc and proc != root_proc else ""
            error = "  !error" if node.record.get("error") else ""
            lines.append(
                f"  {'  ' * depth}{node.name}  {node.duration_s * 1000:.2f}ms"
                f"  {share}{marker}{error}{_attrs_inline(node.record)}"
            )
            self_by_name[node.name] = self_by_name.get(node.name, 0.0) + node.self_seconds()
    lines.append("")
    lines.append("where the milliseconds went (self time):")
    ranked = sorted(self_by_name.items(), key=lambda item: -item[1])
    for name, seconds in ranked[:8]:
        share = f"{seconds / total:5.1%}" if total else "    -"
        lines.append(f"  {name:<24} {seconds * 1000:8.2f}ms  {share}")
    for record in slow_plans or []:
        lines.append("")
        lines.append(
            f"slow plan: {record.get('name', '?')}  "
            f"{float(record.get('seconds', 0.0)) * 1000:.2f}ms"
        )
        explain = record.get("explain")
        if explain:
            lines.extend(f"  {line}" for line in str(explain).splitlines())
    return "\n".join(lines)


__all__ = ["derived_stats", "format_text", "format_trace", "histogram_quantile"]
