"""Lightweight spans: nested timed sections with NDJSON export.

``span("validate", dep="phi2")`` is a context manager.  When telemetry
is disabled it returns a shared null span — no allocation, no clock
read.  When enabled it records a start timestamp, pushes itself on a
thread-local stack (so nested spans know their parent), and on exit
appends one finished-span record to a bounded in-process buffer.

Records are plain dicts::

    {"type": "span", "name": "validate", "span_id": 3, "parent_id": 1,
     "ts": 1754550000.123, "duration_s": 0.0042, "attrs": {"dep": "phi2"}}

When a :mod:`repro.telemetry.trace` context is active the record
additionally carries ``trace_id``, ``ref`` (the span's globally unique
``"<proc>:<id>"`` name), and ``parent_ref`` — the links
:func:`repro.telemetry.trace.assemble_traces` rebuilds causal trees
from.  Span ids stay process-local monotone integers; parent/child
nesting is per thread.

Worker processes ship their spans home piggybacked on the
``collect=True`` metrics snapshot (under a ``"spans"`` key the metrics
merge ignores); the coordinator folds them in with
:func:`absorb_remote`.

Export is NDJSON, two ways:

* :func:`export_ndjson` — one-shot: buffered spans, then slow-plan
  records, then a final ``{"type": "metrics", "snapshot": ...}`` line.
* :func:`open_export` / :func:`flush_export` / :func:`close_export` —
  incremental: the serve loop flushes after every batch, so a killed
  server still leaves usable traces on disk; close appends the final
  metrics line.

The buffer bound is configurable — ``REPRO_MAX_SPANS`` in the
environment or :func:`set_max_spans` at runtime; overflow increments
``telemetry.spans_dropped`` and never raises.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, TextIO

from repro.telemetry import metrics as _metrics
from repro.telemetry import slowlog as _slowlog
from repro.telemetry import trace as _trace

#: Built-in finished-span buffer bound.
DEFAULT_MAX_SPANS = 10_000


def _capacity_from_env() -> int:
    raw = os.environ.get("REPRO_MAX_SPANS")
    if not raw:
        return DEFAULT_MAX_SPANS
    try:
        capacity = int(raw)
    except ValueError:
        return DEFAULT_MAX_SPANS
    return capacity if capacity >= 1 else DEFAULT_MAX_SPANS

#: Finished spans kept in memory; beyond this, spans are dropped and
#: counted (the ``telemetry.spans_dropped`` counter).  Seeded from the
#: ``REPRO_MAX_SPANS`` environment variable; adjust at runtime with
#: :func:`set_max_spans`.
MAX_SPANS = _capacity_from_env()

_FINISHED: list[dict[str, Any]] = []
_IDS = itertools.count(1)
_LOCAL = threading.local()
_LOCK = threading.Lock()

_EXPORT: TextIO | None = None
_EXPORT_LINES = 0
_EXPORT_LOCK = threading.Lock()


def _after_fork() -> None:
    """Reset span state in a forked child (pool workers fork lazily).

    A forked worker inherits the coordinator's finished-span buffer;
    left alone, ``collected_snapshot`` would ship those inherited spans
    home and the coordinator would absorb duplicates of its own
    records.  The child also must not keep the parent's export handle
    (two processes appending to one file interleave mid-line) or its
    possibly-held locks.
    """
    global _LOCK, _EXPORT, _EXPORT_LINES, _EXPORT_LOCK, _LOCAL
    _LOCK = threading.Lock()
    _EXPORT_LOCK = threading.Lock()
    _LOCAL = threading.local()
    _FINISHED.clear()
    _EXPORT = None
    _EXPORT_LINES = 0


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_after_fork)


def max_spans() -> int:
    """The active finished-span buffer bound."""
    return MAX_SPANS


def set_max_spans(capacity: int | None) -> None:
    """Set the buffer bound (``None`` restores the env/default value)."""
    global MAX_SPANS
    if capacity is None:
        MAX_SPANS = _capacity_from_env()
        return
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    MAX_SPANS = capacity


def _stack() -> list[int]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def _append(record: dict[str, Any]) -> None:
    with _LOCK:
        if len(_FINISHED) < MAX_SPANS:
            _FINISHED.append(record)
        else:
            _metrics.sink().incr("telemetry.spans_dropped")


class _NullSpan:
    """The disabled span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; created only when telemetry is enabled."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "ts", "_start", "_trace")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self.ts = 0.0
        self._start = 0.0
        self._trace: tuple[str, str, str | None] | None = None

    def __enter__(self) -> "Span":
        stack = _stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = next(_IDS)
        stack.append(self.span_id)
        self._trace = _trace.enter_span(self.span_id)
        self.ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "duration_s": duration,
        }
        if self._trace is not None:
            trace_id, ref, parent_ref = self._trace
            record["trace_id"] = trace_id
            record["ref"] = ref
            if parent_ref is not None:
                record["parent_ref"] = parent_ref
            _trace.exit_span(ref)
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = True
        _append(record)
        return False


def span(name: str, **attrs: Any) -> Span | _NullSpan:
    """A timed section.  Null (and allocation-free) when disabled."""
    if not _metrics._SINK.enabled:
        return _NULL_SPAN
    return Span(name, attrs)


def record_span(
    name: str,
    duration_s: float,
    *,
    trace: "_trace.TraceContext | None" = None,
    ts: float | None = None,
    **attrs: Any,
) -> None:
    """Record an already-measured span directly (no context manager).

    The asyncio-safe path: ``with tracing(ctx): await ...`` would leak
    the thread-local context across task switches, so event-loop code
    (push delivery) measures explicitly and records post-hoc with the
    context it carried.  The span hangs off ``trace.parent_ref``.
    No-op when telemetry is disabled.
    """
    if not _metrics._SINK.enabled:
        return
    record: dict[str, Any] = {
        "type": "span",
        "name": name,
        "span_id": next(_IDS),
        "parent_id": None,
        "ts": time.time() if ts is None else ts,
        "duration_s": duration_s,
    }
    if trace is not None:
        record["trace_id"] = trace.trace_id
        record["ref"] = _trace.make_ref(record["span_id"])
        if trace.parent_ref is not None:
            record["parent_ref"] = trace.parent_ref
    if attrs:
        record["attrs"] = attrs
    _append(record)


def absorb_spans(records: Any) -> None:
    """Fold finished-span records from elsewhere into the buffer.

    Respects the buffer bound (overflow counts
    ``telemetry.spans_dropped``); records keep their original ids and
    refs — trace assembly relies on refs, which are globally unique.
    """
    if not records:
        return
    with _LOCK:
        for record in records:
            if len(_FINISHED) < MAX_SPANS:
                _FINISHED.append(record)
            else:
                _metrics.sink().incr("telemetry.spans_dropped")


def absorb_remote(snapshot: dict[str, Any]) -> None:
    """Take a worker's piggybacked spans and slow plans off a snapshot.

    The metrics merge (:meth:`MetricsRegistry.merge`) ignores the extra
    ``"spans"`` / ``"slow_plans"`` keys; coordinators call this next to
    ``sink.merge(snapshot)`` to land the worker's trace records too.
    """
    absorb_spans(snapshot.get("spans"))
    _slowlog.absorb_slow_plans(snapshot.get("slow_plans"))


def collected_snapshot(registry: "_metrics.MetricsRegistry") -> dict[str, Any]:
    """The worker-side half: a snapshot with spans/slow plans aboard.

    Called at the end of a ``collecting()`` block; drains this
    process's span and slow-plan buffers into extra snapshot keys for
    :func:`absorb_remote` on the coordinator.
    """
    snapshot = registry.snapshot()
    worker_spans = drain_spans()
    if worker_spans:
        snapshot["spans"] = worker_spans
    slow = _slowlog.drain_slow_plans()
    if slow:
        snapshot["slow_plans"] = slow
    return snapshot


def drain_spans() -> list[dict[str, Any]]:
    """Return and clear the finished-span buffer."""
    with _LOCK:
        finished = list(_FINISHED)
        _FINISHED.clear()
    return finished


def clear_spans() -> None:
    """Drop the finished-span buffer without returning it."""
    with _LOCK:
        _FINISHED.clear()


def export_ndjson(target: str | TextIO) -> int:
    """Write buffered spans plus a final metrics line as NDJSON.

    Returns the number of lines written.  The span and slow-plan
    buffers are drained; the metrics registry is left intact (callers
    may still render it).
    """
    records = drain_spans() + _slowlog.drain_slow_plans()
    lines = [json.dumps(record, sort_keys=True) for record in records]
    lines.append(
        json.dumps(
            {"type": "metrics", "snapshot": _metrics.snapshot()}, sort_keys=True
        )
    )
    payload = "\n".join(lines) + "\n"
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        target.write(payload)
    return len(lines)


def open_export(path: str) -> None:
    """Start an incremental NDJSON export (truncates ``path``).

    Subsequent :func:`flush_export` calls append drained records and
    flush to disk, so a killed process still leaves usable traces;
    :func:`close_export` appends the final metrics line.
    """
    global _EXPORT, _EXPORT_LINES
    with _EXPORT_LOCK:
        if _EXPORT is not None:
            _EXPORT.close()
        _EXPORT = open(path, "w", encoding="utf-8")
        _EXPORT_LINES = 0


def flush_export() -> int:
    """Append buffered spans/slow plans to the open export and flush.

    Returns the number of lines appended; cheap no-op (one global
    read) when no export is open.
    """
    global _EXPORT_LINES
    if _EXPORT is None:
        return 0
    with _EXPORT_LOCK:
        if _EXPORT is None:
            return 0
        records = drain_spans() + _slowlog.drain_slow_plans()
        if not records:
            return 0
        for record in records:
            _EXPORT.write(json.dumps(record, sort_keys=True) + "\n")
        _EXPORT.flush()
        _EXPORT_LINES += len(records)
    return len(records)


def close_export() -> int:
    """Flush, append the final metrics line, and close the export.

    Returns the total number of lines the export received over its
    lifetime (0 when none was open).
    """
    global _EXPORT, _EXPORT_LINES
    flush_export()
    with _EXPORT_LOCK:
        if _EXPORT is None:
            return 0
        _EXPORT.write(
            json.dumps(
                {"type": "metrics", "snapshot": _metrics.snapshot()}, sort_keys=True
            )
            + "\n"
        )
        _EXPORT.close()
        _EXPORT = None
        total = _EXPORT_LINES + 1
        _EXPORT_LINES = 0
    return total


__all__ = [
    "DEFAULT_MAX_SPANS",
    "MAX_SPANS",
    "Span",
    "absorb_remote",
    "absorb_spans",
    "clear_spans",
    "close_export",
    "collected_snapshot",
    "drain_spans",
    "export_ndjson",
    "flush_export",
    "max_spans",
    "open_export",
    "record_span",
    "set_max_spans",
    "span",
]
