"""Lightweight spans: nested timed sections with NDJSON export.

``span("validate", dep="phi2")`` is a context manager.  When telemetry
is disabled it returns a shared null span — no allocation, no clock
read.  When enabled it records a start timestamp, pushes itself on a
thread-local stack (so nested spans know their parent), and on exit
appends one finished-span record to a bounded in-process buffer.

Records are plain dicts::

    {"type": "span", "name": "validate", "span_id": 3, "parent_id": 1,
     "ts": 1754550000.123, "duration_s": 0.0042, "attrs": {"dep": "phi2"}}

:func:`export_ndjson` writes the buffered spans one JSON object per
line, followed by a final ``{"type": "metrics", "snapshot": ...}`` line
carrying the persistent registry's snapshot — one file tells the whole
story of a run (the ``--telemetry ndjson:<path>`` CLI flag ends there).

Span ids are process-local monotone integers; parent/child nesting is
per thread.  Worker processes do not ship spans home (metrics snapshots
piggyback on task results instead — spans are a coordinator-side
narration, metrics are the cross-process truth).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, TextIO

from repro.telemetry import metrics as _metrics

#: Finished spans kept in memory; beyond this, spans are dropped and
#: counted (the ``telemetry.spans_dropped`` counter).
MAX_SPANS = 10_000

_FINISHED: list[dict[str, Any]] = []
_IDS = itertools.count(1)
_LOCAL = threading.local()
_LOCK = threading.Lock()


def _stack() -> list[int]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


class _NullSpan:
    """The disabled span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; created only when telemetry is enabled."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "ts", "_start")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self.ts = 0.0
        self._start = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = next(_IDS)
        stack.append(self.span_id)
        self.ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "duration_s": duration,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = True
        with _LOCK:
            if len(_FINISHED) < MAX_SPANS:
                _FINISHED.append(record)
            else:
                _metrics.sink().incr("telemetry.spans_dropped")
        return False


def span(name: str, **attrs: Any) -> Span | _NullSpan:
    """A timed section.  Null (and allocation-free) when disabled."""
    if not _metrics._SINK.enabled:
        return _NULL_SPAN
    return Span(name, attrs)


def drain_spans() -> list[dict[str, Any]]:
    """Return and clear the finished-span buffer."""
    with _LOCK:
        finished = list(_FINISHED)
        _FINISHED.clear()
    return finished


def clear_spans() -> None:
    """Drop the finished-span buffer without returning it."""
    with _LOCK:
        _FINISHED.clear()


def export_ndjson(target: str | TextIO) -> int:
    """Write buffered spans plus a final metrics line as NDJSON.

    Returns the number of lines written.  The span buffer is drained;
    the metrics registry is left intact (callers may still render it).
    """
    finished = drain_spans()
    lines = [json.dumps(record, sort_keys=True) for record in finished]
    lines.append(
        json.dumps(
            {"type": "metrics", "snapshot": _metrics.snapshot()}, sort_keys=True
        )
    )
    payload = "\n".join(lines) + "\n"
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        target.write(payload)
    return len(lines)


__all__ = [
    "MAX_SPANS",
    "Span",
    "clear_spans",
    "drain_spans",
    "export_ndjson",
    "span",
]
