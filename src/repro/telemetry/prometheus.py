"""Prometheus text-exposition rendering of a metrics snapshot.

Format only — no HTTP server here.  The serve layer mounts
:func:`render_prometheus` on its ``/metrics`` route
(docs/serve-protocol.md §9); ``cli stats --format prom`` prints the
same exposition offline.

Mapping: metric names are dot-namespaced internally
(``engine.pool.warm_hits``); exposition names replace every
non-``[a-zA-Z0-9_]`` character with ``_`` and take a ``repro_`` prefix
(``repro_engine_pool_warm_hits``).  Each family gets a ``# HELP`` line
carrying the raw dotted name (the key into docs/telemetry.md's
catalog) and a ``# TYPE`` line.  Counters render as ``counter``,
gauges as ``gauge``, histograms as the conventional cumulative
``_bucket{le="..."}`` / ``_sum`` / ``_count`` triple.
"""

from __future__ import annotations

import re
from typing import Any

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_PREFIX = "repro_"


def _name(raw: str) -> str:
    sanitized = _SANITIZE.sub("_", raw)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return _PREFIX + sanitized


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    if bound == int(bound):
        return str(int(bound)) + ".0"
    return repr(bound)


def _help_text(raw: str) -> str:
    # HELP text may not contain newlines or stray backslashes; raw
    # metric names are dot/word-only today, but sanitize anyway.
    return raw.replace("\\", "\\\\").replace("\n", " ")


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Render one snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for raw in sorted(snapshot.get("counters", {})):
        name = _name(raw)
        lines.append(f"# HELP {name} repro metric {_help_text(raw)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(snapshot['counters'][raw])}")
    for raw in sorted(snapshot.get("gauges", {})):
        name = _name(raw)
        lines.append(f"# HELP {name} repro metric {_help_text(raw)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(snapshot['gauges'][raw])}")
    for raw in sorted(snapshot.get("histograms", {})):
        payload = snapshot["histograms"][raw]
        name = _name(raw)
        lines.append(f"# HELP {name} repro metric {_help_text(raw)}")
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{_format_bound(bound)}"}} {cumulative}')
        cumulative += payload["counts"][-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_format_value(payload['sum'])}")
        lines.append(f"{name}_count {payload['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = ["render_prometheus"]
