"""Trace-context propagation: one causal tree per update batch.

PR 6's spans are thread-local narration — the moment work crosses a
pool initializer or the serve wire the parent/child chain breaks.  This
module carries the missing link: a :class:`TraceContext` small enough
to ride anywhere (two strings; pickle- and JSON-friendly) that names

* the **trace** — one id per root unit of work (an update batch at the
  serve boundary, a CLI invocation, a test), and
* the **parent span ref** — a globally unique name for the span that
  caused the work, ``"<process-tag>:<span-id>"``.

Span ids stay process-local monotone integers (the PR 6 contract);
global uniqueness comes from the process tag, minted once per process
from the pid plus random bits so forked pool workers and remote clients
never collide.

Propagation is explicit and cheap:

* :func:`start_trace` mints a root context (no parent).
* :func:`tracing` installs a context on the current thread; while it is
  active, every :func:`repro.telemetry.spans.span` records ``trace_id``
  / ``ref`` / ``parent_ref`` next to its local ids.
* :func:`propagation_context` derives the context to hand to a worker
  task or a wire frame: same trace, parent = the innermost open span.
* :func:`assemble_traces` rebuilds the causal trees from exported span
  records, wherever they were recorded.

Worker-side spans ship home piggybacked on the ``collect=True`` metrics
snapshot (see :func:`repro.telemetry.spans.absorb_remote`); wire frames
carry the context as an optional ``"trace"`` field (serve protocol §8:
optional fields are compatible evolution).
"""

from __future__ import annotations

import os
import threading
import uuid
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

#: Process tag: pid plus random bits (the random bits disambiguate pid
#: reuse across hosts/runs).  Forked pool workers inherit the parent's
#: module state — including this tag — so it is re-minted in the child
#: via ``os.register_at_fork``; without that, a forked worker's span
#: refs could collide with the coordinator's inside one trace.
_PROC_TAG = f"{os.getpid():x}-{uuid.uuid4().hex[:6]}"


def _remint_proc_tag() -> None:
    global _PROC_TAG
    _PROC_TAG = f"{os.getpid():x}-{uuid.uuid4().hex[:6]}"


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_remint_proc_tag)


def process_tag() -> str:
    """This process's span-ref prefix (``"<pid-hex>-<random>"``)."""
    return _PROC_TAG


def make_ref(span_id: int) -> str:
    """The globally unique ref of a local span id."""
    return f"{_PROC_TAG}:{span_id}"


def ref_process(ref: str) -> str:
    """The process tag a span ref was minted in."""
    return ref.rsplit(":", 1)[0]


@dataclass(frozen=True)
class TraceContext:
    """What crosses a boundary: the trace id and the causing span's ref.

    Frozen, two plain strings — safe to pickle into worker task
    payloads and to embed in canonical-JSON wire frames.
    """

    trace_id: str
    parent_ref: str | None = None

    def to_dict(self) -> dict[str, str]:
        """The wire/JSON form (``parent_ref`` omitted when absent)."""
        payload = {"trace_id": self.trace_id}
        if self.parent_ref is not None:
            payload["parent_ref"] = self.parent_ref
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "TraceContext | None":
        """Parse a wire payload; tolerant — junk decodes to ``None``.

        A malformed trace field from an old or foreign client must
        never fail the update that carries it.
        """
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = payload.get("parent_ref")
        if parent is not None and not isinstance(parent, str):
            parent = None
        return cls(trace_id, parent)


_STATE = threading.local()


def _refs() -> list[str]:
    refs = getattr(_STATE, "refs", None)
    if refs is None:
        refs = _STATE.refs = []
    return refs


def start_trace() -> TraceContext:
    """Mint a fresh root context (new trace id, no parent)."""
    return TraceContext(uuid.uuid4().hex[:16])


def current_trace() -> TraceContext | None:
    """The context installed on this thread, if any."""
    return getattr(_STATE, "ctx", None)


@contextmanager
def tracing(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``ctx`` on the current thread for the ``with`` body.

    ``tracing(None)`` is a no-op — callers thread an optional context
    through without branching.  Do **not** hold a trace across an
    ``await``: the thread-local would leak into unrelated asyncio
    tasks.  Record post-hoc with
    :func:`repro.telemetry.spans.record_span` instead.
    """
    if ctx is None:
        yield None
        return
    previous = getattr(_STATE, "ctx", None)
    previous_refs = getattr(_STATE, "refs", None)
    _STATE.ctx = ctx
    _STATE.refs = []
    try:
        yield ctx
    finally:
        _STATE.ctx = previous
        _STATE.refs = previous_refs if previous_refs is not None else []


def enter_span(span_id: int) -> tuple[str, str, str | None] | None:
    """Called by a starting span: claim a ref under the active trace.

    Returns ``(trace_id, ref, parent_ref)`` and pushes the ref on the
    thread's open-ref stack, or ``None`` when no trace is active.
    """
    ctx = getattr(_STATE, "ctx", None)
    if ctx is None:
        return None
    refs = _refs()
    parent = refs[-1] if refs else ctx.parent_ref
    ref = make_ref(span_id)
    refs.append(ref)
    return (ctx.trace_id, ref, parent)


def exit_span(ref: str) -> None:
    """Called by a finishing span: pop its ref off the open stack."""
    refs = getattr(_STATE, "refs", None)
    if refs and refs[-1] == ref:
        refs.pop()


def propagation_context() -> TraceContext | None:
    """The context to ship across the next boundary.

    Same trace as the active context; the parent is the innermost open
    span on this thread (so the remote subtree hangs off the span that
    dispatched it), falling back to the context's own parent.
    """
    ctx = getattr(_STATE, "ctx", None)
    if ctx is None:
        return None
    refs = getattr(_STATE, "refs", None)
    parent = refs[-1] if refs else ctx.parent_ref
    return TraceContext(ctx.trace_id, parent)


@dataclass
class TraceNode:
    """One span record plus its children, sorted by start time."""

    record: dict[str, Any]
    children: list["TraceNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The span's name."""
        return self.record.get("name", "?")

    @property
    def ref(self) -> str:
        """The span's globally unique ref."""
        return self.record.get("ref", "")

    @property
    def duration_s(self) -> float:
        """The span's wall duration in seconds."""
        return float(self.record.get("duration_s", 0.0))

    def self_seconds(self) -> float:
        """Duration not covered by direct children (clamped at 0)."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "TraceNode"]]:
        """Depth-first ``(depth, node)`` pairs, children in start order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


def assemble_traces(records: Iterable[dict[str, Any]]) -> dict[str, list[TraceNode]]:
    """Rebuild causal trees from exported span records.

    Takes any iterable of NDJSON records (non-span and untraced records
    are skipped) and returns ``{trace_id: [roots]}``.  A span whose
    ``parent_ref`` is absent — or refers to a span missing from the
    export (dropped by the ring buffer, or a worker that died) — becomes
    a root of its trace rather than disappearing: partial traces stay
    diagnosable.
    """
    by_trace: dict[str, dict[str, TraceNode]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        trace_id = record.get("trace_id")
        ref = record.get("ref")
        if not trace_id or not ref:
            continue
        by_trace.setdefault(trace_id, {})[ref] = TraceNode(record)
    forests: dict[str, list[TraceNode]] = {}
    for trace_id, nodes in by_trace.items():
        roots: list[TraceNode] = []
        for node in nodes.values():
            parent_ref = node.record.get("parent_ref")
            parent = nodes.get(parent_ref) if parent_ref else None
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: n.record.get("ts", 0.0))
        roots.sort(key=lambda n: n.record.get("ts", 0.0))
        forests[trace_id] = roots
    return forests


__all__ = [
    "TraceContext",
    "TraceNode",
    "assemble_traces",
    "current_trace",
    "enter_span",
    "exit_span",
    "make_ref",
    "process_tag",
    "propagation_context",
    "ref_process",
    "start_trace",
    "tracing",
]
