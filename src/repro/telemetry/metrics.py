"""The metrics core: counters, gauges, fixed-bucket histograms.

Design constraints (docs/telemetry.md):

* **True no-op when disabled.**  Instrumented call sites do
  ``sink().incr(...)`` unconditionally; :func:`sink` returns either the
  process-local :class:`MetricsRegistry` or the module-level
  :data:`NULL` sink whose methods are empty.  No dict lookup, no
  branching at the call site — disabled cost is one global read plus a
  no-op method call, which the perf gate bounds at ≤5% on
  ``validation_workload(400)``.  Heavier per-frame accounting (the plan
  executor's observer) is additionally gated on ``sink().enabled`` so
  the disabled path allocates nothing.
* **Pickle-friendly snapshots.**  :meth:`MetricsRegistry.snapshot`
  returns plain dicts/lists/numbers — the same shape
  :class:`~repro.engine.snapshot.GraphSnapshot` uses to cross the
  process boundary — so engine/fragment workers can piggyback a
  snapshot on each task result and the coordinator merges it with
  :meth:`MetricsRegistry.merge`.
* **Deterministic merge semantics.**  Counters and histogram buckets
  add; gauges take the incoming value (last writer wins).  Merging is
  associative and commutative for counters/histograms, so the
  coordinator may fold worker snapshots in any order.

Thread safety: operations are plain dict updates under the GIL; under
the thread backend concurrent increments are best-effort (a lost update
is possible, a crash is not).  Violation results are never derived from
metrics, so the byte-identity contract is unaffected.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from typing import Any

#: Default histogram bucket upper bounds (counts-like metrics): powers
#: of two up to 1024, with an implicit +Inf overflow bucket.
DEFAULT_BOUNDS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Bucket upper bounds for duration metrics, in seconds.
SECONDS_BOUNDS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram:
    """A fixed-bucket histogram: cumulative-friendly counts per bound.

    ``counts`` has ``len(bounds) + 1`` slots; the last is the +Inf
    overflow bucket.  Bounds are upper bounds (Prometheus ``le``
    semantics): an observation lands in the first bucket whose bound is
    ``>= value``.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (inclusive Prometheus ``le`` bounds)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> dict[str, Any]:
        """A plain-dict, pickle/JSON-friendly copy."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, other: "Histogram | dict[str, Any]") -> None:
        """Add another histogram's buckets in (bounds must agree)."""
        if isinstance(other, Histogram):
            bounds, counts = other.bounds, other.counts
            total, n = other.sum, other.count
        else:
            bounds, counts = tuple(other["bounds"]), other["counts"]
            total, n = other["sum"], other["count"]
        if bounds != self.bounds:
            raise ValueError(
                f"histogram bound mismatch: {self.bounds} vs {bounds}"
            )
        for index, value in enumerate(counts):
            self.counts[index] += value
        self.sum += total
        self.count += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, sum={self.sum})"


class MetricsRegistry:
    """Process-local metric store: counters, gauges, histograms.

    The active registry is reached through :func:`sink`; call sites
    never hold a registry reference, so :func:`enable` /
    :func:`disable` / :func:`collecting` swap the target atomically.
    """

    enabled = True

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- writes --------------------------------------------------------
    def incr(self, name: str, value: int | float = 1) -> None:
        """Add ``value`` to a counter (created at 0)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge (last write wins)."""
        self.gauges[name] = value

    def observe(
        self, name: str, value: float, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> None:
        """Record one observation in a histogram (created on first use)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        histogram.observe(value)

    def merge_histogram(self, name: str, histogram: Histogram) -> None:
        """Fold a locally accumulated histogram in (bulk observe)."""
        mine = self.histograms.get(name)
        if mine is None:
            mine = self.histograms[name] = Histogram(histogram.bounds)
        mine.merge(histogram)

    # -- reads ---------------------------------------------------------
    def counter_value(self, name: str) -> int | float:
        """The counter's current value (0 when never incremented)."""
        return self.counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, pickle-friendly copy of the current state."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
            },
        }

    # -- merge / reset -------------------------------------------------
    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (typically from a worker process) in.

        Counters sum; gauges take the incoming value; histogram bucket
        counts add element-wise (bounds must agree).
        """
        counters = self.counters
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        self.gauges.update(snapshot.get("gauges", {}))
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(
                    tuple(payload["bounds"])
                )
            histogram.merge(payload)

    def clear(self) -> None:
        """Drop every counter, gauge, and histogram."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )


class _NullSink:
    """The disabled sink: every write is a no-op, every read is empty."""

    enabled = False

    __slots__ = ()

    def incr(self, name: str, value: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(
        self, name: str, value: float, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> None:
        pass

    def merge_histogram(self, name: str, histogram: Histogram) -> None:
        pass

    def counter_value(self, name: str) -> int:
        return 0

    def merge(self, snapshot: dict[str, Any]) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullSink()"


#: The singleton disabled sink.
NULL = _NullSink()

#: The persistent process-local registry :func:`enable` installs.
_REGISTRY = MetricsRegistry()

#: The active sink.  Call sites read it through :func:`sink`; it is the
#: only module state hot paths touch.
_SINK: MetricsRegistry | _NullSink = NULL


def sink() -> MetricsRegistry | _NullSink:
    """The active metrics sink (the registry when enabled, else NULL)."""
    return _SINK


def enabled() -> bool:
    """True while instrumentation routes into the real registry."""
    return _SINK.enabled


def enable() -> MetricsRegistry:
    """Route instrumentation into the process-local registry."""
    global _SINK
    _SINK = _REGISTRY
    return _REGISTRY


def disable() -> None:
    """Restore the no-op sink (the default)."""
    global _SINK
    _SINK = NULL


def registry() -> MetricsRegistry:
    """The persistent registry, whether or not it is the active sink."""
    return _REGISTRY


def snapshot() -> dict[str, Any]:
    """Snapshot the persistent registry (plain dicts, pickleable)."""
    return _REGISTRY.snapshot()


def merge_snapshot(payload: dict[str, Any]) -> None:
    """Fold a worker snapshot into the active sink (no-op if disabled)."""
    _SINK.merge(payload)


def reset() -> None:
    """Clear the persistent registry (the active sink is unchanged)."""
    _REGISTRY.clear()


@contextmanager
def collecting() -> Iterator[MetricsRegistry]:
    """Collect into a fresh registry, restoring the prior sink on exit.

    This is the worker-side half of cross-process aggregation: a task
    runs under ``collecting()``, snapshots the fresh registry, and ships
    the snapshot home on its result.  Worker processes are single-
    threaded per task, so swapping the module global is safe there.
    """
    global _SINK
    previous = _SINK
    fresh = MetricsRegistry()
    _SINK = fresh
    try:
        yield fresh
    finally:
        _SINK = previous


__all__ = [
    "DEFAULT_BOUNDS",
    "SECONDS_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "collecting",
    "disable",
    "enable",
    "enabled",
    "merge_snapshot",
    "registry",
    "reset",
    "sink",
    "snapshot",
]
