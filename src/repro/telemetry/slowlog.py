"""Slow-plan capture: ``MatchPlan.explain(observed=True)`` on the spot.

A plan execution that blows past a latency threshold is exactly the
moment the plan's observed frame counts are worth keeping — waiting for
the operator to re-run ``cli explain`` loses the workload that was slow.
:func:`record_slow_plan` snapshots the explain text (plus the shard
context and the active trace ref) into a bounded ring buffer; records
ride the NDJSON telemetry export as ``{"type": "slow_plan", ...}``
lines next to the spans of the batch that triggered them, and worker
processes ship theirs home piggybacked on the ``collect=True`` metrics
snapshot.

The threshold is off by default (``None``): the hot path pays one
module-global read per shard to find that out.  Configure with the
``REPRO_SLOW_PLAN_MS`` environment variable or
:func:`set_slow_plan_threshold` (the CLI's ``--slow-plan-ms`` flag).
Overflow drops the **oldest** record (the newest slow plan is the one
being debugged) and increments ``telemetry.slow_plans_dropped`` —
capture must never raise or grow without bound.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace

#: Default ring-buffer capacity for captured slow-plan records.
DEFAULT_SLOW_PLAN_CAPACITY = 64

#: Environment variable naming the capture threshold in milliseconds.
ENV_SLOW_PLAN_MS = "REPRO_SLOW_PLAN_MS"


def _threshold_from_env() -> float | None:
    raw = os.environ.get(ENV_SLOW_PLAN_MS)
    if not raw:
        return None
    try:
        millis = float(raw)
    except ValueError:
        return None
    return millis / 1000.0 if millis >= 0 else None


_THRESHOLD_S: float | None = _threshold_from_env()
_CAPACITY = DEFAULT_SLOW_PLAN_CAPACITY
_RECORDS: list[dict[str, Any]] = []


def _after_fork() -> None:
    # A forked pool worker inherits the coordinator's captured records;
    # clearing them keeps its piggyback snapshot from double-shipping.
    _RECORDS.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_after_fork)


def slow_plan_threshold() -> float | None:
    """The active capture threshold in seconds (``None`` = capture off)."""
    return _THRESHOLD_S


def set_slow_plan_threshold(seconds: float | None) -> None:
    """Set the capture threshold in seconds (``None`` disables capture)."""
    global _THRESHOLD_S
    _THRESHOLD_S = seconds


def set_slow_plan_capacity(capacity: int) -> None:
    """Resize the ring buffer (existing overflow is trimmed oldest-first)."""
    global _CAPACITY
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    _CAPACITY = capacity
    overflow = len(_RECORDS) - capacity
    if overflow > 0:
        del _RECORDS[:overflow]
        _metrics.sink().incr("telemetry.slow_plans_dropped", overflow)


def record_slow_plan(name: str, seconds: float, explain: str, **attrs: Any) -> None:
    """Capture one slow plan execution into the ring buffer.

    ``explain`` is the pre-rendered ``MatchPlan.explain(observed=True)``
    text; ``attrs`` carry shard context (pivot, shard size, ...).  The
    active trace — if any — is recorded as ``trace_id``/``parent_ref``
    so ``cli trace`` can place the record inside the batch's tree.
    """
    record: dict[str, Any] = {
        "type": "slow_plan",
        "name": name,
        "seconds": seconds,
        "explain": explain,
        "ts": time.time(),
    }
    ctx = _trace.propagation_context()
    if ctx is not None:
        record["trace_id"] = ctx.trace_id
        if ctx.parent_ref is not None:
            record["parent_ref"] = ctx.parent_ref
    if attrs:
        record["attrs"] = attrs
    _RECORDS.append(record)
    if len(_RECORDS) > _CAPACITY:
        del _RECORDS[0]
        _metrics.sink().incr("telemetry.slow_plans_dropped")


def absorb_slow_plans(records: Any) -> None:
    """Fold worker-shipped slow-plan records in (bounded, oldest out)."""
    if not records:
        return
    _RECORDS.extend(records)
    overflow = len(_RECORDS) - _CAPACITY
    if overflow > 0:
        del _RECORDS[:overflow]
        _metrics.sink().incr("telemetry.slow_plans_dropped", overflow)


def drain_slow_plans() -> list[dict[str, Any]]:
    """Return and clear the captured slow-plan records."""
    records = list(_RECORDS)
    _RECORDS.clear()
    return records


def clear_slow_plans() -> None:
    """Drop the captured slow-plan records without returning them."""
    _RECORDS.clear()


__all__ = [
    "DEFAULT_SLOW_PLAN_CAPACITY",
    "ENV_SLOW_PLAN_MS",
    "absorb_slow_plans",
    "clear_slow_plans",
    "drain_slow_plans",
    "record_slow_plan",
    "set_slow_plan_capacity",
    "set_slow_plan_threshold",
    "slow_plan_threshold",
]
