"""repro.telemetry — metrics, spans, and plan-execution profiling.

The observability substrate of the layered runtime (docs/telemetry.md):

* :mod:`repro.telemetry.metrics` — the process-local
  :class:`MetricsRegistry` (counters / gauges / fixed-bucket
  histograms) behind a swap-in :func:`sink`; disabled (the default) it
  is the no-op :data:`NULL` sink, so instrumentation costs one global
  read per event and the violation streams stay byte-identical.
* :mod:`repro.telemetry.spans` — nested timed sections with NDJSON
  export (``--telemetry ndjson:<path>`` on the CLI), one-shot or
  incrementally flushed per batch.
* :mod:`repro.telemetry.trace` — the cross-boundary half of spans: a
  pickle/JSON-friendly :class:`TraceContext` carried through worker
  task payloads and serve wire frames, plus :func:`assemble_traces` to
  rebuild one causal tree per update batch.
* :mod:`repro.telemetry.slowlog` — ring-buffered
  ``MatchPlan.explain(observed=True)`` captures for plan executions
  over a configurable latency threshold.
* cross-process aggregation — engine/fragment workers run tasks under
  :func:`collecting` and piggyback plain-dict snapshots on task
  results (worker spans and slow plans ride the same snapshot); the
  coordinator folds them in with :func:`merge_snapshot` and
  :func:`absorb_remote`.
* :mod:`repro.telemetry.prometheus` — text-exposition formatting,
  mounted live on the serve layer's ``/metrics`` route.
* :mod:`repro.telemetry.report` — derived headline stats (escalated-
  pivot share, warm-pool hit rate, border-replica share), the
  ``cli stats`` text dump, and the ``cli trace`` tree rendering.

Stdlib-only by design: every other ``repro`` layer imports this one,
so it imports none of them.
"""

from repro.telemetry.metrics import (
    DEFAULT_BOUNDS,
    SECONDS_BOUNDS,
    Histogram,
    MetricsRegistry,
    NULL,
    collecting,
    disable,
    enable,
    enabled,
    merge_snapshot,
    registry,
    reset,
    sink,
    snapshot,
)
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.report import (
    derived_stats,
    format_text,
    format_trace,
    histogram_quantile,
)
from repro.telemetry.slowlog import (
    clear_slow_plans,
    drain_slow_plans,
    record_slow_plan,
    set_slow_plan_capacity,
    set_slow_plan_threshold,
    slow_plan_threshold,
)
from repro.telemetry.spans import (
    Span,
    absorb_remote,
    absorb_spans,
    clear_spans,
    close_export,
    drain_spans,
    export_ndjson,
    flush_export,
    max_spans,
    open_export,
    record_span,
    set_max_spans,
    span,
)
from repro.telemetry.trace import (
    TraceContext,
    TraceNode,
    assemble_traces,
    current_trace,
    propagation_context,
    start_trace,
    tracing,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "SECONDS_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "Span",
    "TraceContext",
    "TraceNode",
    "absorb_remote",
    "absorb_spans",
    "assemble_traces",
    "clear_slow_plans",
    "clear_spans",
    "close_export",
    "collecting",
    "current_trace",
    "derived_stats",
    "disable",
    "drain_slow_plans",
    "drain_spans",
    "enable",
    "enabled",
    "export_ndjson",
    "flush_export",
    "format_text",
    "format_trace",
    "histogram_quantile",
    "max_spans",
    "merge_snapshot",
    "open_export",
    "propagation_context",
    "record_slow_plan",
    "record_span",
    "registry",
    "render_prometheus",
    "reset",
    "set_max_spans",
    "set_slow_plan_capacity",
    "set_slow_plan_threshold",
    "sink",
    "slow_plan_threshold",
    "snapshot",
    "span",
    "start_trace",
    "tracing",
]
