"""repro.telemetry — metrics, spans, and plan-execution profiling.

The observability substrate of the layered runtime (docs/telemetry.md):

* :mod:`repro.telemetry.metrics` — the process-local
  :class:`MetricsRegistry` (counters / gauges / fixed-bucket
  histograms) behind a swap-in :func:`sink`; disabled (the default) it
  is the no-op :data:`NULL` sink, so instrumentation costs one global
  read per event and the violation streams stay byte-identical.
* :mod:`repro.telemetry.spans` — nested timed sections with NDJSON
  export (``--telemetry ndjson:<path>`` on the CLI).
* cross-process aggregation — engine/fragment workers run tasks under
  :func:`collecting` and piggyback plain-dict snapshots on task
  results; the coordinator folds them in with :func:`merge_snapshot`.
* :mod:`repro.telemetry.prometheus` — text-exposition formatting for
  the future push-API server (format only, no HTTP).
* :mod:`repro.telemetry.report` — derived headline stats (escalated-
  pivot share, warm-pool hit rate, border-replica share) and the
  ``cli stats`` text dump.

Stdlib-only by design: every other ``repro`` layer imports this one,
so it imports none of them.
"""

from repro.telemetry.metrics import (
    DEFAULT_BOUNDS,
    SECONDS_BOUNDS,
    Histogram,
    MetricsRegistry,
    NULL,
    collecting,
    disable,
    enable,
    enabled,
    merge_snapshot,
    registry,
    reset,
    sink,
    snapshot,
)
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.report import derived_stats, format_text, histogram_quantile
from repro.telemetry.spans import (
    Span,
    clear_spans,
    drain_spans,
    export_ndjson,
    span,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "SECONDS_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "Span",
    "clear_spans",
    "collecting",
    "derived_stats",
    "disable",
    "drain_spans",
    "enable",
    "enabled",
    "export_ndjson",
    "format_text",
    "histogram_quantile",
    "merge_snapshot",
    "registry",
    "render_prometheus",
    "reset",
    "sink",
    "snapshot",
    "span",
]
