#!/usr/bin/env python
"""Smoke the live ops surface of `cli serve` end to end.

Boots a real ``python -m repro.cli serve`` subprocess on an ephemeral
port with NDJSON telemetry export, then — exactly as CI's serve-smoke
job does —

1. curls ``/healthz`` and ``/metrics`` over plain HTTP on the *same*
   port the protocol clients use, checking the health payload's fields
   and that the exposition parses;
2. publishes one update batch through the wire protocol (the protocol
   and HTTP clients must coexist on one listener);
3. waits for the bounded run to exit and asserts the exported
   ``trace.ndjson`` holds one assembled trace whose spans cross at
   least three process boundaries (server loop, pool worker, push
   delivery rides the server loop's tag — the worker tags are the
   proof of propagation).

The trace file is left under ``--out`` for artifact upload.  Exit 0
clean, 1 with a one-line reason otherwise.  Stdlib only::

    python tools/serve_smoke.py --out smoke-out
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def write_fixtures(out: Path) -> tuple[Path, Path, Path]:
    """A tiny dirty graph + one rule, in the CLI's JSON formats."""
    graph = {
        "nodes": [
            {"id": "c1", "label": "city", "attrs": {"pop": 1}},
            {"id": "p1", "label": "person", "attrs": {"age": 0}},
        ],
        "edges": [["p1", "lives_in", "c1"]],
    }
    rule = {
        "name": "resident-age",
        "pattern": {
            "variables": ["p", "c"],
            "labels": {"p": "person", "c": "city"},
            "edges": [["p", "lives_in", "c"]],
        },
        "X": [],
        "Y": [{"kind": "const", "var": "p", "attr": "age", "value": 30}],
    }
    graph_path = out / "kb.json"
    graph_path.write_text(json.dumps(graph))
    rules_path = out / "rules.json"
    rules_path.write_text(json.dumps([rule]))
    return graph_path, rules_path, out / "updates.jsonl"


def http_get(port: int, path: str) -> tuple[int, dict, bytes]:
    """One GET against the serve listener; returns (status, headers, body)."""
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:  # 404 etc. still carry a body
        return error.code, dict(error.headers), error.read()


def publish_one_batch(port: int) -> dict:
    """Send one update over the wire protocol; returns the ack frame."""
    import asyncio

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.graph.update import GraphUpdate
    from repro.serve import ServeClient

    async def run() -> dict:
        # A subscriber makes the batch exercise push delivery (the
        # serve.push span); two added nodes make the introduced scan
        # shard across two pool workers — two more process tags.
        watcher = await ServeClient.connect("127.0.0.1", port)
        client = await ServeClient.connect("127.0.0.1", port)
        try:
            await watcher.subscribe()
            update = GraphUpdate(
                nodes=[("p2", "person", {"age": 30}), ("p3", "person", {"age": 0})]
            )
            ack = await client.send_update(update)
            event = await watcher.next_event()
            assert event.get("type") in ("delta", "resync"), event
            return ack
        finally:
            await client.close()
            await watcher.close()

    return asyncio.run(run())


def check_trace(trace_path: Path) -> str | None:
    """Assert one trace crosses >= 3 process boundaries; None = clean."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.telemetry import assemble_traces
    from repro.telemetry.trace import ref_process

    records = [
        json.loads(line)
        for line in trace_path.read_text().splitlines()
        if line.strip()
    ]
    forests = assemble_traces(records)
    if not forests:
        return "no assembled traces in export"
    for trace_id, roots in forests.items():
        names = set()
        processes = set()
        for root in roots:
            for _, node in root.walk():
                names.add(node.name)
                if node.ref:
                    processes.add(ref_process(node.ref))
        if {"serve.batch", "serve.push", "stream.shard"} <= names and len(processes) >= 3:
            print(
                f"trace {trace_id}: {sorted(names)} across "
                f"{len(processes)} process(es)"
            )
            return None
    return f"no trace crossed 3 process boundaries: {list(forests)}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="smoke-out", help="artifact directory")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    graph_path, rules_path, log_path = write_fixtures(out)
    trace_path = out / "trace.ndjson"

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--log", str(log_path), "--rules", str(rules_path),
            "--graph", str(graph_path),
            "--backend", "engine", "--workers", str(args.workers),
            "--telemetry", f"ndjson:{trace_path}",
            "--max-batches", "1", "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    try:
        listening = json.loads(proc.stdout.readline())
        assert listening["type"] == "listening", listening
        port = listening["port"]

        status, headers, body = http_get(port, "/healthz")
        health = json.loads(body)
        if status != 200 or health.get("status") != "ok":
            print(f"FAIL /healthz: {status} {health}", file=sys.stderr)
            return 1
        for field in ("seq", "epoch", "backend", "subscribers", "queue_depth_p99"):
            if field not in health:
                print(f"FAIL /healthz missing {field!r}", file=sys.stderr)
                return 1
        print(f"/healthz ok: {health}")

        status, headers, body = http_get(port, "/metrics")
        text = body.decode("utf-8")
        if status != 200 or "text/plain" not in headers.get("Content-Type", ""):
            print(f"FAIL /metrics: {status} {headers}", file=sys.stderr)
            return 1
        if "# TYPE" not in text or "serve_seq" not in text:
            print(f"FAIL /metrics body:\n{text}", file=sys.stderr)
            return 1
        print(f"/metrics ok: {len(text.splitlines())} line(s)")

        ack = publish_one_batch(port)
        if ack.get("type") != "ack" or "trace_id" not in ack:
            print(f"FAIL publish ack: {ack}", file=sys.stderr)
            return 1
        print(f"publish ok: {ack}")
    finally:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    deadline = time.time() + 10
    while not trace_path.exists() and time.time() < deadline:
        time.sleep(0.1)
    if not trace_path.exists():
        print("FAIL: no trace.ndjson exported", file=sys.stderr)
        return 1
    reason = check_trace(trace_path)
    if reason is not None:
        print(f"FAIL trace: {reason}", file=sys.stderr)
        print(trace_path.read_text(), file=sys.stderr)
        return 1
    print(f"serve smoke clean; trace artifact at {trace_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
