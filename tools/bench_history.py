#!/usr/bin/env python
"""Compare and validate ``BENCH_*.json`` payloads across runs.

Every bench and the CI perf gate emit results through
``benchmarks/_emit.py``'s one schema (``{"bench", "format": 1, "meta",
"records"}``).  This tool keeps that schema honest across history:

* ``diff OLD NEW`` — match the two payloads' records (identity = the
  record's non-numeric fields), print a per-metric delta table for the
  numeric fields, and flag records that appear on only one side.
  Exit 0; comparison is informational — thresholds live in the perf
  gate, not here.
* ``check [--baseline PATH] FILE...`` — validate each payload against
  the emit schema (top-level keys, ``format`` version, the provenance
  fields ``meta`` must carry, records all dictionaries) and, with
  ``--baseline``, the committed ``benchmarks/baseline.json`` contract
  (every section carries ``thresholds``).  Exit 1 on any drift — CI's
  perf job runs this over the freshly written ``BENCH_*.json`` files so
  a silent schema change fails the build instead of corrupting the
  archived history.

Run it exactly as CI does::

    python tools/bench_history.py check --baseline benchmarks/baseline.json \
        BENCH_*.json
    python tools/bench_history.py diff old/BENCH_engine.json BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FORMAT_VERSION = 1

#: Provenance every payload's ``meta`` must stamp (benchmarks/_emit.py).
META_FIELDS = ("python", "platform", "cpu_count", "git_sha", "timestamp")

#: Top-level shape of one payload.
PAYLOAD_KEYS = ("bench", "format", "meta", "records")


def load_payload(path: str | Path) -> dict:
    """Read one BENCH JSON document (raises on unreadable/unparsable)."""
    return json.loads(Path(path).read_text())


def validate_payload(payload: object, source: str) -> list[str]:
    """Schema-check one payload; returns problem lines (empty = clean)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"{source}: payload is {type(payload).__name__}, expected object"]
    for key in PAYLOAD_KEYS:
        if key not in payload:
            problems.append(f"{source}: missing top-level key {key!r}")
    if "format" in payload and payload["format"] != FORMAT_VERSION:
        problems.append(
            f"{source}: format {payload['format']!r}, expected {FORMAT_VERSION}"
        )
    if "bench" in payload and not (
        isinstance(payload["bench"], str) and payload["bench"]
    ):
        problems.append(f"{source}: 'bench' must be a non-empty string")
    meta = payload.get("meta")
    if meta is not None:
        if not isinstance(meta, dict):
            problems.append(f"{source}: 'meta' must be an object")
        else:
            for field in META_FIELDS:
                if field not in meta:
                    problems.append(f"{source}: meta missing {field!r}")
    records = payload.get("records")
    if records is not None:
        if not isinstance(records, list):
            problems.append(f"{source}: 'records' must be a list")
        else:
            for index, record in enumerate(records):
                if not isinstance(record, dict):
                    problems.append(
                        f"{source}: records[{index}] is "
                        f"{type(record).__name__}, expected object"
                    )
    return problems


def validate_baseline(payload: object, source: str) -> list[str]:
    """Check the committed baseline's contract: sections carry thresholds.

    The baseline is not a BENCH payload — it is the perf gate's input —
    but the gate stamps its thresholds into every emitted ``meta``, so
    a malformed baseline is the other way schema drift sneaks into the
    archive.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"{source}: baseline is {type(payload).__name__}, expected object"]
    if "thresholds" not in payload:
        problems.append(f"{source}: missing top-level 'thresholds'")
    for name, section in payload.items():
        if not isinstance(section, dict) or name == "workload":
            continue
        if name != "thresholds" and "thresholds" not in section:
            problems.append(f"{source}: section {name!r} has no 'thresholds'")
    for name, section in payload.items():
        if isinstance(section, dict):
            thresholds = section if name == "thresholds" else section.get("thresholds")
            if isinstance(thresholds, dict):
                for key, value in thresholds.items():
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        problems.append(
                            f"{source}: threshold {name}.{key} is not numeric"
                        )
    return problems


def record_identity(record: dict) -> tuple:
    """A record's identity: its non-numeric fields, sorted.

    Records are bench-specific, so the split is structural — strings,
    booleans, and nulls name the configuration (backend, workers,
    label); ints and floats are the measurements being compared.
    """
    return tuple(
        sorted(
            (key, value)
            for key, value in record.items()
            if isinstance(value, (str, bool)) or value is None
        )
    )


def record_metrics(record: dict) -> dict[str, float]:
    """A record's numeric fields (the measurements)."""
    return {
        key: float(value)
        for key, value in record.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _identity_label(identity: tuple) -> str:
    return " ".join(f"{key}={value}" for key, value in identity) or "<unlabelled>"


def diff_payloads(old: dict, new: dict) -> list[str]:
    """The human-readable delta report between two payloads."""
    lines: list[str] = []
    if old.get("bench") != new.get("bench"):
        lines.append(
            f"bench name changed: {old.get('bench')!r} -> {new.get('bench')!r}"
        )
    old_by_id = {record_identity(r): r for r in old.get("records", [])}
    new_by_id = {record_identity(r): r for r in new.get("records", [])}
    for identity in sorted(old_by_id.keys() | new_by_id.keys()):
        label = _identity_label(identity)
        if identity not in new_by_id:
            lines.append(f"- only in old: {label}")
            continue
        if identity not in old_by_id:
            lines.append(f"+ only in new: {label}")
            continue
        before = record_metrics(old_by_id[identity])
        after = record_metrics(new_by_id[identity])
        lines.append(f"  {label}")
        for metric in sorted(before.keys() | after.keys()):
            if metric not in after:
                lines.append(f"    {metric}: dropped (was {before[metric]:g})")
            elif metric not in before:
                lines.append(f"    {metric}: added ({after[metric]:g})")
            else:
                a, b = before[metric], after[metric]
                delta = b - a
                percent = f" ({delta / a:+.1%})" if a else ""
                lines.append(f"    {metric}: {a:g} -> {b:g}{percent}")
    return lines


def cmd_diff(args: argparse.Namespace) -> int:
    old = load_payload(args.old)
    new = load_payload(args.new)
    problems = validate_payload(old, args.old) + validate_payload(new, args.new)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    print(f"bench {new.get('bench')}: {args.old} -> {args.new}")
    for line in diff_payloads(old, new):
        print(line)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    problems: list[str] = []
    if args.baseline:
        try:
            problems += validate_baseline(load_payload(args.baseline), args.baseline)
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{args.baseline}: unreadable ({exc})")
    for source in args.files:
        try:
            problems += validate_payload(load_payload(source), source)
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{source}: unreadable ({exc})")
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    checked = len(args.files) + (1 if args.baseline else 0)
    print(f"bench-history: {checked} file(s) clean")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_history", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser("diff", help="per-metric deltas between two payloads")
    diff.add_argument("old")
    diff.add_argument("new")
    diff.set_defaults(func=cmd_diff)

    check = sub.add_parser("check", help="validate payloads against the emit schema")
    check.add_argument(
        "--baseline",
        default=None,
        help="also validate the perf-gate baseline's threshold contract",
    )
    check.add_argument("files", nargs="*", help="BENCH_*.json payloads")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
