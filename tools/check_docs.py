#!/usr/bin/env python
"""Keep the docs site honest: links resolve, examples parse.

Checks every Markdown page in the docs set (``README.md`` +
``docs/*.md``):

* **relative links** (``[text](path)`` / ``[text](path#anchor)``) must
  point at a file that exists in the repo, and a ``#anchor`` must match
  a heading in the target page (GitHub slug rules);
* **in-page anchors** (``[text](#anchor)``) must match a heading in the
  same page;
* **fenced ``json`` blocks** must be valid JSON — the serve protocol
  examples are additionally round-tripped through the real codec by
  ``tests/serve/test_protocol_doc.py``;
* **fenced ``python`` blocks** must compile.

Exit code 0 when clean, 1 with one line per problem otherwise.  Run it
exactly as CI's ``docs`` job does::

    python tools/check_docs.py
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE = re.compile(r"^```(\w*)\s*$")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_pages() -> list[Path]:
    """The checked set: README.md plus every page under docs/."""
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, spaces to hyphens,
    everything else non-alphanumeric dropped (inline code markers and
    link syntax stripped first)."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [text](url) -> text
    text = text.replace("`", "").lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def split_markdown(source: str) -> tuple[list[str], list[tuple[str, int, str]]]:
    """Separate prose lines from fenced code blocks.

    Returns ``(prose_lines, blocks)`` where each block is
    ``(language, start_line, body)``; link/heading checks run on prose
    only, so example code cannot produce false link hits.
    """
    prose: list[str] = []
    blocks: list[tuple[str, int, str]] = []
    language = None
    body: list[str] = []
    start = 0
    for number, line in enumerate(source.splitlines(), start=1):
        fence = FENCE.match(line)
        if language is None:
            if fence and fence.group(1) is not None and line.startswith("```"):
                language = fence.group(1)
                body = []
                start = number
            else:
                prose.append(line)
        elif line.strip() == "```":
            blocks.append((language, start, "\n".join(body)))
            language = None
        else:
            body.append(line)
    return prose, blocks


def anchors_of(source: str) -> set[str]:
    """Every GitHub anchor the page's headings define (with the ``-1``
    suffixes duplicates get)."""
    prose, _ = split_markdown(source)
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    for line in prose:
        match = HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        anchors.add(slug if count == 0 else f"{slug}-{count}")
        seen[slug] = count + 1
    return anchors


def check_page(page: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    source = page.read_text()
    label = page.relative_to(REPO_ROOT)
    problems: list[str] = []
    prose, blocks = split_markdown(source)

    def anchors_for(target: Path) -> set[str]:
        if target not in anchor_cache:
            anchor_cache[target] = anchors_of(target.read_text())
        return anchor_cache[target]

    for number, line in enumerate(prose, start=1):
        for pattern in (LINK, IMAGE):
            for target in pattern.findall(line):
                if target.startswith(EXTERNAL):
                    continue
                path_part, _, fragment = target.partition("#")
                if not path_part:  # in-page anchor
                    if fragment not in anchors_for(page):
                        problems.append(
                            f"{label}: broken in-page anchor #{fragment}"
                        )
                    continue
                resolved = (page.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(f"{label}: broken link {target}")
                    continue
                if fragment:
                    if resolved.suffix != ".md":
                        problems.append(
                            f"{label}: anchor on non-Markdown target {target}"
                        )
                    elif fragment not in anchors_for(resolved):
                        problems.append(
                            f"{label}: broken anchor {target}"
                        )

    for language, start, body in blocks:
        if language == "json":
            try:
                json.loads(body)
            except ValueError as error:
                problems.append(
                    f"{label}:{start}: fenced json does not parse: {error}"
                )
        elif language == "python":
            try:
                compile(body, f"{label}:{start}", "exec")
            except SyntaxError as error:
                problems.append(
                    f"{label}:{start}: fenced python does not compile: {error.msg}"
                )
    return problems


def main() -> int:
    pages = doc_pages()
    anchor_cache: dict[Path, set[str]] = {}
    problems: list[str] = []
    for page in pages:
        problems.extend(check_page(page, anchor_cache))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(pages)} page(s): {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
