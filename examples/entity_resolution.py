#!/usr/bin/env python3
"""Recursive entity resolution with GKeys (Example 1 (3) / Section 3).

The paper's keys are recursively defined: identifying an album needs
its artist identified (ψ1), and identifying an artist needs one of its
albums identified (ψ3) — ψ2 (title + release) breaks the cycle.  The
chase resolves the recursion.  The example also demonstrates why the
paper adopts *homomorphism* semantics: under injective
(subgraph-isomorphism) matching, ψ3 catches no duplicates at all.

Run:  python examples/entity_resolution.py
"""

from repro import GraphBuilder, paper
from repro.matching import count_injective_matches, count_matches
from repro.quality import (
    CandidateEntity,
    check_duplicate,
    duplicate_pairs,
    resolve_entities,
)


def duplicated_catalog():
    """Two copies of the same album/artist pair, plus a genuinely
    different album that must NOT merge (the Example 1 'Bleach' case:
    two bands, both called Bleach, each with an album 'Bleach')."""
    return (
        GraphBuilder()
        # Copy 1 and copy 2 of the same real-world album + artist.
        .node("alb1", "album", title="Bleach", release=1989)
        .node("alb2", "album", title="Bleach", release=1989)
        .node("art1", "artist", name="Nirvana")
        .node("art2", "artist", name="Nirvana")
        .edge("alb1", "primary_artist", "art1")
        .edge("alb2", "primary_artist", "art2")
        # The *other* Bleach: same title, different year and band.
        .node("alb3", "album", title="Bleach", release=1992)
        .node("art3", "artist", name="Bleach UK")
        .edge("alb3", "primary_artist", "art3")
        .build()
    )


def main() -> None:
    graph = duplicated_catalog()
    print(f"catalog: {graph.num_nodes} nodes "
          f"({len(graph.nodes_with_label('album'))} albums, "
          f"{len(graph.nodes_with_label('artist'))} artists)")

    print("\nthe recursive keys:")
    for key in (paper.psi1(), paper.psi2(), paper.psi3()):
        print(f"  {key}")

    result = resolve_entities(graph)
    print(f"\nchase valid: {result.consistent}")
    print(f"merged groups: {result.merged_groups}")
    pairs = duplicate_pairs(result)
    assert ("alb1", "alb2") in pairs and ("art1", "art2") in pairs
    assert not any("alb3" in pair for pair in pairs)
    print(f"deduplicated catalog: {result.resolved_graph.num_nodes} nodes")

    # ------------------------------------------------------------------
    # Homomorphism vs isomorphism (Section 3): ψ3's pattern must be able
    # to map both copies onto the SAME album to certify an artist pair.
    # ------------------------------------------------------------------
    resolved = result.resolved_graph
    q = paper.psi3().pattern
    hom = count_matches(q, resolved)
    iso = count_injective_matches(q, resolved)
    print(f"\nψ3 pattern matches on the deduplicated catalog: "
          f"{hom} homomorphic vs {iso} injective")
    print("(injective semantics can never map the two copies onto one "
          "entity — the paper's argument for homomorphism matching)")

    # ------------------------------------------------------------------
    # KB expansion: admit a new album only if it is not a duplicate.
    # ------------------------------------------------------------------
    candidate = CandidateEntity(
        "album", {"title": "Bleach", "release": 1989},
        edges=[("primary_artist", "art1")],
    )
    decision = check_duplicate(graph, candidate)
    print(f"\nnew extraction 'Bleach (1989)': duplicate={decision.is_duplicate} "
          f"(matches {decision.matched_node})")
    fresh = CandidateEntity("album", {"title": "In Utero", "release": 1993},
                            edges=[("primary_artist", "art1")])
    decision2 = check_duplicate(graph, fresh)
    print(f"new extraction 'In Utero (1993)': duplicate={decision2.is_duplicate}")


if __name__ == "__main__":
    main()
