#!/usr/bin/env python3
"""Live violation monitoring: one push server, two filtered subscribers.

Runs the whole `repro.serve` loop in-process: a `ViolationServer` over
a churn workload, a subscriber following one named rule, a second
subscriber watching a set of nodes, and a publisher submitting update
batches — then shows that each subscriber saw exactly the deltas its
server-side filter matches, numbered gap-free from its bootstrap
snapshot. The wire contract is docs/serve-protocol.md.

Run:  python examples/live_monitoring.py
"""

import asyncio

from repro.serve import ServeClient, SubscriptionFilter, ViolationServer
from repro.workloads import churn_stream

RULE = "same-region-for-top-items"
BATCHES = 6


async def follow(client: ServeClient, name: str, fltr: SubscriptionFilter, out: list):
    """Subscribe and collect pushed frames until the server says bye."""
    bootstrap = await client.subscribe(fltr)
    print(
        f"  {name}: bootstrap at seq {bootstrap['seq']} with "
        f"{len(bootstrap['violations'])} matching violation(s)"
    )
    async for event in client.events():
        if event["type"] == "delta":
            out.append(event)


async def main() -> None:
    stream = churn_stream(n_nodes=30, batches=BATCHES, batch_size=6, rng=25)
    watched = sorted(n.id for n in stream.base.nodes)[:8]

    print(f"serving {len(stream.sigma)} rule(s) over a {stream.base.num_nodes}-node graph")
    async with ViolationServer(stream.base.copy(), stream.sigma) as server:
        print(f"listening on 127.0.0.1:{server.port}")

        by_rule: list = []
        by_nodes: list = []
        rule_client = await ServeClient.connect("127.0.0.1", server.port)
        node_client = await ServeClient.connect("127.0.0.1", server.port)
        followers = [
            asyncio.ensure_future(
                follow(rule_client, f"rule={RULE}", SubscriptionFilter(rule_names=frozenset({RULE})), by_rule)
            ),
            asyncio.ensure_future(
                follow(
                    node_client,
                    f"nodes={watched[0]}..{watched[-1]}",
                    SubscriptionFilter(nodes=frozenset(watched)),
                    by_nodes,
                )
            ),
        ]
        await asyncio.sleep(0.1)  # let both subscribers attach

        publisher = await ServeClient.connect("127.0.0.1", server.port)
        print(f"publishing {BATCHES} update batch(es)...")
        acked = [(await publisher.send_update(update))["seq"] for update in stream.updates]
        assert acked == list(range(1, BATCHES + 1)), "acks number the batches 1..n"
        await publisher.close()

        await asyncio.sleep(0.1)  # let the last deltas drain
        await server.stop()
        await asyncio.gather(*followers)
        await rule_client.close()
        await node_client.close()

    for name, frames in ((f"rule={RULE}", by_rule), ("node-set", by_nodes)):
        seqs = [frame["seq"] for frame in frames]
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs))), "stream must be gap-free"
        changed = sum(
            1
            for frame in frames
            if frame["introduced"] or frame["retired"] or frame["updated"]
        )
        print(
            f"subscriber[{name}]: {len(frames)} delta frame(s), "
            f"{changed} with matching violation changes"
        )
    for frame in by_rule:
        for violation in frame["introduced"] + frame["updated"]:
            assert violation["rule"] == RULE, "server-side filter must hold"
    print("each subscriber received exactly its filtered view — gap-free")


if __name__ == "__main__":
    asyncio.run(main())
