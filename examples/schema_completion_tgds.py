#!/usr/bin/env python3
"""Graph TGDs: completing a knowledge base's missing structure.

Section 9 of the paper names TGDs as the next graph-dependency class to
study.  This example exercises `repro.extensions.tgd` on the paper's own
knowledge-base setting:

1. TGDs assert required structure (every album has a primary artist;
   every artist entity carries a name attribute);
2. weak acyclicity certifies the chase terminates;
3. the restricted chase invents labeled nulls for missing entities;
4. interleaved GEDs (one primary artist per album) merge the nulls the
   TGD over-creates — the classic EGD+TGD data-exchange interaction.

Run:  python examples/schema_completion_tgds.py
"""

from repro import GED, Graph, IdLiteral, Pattern
from repro.extensions.tgd import (
    GraphTGD,
    attribute_existence_as_tgd,
    chase_with_tgds,
    tgd_find_unsatisfied,
    tgd_validates,
    weakly_acyclic,
)


def main() -> None:
    # ------------------------------------------------------------------
    # A KB fragment: two albums, one with its artist edge missing.
    # ------------------------------------------------------------------
    g = Graph()
    g.add_node("bleach", "album", title="Bleach")
    g.add_node("nevermind", "album", title="Nevermind")
    g.add_node("nirvana", "artist", name="Nirvana")
    g.add_edge("nevermind", "primary_artist", "nirvana")

    # ------------------------------------------------------------------
    # 1. The structural requirements, as TGDs.
    # ------------------------------------------------------------------
    album_has_artist = GraphTGD(
        Pattern({"x": "album"}),
        head_nodes={"a": "artist"},
        head_edges=[("x", "primary_artist", "a")],
        name="album-has-artist",
    )
    artist_has_name = attribute_existence_as_tgd("artist", "name")
    tgds = [album_has_artist, artist_has_name]

    missing = tgd_find_unsatisfied(g, tgds)
    print(f"unsatisfied TGD bodies before the chase: {len(missing)}")
    for witness in missing:
        print(f"  {witness.tgd.name}: {witness.assignment}")
    assert len(missing) == 1  # bleach lacks an artist

    # ------------------------------------------------------------------
    # 2. Termination is certified syntactically.
    # ------------------------------------------------------------------
    assert weakly_acyclic(tgds)
    print("\nthe TGD set is weakly acyclic: the chase terminates on every input")

    # ------------------------------------------------------------------
    # 3. The restricted chase invents the missing artist as a null.
    # ------------------------------------------------------------------
    completed = chase_with_tgds(g, tgds)
    assert completed.terminated and completed.consistent
    print(f"chase invented {len(completed.invented_nodes)} labeled null(s): "
          f"{completed.invented_nodes}")
    assert tgd_validates(completed.graph, tgds)

    # ------------------------------------------------------------------
    # 4. Interleave a GED key: one primary artist per album.  Starting
    #    from a graph where bleach ALSO got a concrete artist, the
    #    invented null must merge with it instead of lingering.
    # ------------------------------------------------------------------
    g2 = g.copy()
    g2.add_node("nirvana2", "artist", name="Nirvana")
    g2.add_edge("bleach", "primary_artist", "nirvana2")
    one_artist = GED(
        Pattern(
            {"x": "album", "a": "artist", "b": "artist"},
            [("x", "primary_artist", "a"), ("x", "primary_artist", "b")],
        ),
        [],
        [IdLiteral("a", "b")],
        name="one-primary-artist",
    )
    merged = chase_with_tgds(g2, tgds, geds=[one_artist])
    assert merged.terminated and merged.consistent
    artists = [n for n in merged.graph.nodes if n.label == "artist"]
    print(f"\nwith the GED key interleaved: {len(artists)} artist entities remain "
          f"(no dangling nulls)")
    assert tgd_validates(merged.graph, tgds)
    assert len(artists) == 2  # nirvana + the (merged) bleach artist


if __name__ == "__main__":
    main()
