#!/usr/bin/env python3
"""Data cleaning end to end: detect violations, price repairs, repair.

The paper's Example 1 motivates GEDs as cleaning rules; this example
runs the full loop on a dirty knowledge base:

1. plant the four Example 1 inconsistencies in a synthetic KB;
2. detect them with ϕ1–ϕ4 (`repro.quality`);
3. inspect candidate repair plans for one violation;
4. repair greedily under a cost model with a curator-protected value;
5. verify the result validates and replay the repair trace.

Run:  python examples/repair_workflow.py
"""

from repro.quality.inconsistencies import check_consistency, example1_rules
from repro.reasoning import find_violations, validates
from repro.repair import CostModel, apply_operations, repair, suggest_repairs
from repro.repair.suggest import plan_preview
from repro.workloads import synthetic_knowledge_base


def main() -> None:
    # ------------------------------------------------------------------
    # 1-2. A dirty KB and what the Example 1 rules find in it.
    # ------------------------------------------------------------------
    graph, planted = synthetic_knowledge_base(
        n_products=6, n_countries=4, n_species=4, n_families=4, n_albums=4,
        error_rate=0.6, rng=11,
    )
    rules = example1_rules()
    report = check_consistency(graph, rules)
    print(f"KB: {graph.num_nodes} nodes, planted errors: {planted.total()}")
    print(report.summary())

    # ------------------------------------------------------------------
    # 3. Candidate repair plans for the first violation.
    # ------------------------------------------------------------------
    violations = find_violations(graph, rules)
    assert violations, "the generator must plant at least one error"
    first = violations[0]
    print(f"\nfirst violation: {first}")
    print("candidate repair plans (forward first, backward after):")
    for line in plan_preview(suggest_repairs(graph, first)):
        print(f"  - {line}")

    # ------------------------------------------------------------------
    # 4. Greedy repair under a cost model.  Protect one attribute the
    #    curator confirmed, so the engine must route around it.
    # ------------------------------------------------------------------
    model = CostModel()
    anchor = first.assignment[sorted(first.assignment)[0]]
    attrs = graph.node(anchor).attributes
    if attrs:
        protected_attr = sorted(attrs)[0]
        model.protect_attribute(anchor, protected_attr)
        print(f"\nprotecting curator-confirmed value {anchor}.{protected_attr}")

    result = repair(graph, rules, cost_model=model, max_operations=400)
    print(f"\nrepair: {result.summary()}")
    assert result.clean, "the Example 1 rule set is repairable on this KB"

    # ------------------------------------------------------------------
    # 5. Soundness: the repaired graph validates; the trace replays.
    # ------------------------------------------------------------------
    assert validates(result.graph, rules)
    replayed = apply_operations(graph, result.applied)
    assert replayed == result.graph
    print(f"verified: repaired KB satisfies all {len(rules)} rules; "
          f"trace of {len(result.applied)} operations replays exactly")


if __name__ == "__main__":
    main()
