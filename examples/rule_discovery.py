#!/usr/bin/env python3
"""Mining GFDs from data, then cleaning with what was mined.

Where do the rules of Example 1 come from?  In practice: profiled from
mostly-clean data.  This example closes the loop:

1. build a knowledge base that is 90% regular with a few planted errors;
2. mine candidate patterns and approximate GFDs (`repro.discovery`);
3. keep the near-exact rules, minimize them to a cover;
4. the violations of the mined rules are exactly the planted errors —
   hand them to the repair engine.

Run:  python examples/rule_discovery.py
"""

from repro.discovery import (
    discover_domain_constraints,
    discover_gfds,
    discover_gkeys,
    enumerate_candidate_patterns,
)
from repro.extensions.gdc_reasoning import gdc_validates
from repro.graph.graph import Graph
from repro.optimization import compute_cover
from repro.patterns.pattern import Pattern
from repro.reasoning import find_violations, validates
from repro.repair import repair


def build_kb() -> tuple[Graph, set[str]]:
    """20 creator pairs; two persons mislabeled (the planted errors)."""
    g = Graph()
    dirty = {"p3", "p11"}
    for i in range(20):
        kind = "psychologist" if f"p{i}" in dirty else "programmer"
        g.add_node(f"p{i}", "person", type=kind, seniority=min(i, 9))
        g.add_node(f"g{i}", "product", type="video game", platform="pc",
                   title=f"Game {i}")
        g.add_edge(f"p{i}", "create", f"g{i}")
    return g, dirty


def main() -> None:
    graph, planted = build_kb()

    # ------------------------------------------------------------------
    # 2. Profile the schema, then mine near-exact rules (confidence
    #    ≥ 0.85 tolerates the planted dirt; exact mining would learn
    #    nothing about the dirty attribute).
    # ------------------------------------------------------------------
    candidates = enumerate_candidate_patterns(graph)
    print("candidate patterns:")
    for candidate in candidates:
        print(f"  {candidate}")

    mined = discover_gfds(graph, max_lhs=0, min_support=5, min_confidence=0.85)
    print(f"\nmined {len(mined)} rules; the approximate ones flag the dirt:")
    for rule in mined:
        marker = "exact " if rule.exact else f"conf {rule.confidence:.2f}"
        print(f"  [{marker}] {rule.ged}")

    # ------------------------------------------------------------------
    # 3. Cover: discovery over-generates; implication removes redundancy.
    # ------------------------------------------------------------------
    report = compute_cover([rule.ged for rule in mined])
    print(f"\ncover: {len(mined)} mined -> {len(report.cover)} kept")

    # ------------------------------------------------------------------
    # 4. The sub-exact rule's violations are the planted errors.
    # ------------------------------------------------------------------
    approx = [rule.ged for rule in mined if not rule.exact]
    assert approx, "the planted dirt must surface as an approximate rule"
    violations = find_violations(graph, approx)
    suspects = {
        node for violation in violations for node in violation.assignment.values()
        if node.startswith("p")
    }
    print(f"\nsuspect persons from approximate-rule violations: {sorted(suspects)}")
    assert suspects == planted

    cleaned = repair(graph, approx, max_operations=50)
    assert cleaned.clean and validates(cleaned.graph, approx)
    print(f"repair: {cleaned.summary()}")

    # ------------------------------------------------------------------
    # 5. Beyond GFDs: keys and domain constraints from the same data.
    # ------------------------------------------------------------------
    q_product = Pattern({"x": "product"})
    keys = discover_gkeys(graph, q_product, "x", max_attrs=1)
    print(f"\nmined keys for products: {[str(k) for k in keys]}")
    assert any(k.attributes == (("x", "title"),) for k in keys)

    domains = discover_domain_constraints(graph, max_enum=4)
    print("mined domain constraints (Examples 9/10 shapes, from data):")
    for constraint in domains:
        print(f"  [{constraint.kind}] {constraint}")
    ranges = [c for c in domains if c.kind == "range"]
    assert ranges and all(gdc_validates(graph, list(c.gdcs)) for c in ranges)


if __name__ == "__main__":
    main()
