#!/usr/bin/env python3
"""Knowledge-base consistency checking (Example 1 (1) of the paper).

Generates a synthetic knowledge base with planted versions of the
paper's real-world inconsistencies (Ghetto Blaster's creator, Finland's
two capitals, the flightless moa, Philip Sclater's impossible family
tree), runs the cleaning rules ϕ1–ϕ4, and scores detection against the
planted ground truth.

Run:  python examples/knowledge_base_cleaning.py
"""

from repro.quality import check_consistency, dirty_entities, example1_rules
from repro.workloads import synthetic_knowledge_base


def main() -> None:
    kb, planted = synthetic_knowledge_base(
        n_products=30,
        n_countries=15,
        n_species=15,
        n_families=15,
        n_albums=10,
        error_rate=0.25,
        rng=42,
    )
    print(f"knowledge base: {kb.num_nodes} nodes, {kb.num_edges} edges")
    print(f"planted errors: {planted.total()}")

    print("\ncleaning rules (the paper's ϕ1–ϕ4):")
    for rule in example1_rules():
        print(f"  {rule}")

    report = check_consistency(kb)
    print(f"\n{report.summary()}")

    # Score each rule against its planted ground truth.
    expectations = {
        "phi1": set(planted.wrong_creator),
        "phi2": set(planted.double_capital),
        "phi3": set(planted.broken_inheritance),
        "phi4": set(planted.child_and_parent),
    }
    print("\nper-rule detection (expected entities found / planted):")
    for rule, expected in expectations.items():
        found = report.entities(rule)
        hits = len(expected & found)
        print(f"  {rule}: {hits}/{len(expected)}")
        assert hits == len(expected), f"{rule} missed planted errors"

    dirty = dirty_entities(kb)
    print(f"\ndirty entities overall: {len(dirty)}")
    sample = ", ".join(sorted(dirty)[:6])
    print(f"  e.g. {sample} ...")


if __name__ == "__main__":
    main()
