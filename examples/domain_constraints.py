#!/usr/bin/env python3
"""GDCs and GED∨s: domain constraints and denial rules (Section 7).

Reproduces Examples 9 and 10 — enforcing that an attribute exists and
takes values in a finite domain, which plain GEDs cannot express — and
exercises the Σp2 reasoning: satisfiability by small-model search and
the disjunctive chase, implication with counterexamples.

Run:  python examples/domain_constraints.py
"""

from repro.deps import ConstantLiteral
from repro.extensions import (
    ComparisonLiteral,
    GDC,
    GEDVee,
    disjunctive_chase_satisfiable,
    domain_constraint_gdc,
    domain_constraint_vee,
    gdc_find_violations,
    gdc_implies,
    gdc_satisfiable,
    vee_implies,
    vee_validates,
)
from repro.graph import GraphBuilder
from repro.patterns import Pattern


def main() -> None:
    # ------------------------------------------------------------------
    # Example 9: Boolean domain as two GDCs.
    # ------------------------------------------------------------------
    sigma9 = domain_constraint_gdc("item", "A", [0, 1])
    print("Example 9 (GDC domain constraint):")
    for gdc in sigma9:
        print(f"  {gdc}")
    good = GraphBuilder().node("i1", "item", A=0).node("i2", "item", A=1).build()
    bad = GraphBuilder().node("i1", "item", A=7).node("i2", "item").build()
    print(f"  valid data passes: {not gdc_find_violations(good, sigma9)}")
    bad_violations = gdc_find_violations(bad, sigma9)
    print(f"  violations on bad data: {len(bad_violations)} "
          "(one out-of-domain value, one missing attribute)")

    # ------------------------------------------------------------------
    # Example 10: the same constraint as ONE GED∨.
    # ------------------------------------------------------------------
    psi10 = domain_constraint_vee("item", "A", [0, 1])
    print(f"\nExample 10 (GED∨ version):\n  {psi10}")
    print(f"  valid data passes: {vee_validates(good, [psi10])}")
    print(f"  bad data passes:   {vee_validates(bad, [psi10])}")

    # ------------------------------------------------------------------
    # Σp2 satisfiability: small-model search vs disjunctive chase.
    # ------------------------------------------------------------------
    ok, witness = gdc_satisfiable(sigma9)
    print(f"\nGDC set satisfiable: {ok}; witness value "
          f"A={witness.node(witness.node_ids[0]).get('A')}")
    ok_vee, witness_vee = disjunctive_chase_satisfiable([psi10])
    print(f"GED∨ satisfiable (disjunctive chase): {ok_vee}; witness value "
          f"A={witness_vee.node(witness_vee.node_ids[0]).get('A')}")

    # An unsatisfiable denial pair: price < 3 and price > 4 at once.
    q = Pattern({"x": "offer"})
    window = [
        GDC(q, [], [ComparisonLiteral("x", "price", "<", 3)]),
        GDC(q, [], [ComparisonLiteral("x", "price", ">", 4)]),
    ]
    ok, _ = gdc_satisfiable(window)
    print(f"\n'price < 3 ∧ price > 4' satisfiable: {ok}")

    # ------------------------------------------------------------------
    # Implication with built-in predicates.
    # ------------------------------------------------------------------
    eq1 = GDC(q, [], [ComparisonLiteral("x", "price", "=", 1)])
    lt2 = GDC(q, [], [ComparisonLiteral("x", "price", "<", 2)])
    implied, _ = gdc_implies([eq1], lt2)
    print(f"\n(price = 1) implies (price < 2): {implied}")
    implied, counterexample = gdc_implies([lt2], eq1)
    print(f"(price < 2) implies (price = 1): {implied}")
    node = counterexample.node(counterexample.node_ids[0])
    print(f"  counterexample offer with price={node.get('price')}")

    # GED∨ implication: A=0 strengthens A∈{0,1}, not conversely.
    strong = GEDVee(Pattern({"x": "item"}), [], [ConstantLiteral("x", "A", 0)])
    print(f"\n(A = 0) implies (A ∈ {{0,1}}): {vee_implies([strong], psi10)[0]}")
    print(f"(A ∈ {{0,1}}) implies (A = 0): {vee_implies([psi10], strong)[0]}")


if __name__ == "__main__":
    main()
