#!/usr/bin/env python3
"""Fake-account detection in a social network (Example 1 (2)).

Builds a synthetic social graph with planted spam rings following the
paper's Q5 pattern (shared likes + posts with a peculiar keyword,
seeded by a confirmed-fake account), then runs rule ϕ5 to a fixpoint
and scores precision/recall.  Benign look-alike pairs (same structure,
innocent keywords) check that the rule does not over-fire.

Run:  python examples/spam_detection.py
"""

from repro import paper
from repro.quality import detect_fake_accounts, score_detection
from repro.workloads import synthetic_social_network


def main() -> None:
    graph, truth = synthetic_social_network(
        n_rings=6,
        n_benign_pairs=8,
        n_background_accounts=40,
        k=2,
        rng=7,
    )
    print(f"social graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"confirmed fake seeds: {len(truth.seeds)}")
    print(f"undetected partners (to find): {len(truth.undetected_fakes)}")
    print(f"benign look-alike pairs (to spare): {len(truth.benign_lookalikes)}")

    print(f"\nthe rule (ϕ5 with k=2):\n  {paper.phi5(k=2)}")

    result = detect_fake_accounts(graph, k=2)
    print(f"\nflagged {len(result.flagged)} account(s) "
          f"in {result.iterations} round(s): {sorted(result.flagged)}")

    scores = score_detection(result.flagged, truth)
    print(f"precision: {scores['precision']:.2f}   recall: {scores['recall']:.2f}")
    assert scores["precision"] == 1.0 and scores["recall"] == 1.0

    flagged_benign = result.flagged & set(truth.benign_lookalikes)
    print(f"benign accounts flagged: {len(flagged_benign)} (expected 0)")


if __name__ == "__main__":
    main()
