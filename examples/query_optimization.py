#!/usr/bin/env python3
"""Optimizing pattern queries and rule sets with GEDs.

The paper's optimization story, executable:

1. chase-based query minimization (Section 4 use case (b)): a key in Σ
   merges join variables, so the query enumerates fewer matches;
2. core folding: machine-padded patterns shrink dependency-free;
3. predicate pruning + constant propagation (Theorem 4 at work);
4. rule-set cover: drop implied rules before deployment (Section 1's
   "get rid of redundant rules").

Run:  python examples/query_optimization.py
"""

from repro import GED, ConstantLiteral, Graph, IdLiteral, Pattern, WILDCARD
from repro.matching.homomorphism import count_matches
from repro.optimization import (
    compute_cover,
    core,
    minimize_pattern,
    prune_condition,
)


def main() -> None:
    # ------------------------------------------------------------------
    # A data graph satisfying "every country has one capital".
    # ------------------------------------------------------------------
    g = Graph()
    for i in range(25):
        g.add_node(f"c{i}", "country")
        g.add_node(f"k{i}", "city", name=f"capital{i}")
        g.add_edge(f"c{i}", "capital", f"k{i}")

    key = GED(
        Pattern(
            {"c": "country", "p": "city", "q": "city"},
            [("c", "capital", "p"), ("c", "capital", "q")],
        ),
        [],
        [IdLiteral("p", "q")],
        name="one-capital",
    )

    # ------------------------------------------------------------------
    # 1. Chase-based minimization: the self-join collapses.
    # ------------------------------------------------------------------
    query = Pattern(
        {"x": "country", "y": "city", "z": "city"},
        [("x", "capital", "y"), ("x", "capital", "z")],
    )
    reduced = minimize_pattern(query, [key])
    print(f"query variables: {query.num_variables} -> {reduced.pattern.num_variables}")
    # Same answers on every graph satisfying the key (homomorphism lets
    # y = z, so match *counts* agree) — but the join is one variable
    # smaller, so the matcher's search space shrinks by a |city| factor.
    plain, optimized = count_matches(query, g), count_matches(reduced.pattern, g)
    cities = len(g.nodes_with_label("city"))
    print(f"matches: {plain} -> {optimized} (same answers); "
          f"candidate space shrinks by the |city| = {cities} factor")
    assert reduced.merged_any and optimized == plain

    # ------------------------------------------------------------------
    # 2. Core folding: a padded generic limb disappears, no Σ needed.
    # ------------------------------------------------------------------
    padded = Pattern(
        {"x": "country", "y": "city", "u": WILDCARD, "w": WILDCARD},
        [("x", "capital", "y"), ("u", "capital", "w")],
    )
    folded, mapping = core(padded)
    print(f"\ncore fold: {padded.num_variables} vars -> {folded.num_variables} "
          f"(u -> {mapping['u']}, w -> {mapping['w']})")
    assert folded.num_variables == 2

    # ------------------------------------------------------------------
    # 3. Predicate pruning: a condition literal implied by Σ is dropped.
    # ------------------------------------------------------------------
    creators = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
    phi1 = GED(
        creators,
        [ConstantLiteral("y", "type", "video game")],
        [ConstantLiteral("x", "type", "programmer")],
        name="phi1",
    )
    condition = [
        ConstantLiteral("y", "type", "video game"),
        ConstantLiteral("x", "type", "programmer"),  # redundant given phi1
    ]
    rewritten = prune_condition(creators, condition, [phi1])
    print(f"\ncondition literals: {len(condition)} -> {len(rewritten.condition)} "
          f"(pruned: {[str(l) for l in rewritten.pruned]})")
    assert len(rewritten.pruned) == 1

    # ------------------------------------------------------------------
    # 4. Rule cover: renamed duplicates and implied rules are removed.
    # ------------------------------------------------------------------
    renamed = Pattern({"u": "person", "w": "product"}, [("u", "create", "w")])
    phi1_copy = GED(
        renamed,
        [ConstantLiteral("w", "type", "video game")],
        [ConstantLiteral("u", "type", "programmer")],
    )
    stronger = GED(creators, [], [ConstantLiteral("x", "type", "programmer")])
    report = compute_cover([stronger, phi1, phi1_copy, key])
    print(f"\nrule set: 4 -> cover of {len(report.cover)} "
          f"({len(report.structural_duplicates)} duplicates, "
          f"{len(report.implied)} implied)")
    assert len(report.cover) == 2  # stronger + key


if __name__ == "__main__":
    main()
